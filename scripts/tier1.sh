#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before merging.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (root package: tier-1)"
cargo test -q

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> machine_step bench smoke (fast-forward on/off, test mode, serial step)"
CSMT_PARALLEL=0 cargo bench -p csmt-bench --bench machine_step -- --test

echo "==> machine_step bench smoke (test mode, parallel step forced on)"
CSMT_PARALLEL=1 cargo bench -p csmt-bench --bench machine_step -- --test

echo "==> csmt-report smoke (low-end SMT2 + high-end FA4, top-down accounting)"
cargo run -q --release -p csmt-bench --bin csmt-report -- SMT2 mgrid 0.1 1 >/dev/null
cargo run -q --release -p csmt-bench --bin csmt-report -- FA4 mgrid 0.1 4 >/dev/null

echo "==> csmt-audit (determinism & hot-path static analysis, warnings denied)"
cargo run -q --release -p csmt-audit --bin csmt-audit -- --deny-warnings

echo "==> csmt-lint (Table 2 configs + workload streams)"
cargo run -q --release -p csmt-verify --bin csmt-lint

echo "==> invariant golden run (all architectures under InvariantProbe)"
cargo test -q -p csmt-verify --test golden_invariants

echo "==> invariant golden run under CSMT_SCHED=hazard_pairing (dynamic migration path)"
CSMT_SCHED=hazard_pairing cargo test -q -p csmt-verify --test golden_invariants

echo "==> fig9 dynamic-allocation smoke (all policies vs SMT2/FA4)"
cargo run -q --release -p csmt-bench --bin fig9_dynamic_alloc -- --smoke >/dev/null

echo "==> csmt-sweep smoke (tiny grid, cold then warm: cache hits + identical output)"
SWEEP_TMP="$(mktemp -d)"
trap 'rm -rf "$SWEEP_TMP"' EXIT
SWEEP_ARGS=(--archs FA2,SMT2 --apps vpenta,mgrid --scales 0.02 --cache "$SWEEP_TMP/cache")
cargo run -q --release -p csmt-sweep --bin csmt-sweep -- \
  "${SWEEP_ARGS[@]}" --out "$SWEEP_TMP/cold.jsonl" --summary "$SWEEP_TMP/cold.json" \
  | tee "$SWEEP_TMP/cold.log"
grep -q " 0 hits, 4 misses" "$SWEEP_TMP/cold.log"
cargo run -q --release -p csmt-sweep --bin csmt-sweep -- \
  "${SWEEP_ARGS[@]}" --out "$SWEEP_TMP/warm.jsonl" --summary "$SWEEP_TMP/warm.json" \
  | tee "$SWEEP_TMP/warm.log"
grep -q " 4 hits, 0 misses" "$SWEEP_TMP/warm.log"
cmp "$SWEEP_TMP/cold.jsonl" "$SWEEP_TMP/warm.jsonl"
cmp "$SWEEP_TMP/cold.json" "$SWEEP_TMP/warm.json"

# Miri needs a nightly toolchain with the miri component; run it when
# available (CI installs it), skip gracefully on stable-only setups.
if cargo miri --version >/dev/null 2>&1; then
  echo "==> cargo miri (csmt-isa, csmt-core unit tests)"
  cargo miri test -p csmt-isa -p csmt-core --lib
else
  echo "==> cargo miri: not installed, skipping (CI runs it)"
fi

echo "tier1: all green"
