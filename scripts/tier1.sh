#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before merging.
# Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (root package: tier-1)"
cargo test -q

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "tier1: all green"
