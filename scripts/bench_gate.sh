#!/usr/bin/env bash
# Perf-regression gate: re-run the machine_step, cluster_step, and sweep
# benches in smoke mode (--test: 1 timed repetition) and compare the
# fresh numbers against the committed BENCH_*.json baselines with
# bench_gate.
#
#   scripts/bench_gate.sh [tolerance]     (default 0.25 = fail on >25%)
#
# Exit: 0 all within tolerance, 1 regression/cycle drift (from bench_gate).
set -euo pipefail
cd "$(dirname "$0")/.."

TOLERANCE="${1:-0.25}"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

for bench in machine_step cluster_step sweep; do
  echo "==> $bench smoke run"
  CSMT_BENCH_JSON="$OUT/$bench.json" \
    cargo bench -q -p csmt-bench --bench "$bench" -- --test
  echo "==> bench_gate $bench (tolerance $TOLERANCE)"
  cargo run -q --release -p csmt-bench --bin bench_gate -- \
    "$OUT/$bench.json" "BENCH_$bench.json" "$TOLERANCE"
done

echo "bench_gate: all benches within tolerance"
