//! # clustered-smt
//!
//! A from-scratch, cycle-accurate reproduction of **Krishnan & Torrellas,
//! "A Clustered Approach to Multithreaded Processors" (IPPS 1998)**: the
//! clustered-SMT design point, the fixed-assignment (FA) and centralized
//! SMT architectures it is compared against, the banked non-blocking cache
//! hierarchy and DASH-like 4-node CC-NUMA substrate underneath them, a
//! fork-join parallel runtime, synthetic models of the paper's six
//! applications, and the analytic model of parallelism from the paper's §2.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`isa`] | instruction set, Table 1 latencies, instruction streams |
//! | [`mem`] | caches, TLB, MSHRs, directory, interconnect (Table 3, Fig 3) |
//! | [`cpu`] | the out-of-order SMT cluster pipeline (§3.1–3.3, Table 2) |
//! | [`core`] | chips, machines, runtime, experiment results |
//! | [`workloads`] | swim, tomcatv, mgrid, vpenta, fmm, ocean |
//! | [`model`] | the §2 analytic model of thread/instruction parallelism |
//! | [`trace`] | observability: pipeline probes, heartbeats, O3PipeView |
//! | [`metrics`] | top-down cycle accounting, histograms, Perfetto export |
//! | [`verify`] | invariant checker, Table 2 config validation, stream linter |
//! | [`sweep`] | design-space sweep engine: work-stealing pool + result cache |
//!
//! ## Quickstart
//!
//! ```
//! use clustered_smt::prelude::*;
//!
//! // Simulate ocean on the paper's headline SMT2 chip (low-end machine).
//! let app = clustered_smt::workloads::by_name("ocean").unwrap();
//! let result = clustered_smt::workloads::simulate(&app, ArchKind::Smt2, 1, 0.05, 42);
//! assert!(result.cycles > 0);
//! println!("{} cycles, IPC {:.2}", result.cycles, result.ipc());
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/` for
//! the binaries that regenerate every figure and table of the paper.

pub use csmt_core as core;
pub use csmt_cpu as cpu;
pub use csmt_isa as isa;
pub use csmt_mem as mem;
pub use csmt_metrics as metrics;
pub use csmt_model as model;
pub use csmt_sweep as sweep;
pub use csmt_trace as trace;
pub use csmt_verify as verify;
pub use csmt_workloads as workloads;

/// The most common imports for driving experiments.
pub mod prelude {
    pub use csmt_core::{ArchKind, ChipConfig, Machine, RunResult};
    pub use csmt_cpu::{ClusterConfig, Hazard, SlotStats};
    pub use csmt_isa::{DynInst, InstStream, OpClass, SyncOp};
    pub use csmt_mem::{MemConfig, MemorySystem};
    pub use csmt_metrics::{
        AttributionTree, HostProfiler, LogHistogram, MetricsProbe, MetricsReport, PerfettoTrace,
    };
    pub use csmt_model::{AppPoint, ArchModel, Region};
    pub use csmt_sweep::{ResultCache, SweepCell, SweepEngine};
    pub use csmt_trace::{IntervalSampler, NullProbe, PipeviewProbe, Probe, StatsRegistry};
    pub use csmt_verify::{InvariantProbe, Violation, ViolationKind};
    pub use csmt_workloads::{
        all_apps, by_name, simulate, simulate_job_batches, simulate_multiprogram, simulate_probed,
        simulate_tls, AppParams, AppSpec, TlsLoop,
    };
}
