//! Multiprogrammed mix: a fixed set of eight independent sequential jobs
//! run on every architecture (batched where a chip has fewer contexts) —
//! the workload class where SMT's resource sharing shines without any help
//! from parallel-program structure.
//!
//! ```sh
//! cargo run --release --example multiprogram [scale]
//! ```

use clustered_smt::prelude::*;
use csmt_core::ArchKind;
use csmt_workloads::simulate_job_batches;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let mix: Vec<AppSpec> = ["swim", "vpenta", "tomcatv", "ocean"]
        .iter()
        .map(|n| by_name(n).expect("registered"))
        .collect();

    println!("Job set: 8 sequential jobs cycling through swim, vpenta, tomcatv, ocean");
    println!("(chips with fewer contexts run the set in batches — same total work)\n");
    println!(
        "{:<6} {:>8} {:>12} {:>12} {:>8}",
        "arch", "batches", "total cyc", "throughput", "vs FA8"
    );
    let mut base = 0u64;
    for arch in [
        ArchKind::Fa8,
        ArchKind::Fa4,
        ArchKind::Fa2,
        ArchKind::Fa1,
        ArchKind::Smt4,
        ArchKind::Smt2,
        ArchKind::Smt1,
    ] {
        let r = simulate_job_batches(&mix, 8, arch.chip(), 1, scale, 42);
        if arch == ArchKind::Fa8 {
            base = r.total_cycles;
        }
        println!(
            "{:<6} {:>8} {:>12} {:>11.2} {:>7.0}%",
            arch.name(),
            r.batches,
            r.total_cycles,
            r.throughput(),
            100.0 * r.total_cycles as f64 / base as f64
        );
    }
    println!(
        "\nNo barriers couple the jobs, so the FA rows' slowdowns are pure\n\
         resource stranding; the SMT rows convert those slots into\n\
         another job's progress."
    );
}
