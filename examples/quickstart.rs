//! Quickstart: simulate one application on the paper's headline SMT2 chip
//! and print the §4.1 issue-slot breakdown.
//!
//! ```sh
//! cargo run --release --example quickstart [app] [arch] [chips] [scale]
//! ```
//! Defaults: ocean on SMT2, low-end (1 chip), scale 0.5.

use clustered_smt::prelude::*;
use csmt_core::ArchKind;

fn parse_arch(name: &str) -> Option<ArchKind> {
    ArchKind::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let app_name = args.next().unwrap_or_else(|| "ocean".into());
    let arch = args
        .next()
        .and_then(|s| parse_arch(&s))
        .unwrap_or(ArchKind::Smt2);
    let chips: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let app = by_name(&app_name).unwrap_or_else(|| {
        eprintln!("unknown app {app_name}; pick one of: swim tomcatv mgrid vpenta fmm ocean");
        std::process::exit(1);
    });

    println!(
        "Simulating {} on {} ({} chip{}, scale {scale})...",
        app.name,
        arch.name(),
        chips,
        if chips == 1 { "" } else { "s" }
    );
    let r = simulate(&app, arch, chips, scale, 42);

    println!("\nthreads created     : {}", r.threads);
    println!("execution time      : {} cycles", r.cycles);
    println!("useful IPC          : {:.2}", r.ipc());
    println!("avg running threads : {:.2}", r.avg_running_threads);
    println!("ILP per thread      : {:.2}", r.ilp_per_thread());
    println!(
        "branch mispredicts  : {} ({:.2}%)",
        r.branch_mispredicts,
        r.mispredict_rate() * 100.0
    );
    println!(
        "barriers / locks    : {} / {}",
        r.barrier_episodes, r.lock_acquisitions
    );

    println!("\nIssue-slot breakdown (paper §4.1):");
    let b = r.breakdown();
    let labels = [
        "useful",
        "other",
        "structural",
        "memory",
        "data",
        "control",
        "sync",
        "fetch",
    ];
    for (label, frac) in labels.iter().zip(b) {
        let bar = "#".repeat((frac * 60.0).round() as usize);
        println!("  {label:<10} {:>5.1}% {bar}", frac * 100.0);
    }

    println!("\nMemory system:");
    println!("  accesses   : {}", r.mem.accesses);
    println!("  L1 hit rate: {:.1}%", r.mem.l1_hit_rate() * 100.0);
    println!("  remote     : {:.1}%", r.mem.remote_fraction() * 100.0);
    println!("  writebacks : {}", r.mem.writebacks);
    println!("  upgrades   : {}", r.mem.upgrades);
}
