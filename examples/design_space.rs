//! Design-space sweep: one application across all seven Table 2
//! architectures, in raw cycles and with the §5.2 clock-frequency
//! adjustment (8-issue clusters cycle ~2× slower per Palacharla & Jouppi).
//!
//! ```sh
//! cargo run --release --example design_space [app] [scale]
//! ```

use clustered_smt::prelude::*;
use csmt_core::ArchKind;

fn main() {
    let mut args = std::env::args().skip(1);
    let app_name = args.next().unwrap_or_else(|| "mgrid".into());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let app = by_name(&app_name).expect("unknown application");

    let archs = [
        ArchKind::Fa8,
        ArchKind::Fa4,
        ArchKind::Fa2,
        ArchKind::Fa1,
        ArchKind::Smt4,
        ArchKind::Smt2,
        ArchKind::Smt1,
    ];

    println!(
        "{} across the Table 2 design space (low-end machine):\n",
        app.name
    );
    println!(
        "{:<6} {:>8} {:>7} {:>7} {:>9} {:>10}",
        "arch", "cycles", "IPC", "clock", "adj time", "adj (norm)"
    );
    let mut rows = Vec::new();
    for arch in archs {
        let r = simulate(&app, arch, 1, scale, 42);
        // §5.2: 8-issue clusters pay a 2× cycle-time penalty.
        let clock = if arch.chip().cluster.issue_width == 8 {
            2.0
        } else {
            1.0
        };
        rows.push((arch, r.cycles, r.ipc(), clock, r.cycles as f64 * clock));
    }
    let base = rows[0].4;
    for (arch, cycles, ipc, clock, adj) in &rows {
        println!(
            "{:<6} {:>8} {:>7.2} {:>6.0}x {:>9.0} {:>10.0}",
            arch.name(),
            cycles,
            ipc,
            clock,
            adj,
            100.0 * adj / base
        );
    }
    let best = rows
        .iter()
        .min_by(|a, b| a.4.partial_cmp(&b.4).unwrap())
        .unwrap();
    println!(
        "\nMost cost-effective organization after the clock adjustment: {}",
        best.0.name()
    );
}
