//! The §2 model of parallelism as a working tool: chart any application
//! point, see what each architecture delivers, and where the point falls in
//! the three-region classification. Renders an ASCII version of the
//! paper's Figure 1 chart with the SMT2 envelope.
//!
//! ```sh
//! cargo run --release --example parallelism_model [threads] [ilp]
//! ```

use clustered_smt::prelude::*;
use csmt_model::{envelope, ranking, Region};

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(6.0);
    let ilp: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5.0);
    let a = AppPoint::new(threads, ilp);

    println!(
        "Application A = ({threads} threads, {ilp} ILP), potential {:.0} IPC\n",
        a.potential()
    );

    // ASCII chart: x = threads 0..8, y = ILP 0..8, SMT2 envelope + A.
    let smt2 = ArchModel::Smt { clusters: 2 };
    let env = envelope(smt2, 33);
    println!("ILP/thread (SMT2 envelope '·', application 'A'):");
    for row in (1..=8).rev() {
        let y = row as f64;
        let mut line = format!("{y:>2} |");
        for col in 0..=32 {
            let x = 0.25 + (8.0 - 0.25) * col as f64 / 32.0;
            let on_env = env
                .iter()
                .any(|&(ex, ey)| (ex - x).abs() < 0.15 && (ey - y).abs() < 0.45);
            let is_a = (x - threads).abs() < 0.15 && (y - ilp).abs() < 0.45;
            line.push(if is_a {
                'A'
            } else if on_env {
                '·'
            } else {
                ' '
            });
        }
        println!("{line}");
    }
    println!("   +{}", "-".repeat(33));
    println!("    0        2        4        6        8  threads\n");

    let archs = [
        ArchModel::Fa { clusters: 8 },
        ArchModel::Fa { clusters: 4 },
        ArchModel::Fa { clusters: 2 },
        ArchModel::Fa { clusters: 1 },
        ArchModel::Smt { clusters: 4 },
        ArchModel::Smt { clusters: 2 },
        ArchModel::Smt { clusters: 1 },
    ];
    println!(
        "{:<6} {:>10} {:>12} {:>12}",
        "arch", "delivered", "utilization", "region"
    );
    for (m, d) in ranking(&archs, a) {
        let region = match m.region(a) {
            Region::AppExploited => "1: app maxed",
            Region::Optimal => "2: OPTIMAL",
            Region::BothUnderUtilized => "3: both under",
        };
        println!(
            "{:<6} {:>10.1} {:>11.0}% {:>13}",
            m.name(),
            d,
            m.utilization(a) * 100.0,
            region
        );
    }
}
