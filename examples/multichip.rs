//! High-end machine tour: the 4-chip DASH-like CC-NUMA of the paper's
//! Figure 3 running ocean (the most communication-heavy application), with
//! per-node memory behaviour and coherence traffic reported.
//!
//! ```sh
//! cargo run --release --example multichip [scale]
//! ```

use clustered_smt::prelude::*;
use csmt_core::{ArchKind, Machine};
use csmt_workloads::build_streams;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let app = by_name("ocean").expect("registered");

    let mut machine = Machine::new(ArchKind::Smt2.chip(), 4, MemConfig::table3(), 42);
    let n_threads = machine.hw_thread_capacity();
    println!(
        "4-chip high-end machine: {} × SMT2 = {} hardware contexts",
        4, n_threads
    );
    let params = AppParams::new(n_threads, 4, scale, 42);
    machine.attach_threads(build_streams(&app, &params));
    let r = machine.run(2_000_000_000);

    println!(
        "\nocean on SMT2 × 4 chips: {} cycles, chip-IPC {:.2}",
        r.cycles,
        r.ipc() / 4.0
    );

    println!("\nPer-node memory behaviour:");
    println!(
        "{:>4} {:>10} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "node", "accesses", "L1%", "L2", "localMem", "remoteMem", "remoteL2"
    );
    for node in 0..4 {
        let s = machine.memory().node_stats(node);
        println!(
            "{:>4} {:>10} {:>7.1}% {:>8} {:>9} {:>9} {:>9}",
            node,
            s.accesses,
            s.l1_hit_rate() * 100.0,
            s.l2_hits,
            s.local_mem,
            s.remote_mem,
            s.remote_l2
        );
    }

    let (tx, c2c, inv) = machine.memory().directory_stats();
    println!("\nDirectory (DASH-like, full-map MESI):");
    println!("  transactions        : {tx}");
    println!("  cache-to-cache      : {c2c}   (remote-L2 services, 75-cycle round trips)");
    println!("  invalidations sent  : {inv}   (boundary-row write sharing)");

    let total = machine.memory().stats();
    println!(
        "\nCommunication intensity: {:.2}% of accesses serviced off-chip",
        total.remote_fraction() * 100.0
    );
}
