//! End-to-end observability contract: attaching probes to a full
//! simulation must not perturb it, the heartbeat stream must reconcile
//! exactly with the run's final statistics, the O3PipeView trace must be
//! well-formed for Konata, and `RunResult` must serialize with full
//! slot and memory statistics.

use clustered_smt::prelude::*;
use clustered_smt::trace::HAZARD_LABELS;

const SCALE: f64 = 0.02;
const SEED: u64 = 42;

fn app() -> AppSpec {
    by_name("vpenta").expect("paper app")
}

#[test]
fn null_probe_run_is_identical_to_plain_simulate() {
    let plain = simulate(&app(), ArchKind::Smt2, 1, SCALE, SEED);
    let probed = simulate_probed(
        &app(),
        ArchKind::Smt2.chip(),
        1,
        SCALE,
        SEED,
        MemConfig::table3(),
        &mut NullProbe,
    );
    assert_eq!(plain.cycles, probed.cycles);
    assert_eq!(plain.slots, probed.slots);
    assert_eq!(plain.mem, probed.mem);
}

#[test]
fn attached_probes_do_not_perturb_the_simulation() {
    let plain = simulate(&app(), ArchKind::Fa4, 1, SCALE, SEED);
    let mut sink = Vec::new();
    let mut probe = (
        IntervalSampler::new(&mut sink, 500),
        PipeviewProbe::new(std::io::sink()),
    );
    let probed = simulate_probed(
        &app(),
        ArchKind::Fa4.chip(),
        1,
        SCALE,
        SEED,
        MemConfig::table3(),
        &mut probe,
    );
    probe.0.finish().unwrap();
    probe.1.finish().unwrap();
    drop(probe);
    assert_eq!(plain.cycles, probed.cycles);
    assert_eq!(plain.slots, probed.slots);
    assert!(!sink.is_empty(), "sampler produced no heartbeats");
}

#[test]
fn heartbeats_reconcile_with_final_slot_stats() {
    let mut buf = Vec::new();
    let r = {
        let mut sampler = IntervalSampler::new(&mut buf, 200);
        let r = simulate_probed(
            &app(),
            ArchKind::Smt2.chip(),
            1,
            SCALE,
            SEED,
            MemConfig::table3(),
            &mut sampler,
        );
        sampler.finish().unwrap();
        r
    };
    let recs: Vec<serde_json::Value> = String::from_utf8(buf)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).expect("heartbeat line is valid JSON"))
        .collect();
    assert!(
        recs.len() >= 2,
        "expected several intervals, got {}",
        recs.len()
    );

    // Per interval: the §4.1 fractions are a distribution (sum 1 ± 1e-9).
    for rec in &recs {
        if rec["slots"].as_u64() == Some(0) {
            continue;
        }
        let mut sum = rec["useful_frac"].as_f64().unwrap();
        for label in HAZARD_LABELS {
            sum += rec["wasted_frac"][label].as_f64().unwrap();
        }
        assert!((sum - 1.0).abs() < 1e-9, "interval fractions sum to {sum}");
    }

    // Across intervals: the raw deltas telescope to the run's final
    // totals — nothing double-counted, nothing dropped.
    let sum_u64 = |key: &str| recs.iter().map(|r| r[key].as_u64().unwrap()).sum::<u64>();
    assert_eq!(sum_u64("cycles"), r.cycles);
    assert_eq!(sum_u64("slots"), r.slots.slots);
    assert_eq!(sum_u64("committed"), r.slots.committed);
    let useful: f64 = recs
        .iter()
        .map(|x| x["useful_slots"].as_f64().unwrap())
        .sum();
    assert!((useful - r.slots.useful).abs() < 1e-6);
    for (i, label) in HAZARD_LABELS.iter().enumerate() {
        let wasted: f64 = recs
            .iter()
            .map(|x| x["wasted_slots"][*label].as_f64().unwrap())
            .sum();
        assert!(
            (wasted - r.slots.wasted[i]).abs() < 1e-6,
            "{label}: heartbeats {wasted} vs final {}",
            r.slots.wasted[i]
        );
    }
    assert_eq!(sum_u64("accesses"), r.mem.accesses);
}

#[test]
fn pipeview_trace_is_well_formed_and_monotonic() {
    let mut buf = Vec::new();
    {
        let mut probe = PipeviewProbe::new(&mut buf);
        simulate_probed(
            &app(),
            ArchKind::Smt2.chip(),
            1,
            SCALE,
            SEED,
            MemConfig::table3(),
            &mut probe,
        );
        probe.finish().unwrap();
    }
    let text = String::from_utf8(buf).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(
        lines.len() >= 7 * 100,
        "expected a real trace, got {} lines",
        lines.len()
    );
    assert!(lines.len().is_multiple_of(7), "records are 7 lines each");

    let tick = |l: &str| l.split(':').nth(2).unwrap().parse::<u64>().unwrap();
    let mut committed = 0u64;
    let mut squashed = 0u64;
    for rec in lines.chunks(7) {
        assert!(rec[0].starts_with("O3PipeView:fetch:"));
        for (line, stage) in rec[1..].iter().zip([
            "decode", "rename", "dispatch", "issue", "complete", "retire",
        ]) {
            assert!(
                line.starts_with(&format!("O3PipeView:{stage}:")),
                "bad line {line}"
            );
        }
        // Stage timestamps never decrease through the pipeline.
        let seq = [
            tick(rec[0]),
            tick(rec[1]),
            tick(rec[2]),
            tick(rec[3]),
            tick(rec[4]),
            tick(rec[5]),
        ];
        assert!(
            seq.windows(2).all(|w| w[0] <= w[1]),
            "non-monotonic record: {rec:?}"
        );
        let retire = tick(rec[6]);
        if retire == 0 {
            squashed += 1;
        } else {
            assert!(retire >= seq[5], "retire before complete: {rec:?}");
            committed += 1;
        }
    }
    assert!(committed > 0, "no committed instructions traced");
    // vpenta branches mispredict sometimes, so wrong-path squashes exist.
    assert!(squashed > 0, "no squashed instructions traced");
}

#[test]
fn run_result_serializes_with_full_statistics() {
    let r = simulate(&app(), ArchKind::Fa8, 1, SCALE, SEED);
    let v: serde_json::Value = serde_json::from_str(&serde_json::to_string(&r).unwrap()).unwrap();
    assert_eq!(v["cycles"].as_u64(), Some(r.cycles));
    assert_eq!(v["slots"]["slots"].as_u64(), Some(r.slots.slots));
    assert_eq!(v["slots"]["committed"].as_u64(), Some(r.slots.committed));
    for h in Hazard::ALL {
        let got = v["slots"]["wasted"][h.index()].as_f64().unwrap();
        assert!(
            (got - r.slots.wasted[h.index()]).abs() < 1e-9,
            "{}",
            h.label()
        );
    }
    assert_eq!(v["mem"]["accesses"].as_u64(), Some(r.mem.accesses));
    assert_eq!(v["mem"]["l1_hits"].as_u64(), Some(r.mem.l1_hits));
    assert_eq!(v["mem"]["tlb_misses"].as_u64(), Some(r.mem.tlb_misses));
}
