//! `csmt-metrics` acceptance tests.
//!
//! Three guarantees, on real runs of every distinct Table 2 architecture
//! (mgrid, scale 0.2, seed `0xC5317` — the golden-determinism
//! configuration):
//!
//! 1. **Digest neutrality** — composing a `MetricsProbe` next to the
//!    golden `EventDigest` leaves the digest (and the `RunResult`)
//!    bit-for-bit unchanged: turning metrics on cannot perturb the
//!    simulation.
//! 2. **Exact reconciliation** — the top-down attribution tree's leaves
//!    are bit-equal (`f64 ==`, no epsilon) to the run's `SlotStats`
//!    accumulators, and its totals match the run's slot/cycle/committed
//!    counts.
//! 3. **Loadable Perfetto export** — the exported trace-event JSON
//!    parses back and passes the schema validator.

use csmt_core::ArchKind;
use csmt_cpu::Hazard;
use csmt_metrics::{validate_trace, MetricsProbe};
use csmt_trace::{CycleStats, Probe};
use csmt_verify::EventDigest;
use csmt_workloads::{by_name, simulate_probed};

const SCALE: f64 = 0.2;
const SEED: u64 = 0xC5_317;
const APP: &str = "mgrid";

/// The seven distinct Table 2 configurations (SMT8 is an alias of FA8).
const ARCHS: [ArchKind; 7] = [
    ArchKind::Fa8,
    ArchKind::Fa4,
    ArchKind::Fa2,
    ArchKind::Fa1,
    ArchKind::Smt4,
    ArchKind::Smt2,
    ArchKind::Smt1,
];

/// One pass over every Table 2 architecture proving guarantees 1 and 2
/// together: the digest next to a `MetricsProbe` equals the digest
/// alone, and the metrics distilled from that very same paired run
/// reconcile exactly with the `RunResult`.
#[test]
fn metrics_probe_is_digest_neutral_and_reconciles_exactly() {
    let app = by_name(APP).expect("paper app");
    for arch in ARCHS {
        // Reference: digest alone (what the golden test pins).
        let mut solo = EventDigest::new();
        let r_solo = simulate_probed(
            &app,
            arch.chip(),
            1,
            SCALE,
            SEED,
            csmt_mem::MemConfig::table3(),
            &mut solo,
        );
        // Same run with metrics composed in. The MetricsProbe enables
        // extra channels (cycle stats, occupancy) — none of which may
        // leak into the digest's stream or the run's behavior.
        let mut paired = (EventDigest::new(), MetricsProbe::new(500));
        let r = simulate_probed(
            &app,
            arch.chip(),
            1,
            SCALE,
            SEED,
            csmt_mem::MemConfig::table3(),
            &mut paired,
        );
        assert_eq!(
            solo.hash(),
            paired.0.hash(),
            "{}: metrics probe perturbed the event stream",
            arch.name()
        );
        assert_eq!(r_solo.cycles, r.cycles, "{}", arch.name());
        assert_eq!(r_solo.slots, r.slots, "{}", arch.name());
        assert_eq!(r_solo.mem, r.mem, "{}", arch.name());

        let report = paired.1.finish();
        let tree = &report.topdown;
        // Totals.
        assert_eq!(tree.total_slots, r.slots.slots, "{}", arch.name());
        assert_eq!(tree.cycles, r.slots.cycles, "{}", arch.name());
        assert_eq!(tree.committed, r.slots.committed, "{}", arch.name());
        // Leaves: bit-equal copies of the SlotStats accumulators.
        let useful = tree.node("useful").expect("useful leaf");
        assert!(
            useful.slots == r.slots.useful,
            "{}: useful {} != {}",
            arch.name(),
            useful.slots,
            r.slots.useful
        );
        let leaf_of = |h: Hazard| match h {
            Hazard::Other => "rename_squash",
            Hazard::Structural => "issue_retire_bound",
            Hazard::Memory => "memory_bound",
            Hazard::Data => "data_dependence",
            Hazard::Control => "bad_speculation",
            Hazard::Sync => "sync_bound",
            Hazard::Fetch => "fetch_starved",
        };
        for h in Hazard::ALL {
            let leaf = tree.node(leaf_of(h)).expect("hazard leaf");
            assert!(
                leaf.slots == r.slots.wasted[h.index()],
                "{}: {} {} != wasted[{}] {}",
                arch.name(),
                leaf.name,
                leaf.slots,
                h.label(),
                r.slots.wasted[h.index()]
            );
        }
        // Conservation: leaves sum back to the offered slots (the same
        // guarantee SlotStats::record_cycle maintains per cycle).
        assert!(
            (tree.leaf_total() - r.slots.slots as f64).abs() < 1e-6 * r.slots.slots as f64,
            "{}: leaf total {} vs slots {}",
            arch.name(),
            tree.leaf_total(),
            r.slots.slots
        );
        // Every committed instruction contributed exactly one lifetime
        // sample and one per-thread committed count.
        let lifetimes: u64 = report
            .lifetime_by_cluster
            .iter()
            .map(csmt_metrics::LogHistogram::count)
            .sum();
        assert_eq!(lifetimes, r.slots.committed, "{}", arch.name());
        let per_thread: u64 = report.committed_by_thread.iter().map(|(_, n)| n).sum();
        assert_eq!(per_thread, r.slots.committed, "{}", arch.name());
    }
}

/// Captures the last end-of-cycle [`CycleStats`] snapshot of a run.
#[derive(Default)]
struct LastSnapshot(Option<CycleStats>);

impl Probe for LastSnapshot {
    fn cycle_end(&mut self, _cycle: u64, stats: Option<&CycleStats>) {
        self.0 = stats.copied();
    }
}

/// The machine assembles each cycle's `CycleStats` from O(1) running
/// aggregates (`useful`/`committed` integer deltas, closed-form
/// `slots`/`cycles`) instead of re-merging every cluster's full
/// `SlotStats`. This pins the equivalence: the *final* snapshot of a run
/// must be bit-equal (`f64 ==`, no epsilon) to the `RunResult`'s
/// merge-based accumulators, on every Table 2 architecture and on a
/// multi-chip machine.
#[test]
fn cycle_stats_aggregates_match_the_slotstats_merge_exactly() {
    let app = by_name(APP).expect("paper app");
    for (arch, chips) in [
        (ArchKind::Fa8, 1),
        (ArchKind::Fa4, 1),
        (ArchKind::Fa2, 1),
        (ArchKind::Fa1, 1),
        (ArchKind::Smt4, 1),
        (ArchKind::Smt2, 1),
        (ArchKind::Smt1, 1),
        (ArchKind::Fa4, 4),
        (ArchKind::Smt2, 4),
    ] {
        let mut probe = LastSnapshot::default();
        let r = simulate_probed(
            &app,
            arch.chip(),
            chips,
            SCALE,
            SEED,
            csmt_mem::MemConfig::table3(),
            &mut probe,
        );
        let last = probe.0.expect("run emitted at least one cycle");
        let name = arch.name();
        assert!(
            last.useful == r.slots.useful,
            "{name}×{chips}: useful {} != {}",
            last.useful,
            r.slots.useful
        );
        for h in Hazard::ALL {
            assert!(
                last.wasted[h.index()] == r.slots.wasted[h.index()],
                "{name}×{chips}: wasted[{}] {} != {}",
                h.label(),
                last.wasted[h.index()],
                r.slots.wasted[h.index()]
            );
        }
        assert_eq!(last.slots, r.slots.slots, "{name}×{chips}");
        assert_eq!(last.cycles, r.slots.cycles, "{name}×{chips}");
        assert_eq!(last.committed, r.slots.committed, "{name}×{chips}");
        assert_eq!(last.accesses, r.mem.accesses, "{name}×{chips}");
        assert_eq!(last.l1_hits, r.mem.l1_hits, "{name}×{chips}");
        assert_eq!(last.l2_hits, r.mem.l2_hits, "{name}×{chips}");
        assert_eq!(last.tlb_misses, r.mem.tlb_misses, "{name}×{chips}");
    }
}

/// Guarantee 3: the Perfetto export of a real run parses back and is
/// schema-clean, with both slice and counter tracks present.
#[test]
fn perfetto_export_from_a_real_run_loads_cleanly() {
    let app = by_name(APP).expect("paper app");
    let mut probe = MetricsProbe::new(500);
    let r = simulate_probed(
        &app,
        ArchKind::Smt2.chip(),
        1,
        SCALE,
        SEED,
        csmt_mem::MemConfig::table3(),
        &mut probe,
    );
    let report = probe.finish();
    let json = report.trace.to_json();
    let parsed: serde::Value = serde_json::from_str(&json).expect("trace JSON parses");
    let n = validate_trace(&parsed).expect("trace is schema-clean");
    assert_eq!(n, report.trace.len());
    let events = parsed
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .expect("traceEvents");
    let count_ph = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(serde::Value::as_str) == Some(ph))
            .count()
    };
    assert!(count_ph("X") > 0, "no occupancy slices");
    assert!(count_ph("C") > 0, "no counter samples");
    // One named track per hardware context that fetched anything: SMT2
    // has 2 clusters x 4 contexts on one chip.
    let thread_names = events
        .iter()
        .filter(|e| e.get("name").and_then(serde::Value::as_str) == Some("thread_name"))
        .count();
    assert_eq!(thread_names, 8);
    assert!(r.cycles > 0);
}

/// The histograms of a real run carry plausible pipeline numbers — a
/// smoke check that the channels are wired to the right quantities
/// (lifetimes at least the pipeline depth, occupancy within the window).
#[test]
fn histograms_carry_pipeline_shaped_values() {
    let app = by_name(APP).expect("paper app");
    let mut probe = MetricsProbe::new(500);
    let r = simulate_probed(
        &app,
        ArchKind::Fa4.chip(),
        1,
        SCALE,
        SEED,
        csmt_mem::MemConfig::table3(),
        &mut probe,
    );
    let report = probe.finish();
    // Fetch→commit takes at least the front-end + commit latency.
    for (c, h) in report.lifetime_by_cluster.iter().enumerate() {
        assert!(h.count() > 0, "cluster {c} committed nothing");
        assert!(h.min() >= 2, "cluster {c}: lifetime {} too short", h.min());
    }
    // Loads were observed, and misses resided in MSHRs.
    assert!(report.load_use.count() > 0);
    assert!(report.mshr_residency.count() > 0);
    assert!(report.mshr_residency.min() >= 1);
    // Occupancy snapshots: one per cluster per cycle, bounded by the
    // window size.
    let window = ArchKind::Fa4.chip().cluster.window_entries as u64;
    for (c, h) in report.window_occ.iter().enumerate() {
        assert_eq!(h.count(), r.cycles, "cluster {c} occupancy samples");
        assert!(h.max() <= window, "cluster {c}: occupancy above window");
    }
    // The IPC timeline averages back to the run's IPC.
    assert!(!report.ipc_timeline.is_empty());
}
