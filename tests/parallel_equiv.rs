//! Differential proof that the two-phase parallel step is bit-for-bit
//! invisible: for random (architecture × chips × application × seed)
//! points, a machine run with the parallel cluster phase enabled — both
//! inline (1 worker) and through the real worker pool (2 workers) — must
//! produce the *identical* serialized `RunResult` (every statistic,
//! including the `f64` hazard accumulations), the identical cycle count,
//! and the identical full probe-event stream as the serial machine:
//! every fetch/issue/commit event, every cache event (regenerated live
//! during the serial commit phase), and every per-cycle `cycle_end`
//! snapshot, whose `CycleStats` now come from the machine's O(1) running
//! aggregates instead of a full per-cycle `SlotStats` merge.
//!
//! The matrix composes with the stall fast-forward (on/off) and with the
//! dynamic scheduling policies, since those interleave serial-only
//! cycles (drain/migration events force the serial fallback) with
//! parallel-eligible ones — exercising the mode boundary both ways.

use csmt_core::sched::by_name as sched_by_name;
use csmt_core::{ArchKind, Machine};
use csmt_mem::MemConfig;
use csmt_verify::{EventDigest, SchedEventDigest};
use csmt_workloads::{build_streams, by_name, AppParams};
use proptest::prelude::*;

const SCALE: f64 = 0.05;
const MAX_CYCLES: u64 = 2_000_000_000;

/// How to step the machine: the serial baseline, the tape/replay path
/// run inline on the coordinating thread, or the real worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Serial,
    ParallelInline,
    ParallelPool,
}

impl Mode {
    fn configure(self, m: &mut Machine) {
        match self {
            Mode::Serial => m.set_parallel(false),
            Mode::ParallelInline => {
                m.set_parallel(true);
                m.set_parallel_threads(1);
            }
            Mode::ParallelPool => {
                m.set_parallel(true);
                m.set_parallel_threads(2);
            }
        }
    }
}

/// Run `app` on (`arch` × `chips`) in `mode`; returns (serialized
/// RunResult, cycles, event digest, event count).
fn run_once(
    arch: ArchKind,
    chips: usize,
    app_name: &str,
    seed: u64,
    fastforward: bool,
    mode: Mode,
) -> (String, u64, u64, u64) {
    let app = by_name(app_name).expect("paper app");
    let mut m = Machine::new(arch.chip(), chips, MemConfig::table3(), seed);
    m.set_fastforward(fastforward);
    mode.configure(&mut m);
    let n_threads = m.hw_thread_capacity();
    let params = AppParams::new(n_threads, chips, SCALE, seed);
    m.attach_threads(build_streams(&app, &params));
    let mut probe = EventDigest::new();
    let r = m.run_probed(MAX_CYCLES, &mut probe);
    let json = serde_json::to_string(&r).expect("RunResult serializes");
    (json, r.cycles, probe.hash(), probe.events())
}

/// Like [`run_once`] but under a dynamic scheduling policy, with the
/// scheduler-event digest (migration events included).
fn run_once_sched(
    arch: ArchKind,
    app_name: &str,
    seed: u64,
    policy: &str,
    fastforward: bool,
    mode: Mode,
) -> (String, u64, u64, u64) {
    let app = by_name(app_name).expect("paper app");
    let mut m = Machine::new(arch.chip(), 1, MemConfig::table3(), seed);
    m.set_fastforward(fastforward);
    mode.configure(&mut m);
    m.set_scheduler(sched_by_name(policy).expect("known policy"))
        .expect("dynamic-capable arch");
    let n_threads = m.hw_thread_capacity();
    let params = AppParams::new(n_threads, 1, SCALE, seed);
    m.attach_threads(build_streams(&app, &params));
    let mut probe = SchedEventDigest::new();
    let r = m.run_probed(MAX_CYCLES, &mut probe);
    let json = serde_json::to_string(&r).expect("RunResult serializes");
    (json, r.cycles, probe.hash(), probe.events())
}

fn arb_arch() -> impl Strategy<Value = ArchKind> {
    prop_oneof![
        Just(ArchKind::Fa8),
        Just(ArchKind::Fa4),
        Just(ArchKind::Fa2),
        Just(ArchKind::Fa1),
        Just(ArchKind::Smt4),
        Just(ArchKind::Smt2),
        Just(ArchKind::Smt1),
    ]
}

fn arb_chips() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4)]
}

fn arb_app() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("mgrid"), Just("ocean"), Just("fmm"), Just("swim")]
}

fn arb_ff() -> impl Strategy<Value = bool> {
    any::<bool>()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Serial vs parallel (inline and pooled): identical RunResult
    /// (bit-for-bit, via its JSON serialization), identical cycle count,
    /// identical event stream — with the fast-forward in both states.
    #[test]
    fn parallel_step_is_bit_for_bit_invisible(
        arch in arb_arch(),
        chips in arb_chips(),
        app in arb_app(),
        seed in 0u64..1 << 48,
        ff in arb_ff(),
    ) {
        let serial = run_once(arch, chips, app, seed, ff, Mode::Serial);
        for mode in [Mode::ParallelInline, Mode::ParallelPool] {
            let par = run_once(arch, chips, app, seed, ff, mode);
            prop_assert_eq!(serial.1, par.1, "cycle counts differ ({:?})", mode);
            prop_assert_eq!(serial.3, par.3, "event counts differ ({:?})", mode);
            prop_assert_eq!(serial.2, par.2, "event streams differ ({:?})", mode);
            prop_assert_eq!(&serial.0, &par.0, "RunResults differ ({:?})", mode);
        }
    }

    /// Composed with dynamic scheduling: drain/migration cycles force
    /// the serial fallback mid-run, so the machine flips between modes;
    /// results and scheduler-event streams must not notice.
    #[test]
    fn parallel_step_composes_with_dynamic_scheduling(
        arch in prop_oneof![Just(ArchKind::Smt4), Just(ArchKind::Smt2), Just(ArchKind::Smt1)],
        app in arb_app(),
        seed in 0u64..1 << 48,
        policy in prop_oneof![Just("barrier"), Just("hazard_pairing")],
        ff in arb_ff(),
    ) {
        let serial = run_once_sched(arch, app, seed, policy, ff, Mode::Serial);
        for mode in [Mode::ParallelInline, Mode::ParallelPool] {
            let par = run_once_sched(arch, app, seed, policy, ff, mode);
            prop_assert_eq!(serial.1, par.1, "cycle counts differ ({:?})", mode);
            prop_assert_eq!(serial.3, par.3, "event counts differ ({:?})", mode);
            prop_assert_eq!(serial.2, par.2, "event streams differ ({:?})", mode);
            prop_assert_eq!(&serial.0, &par.0, "RunResults differ ({:?})", mode);
        }
    }
}

/// A deterministic anchor alongside the random sweep: the exact
/// golden-digest configuration (`mgrid`, seed 0xC5317) plus a 4-chip
/// high-end point, through the real worker pool, checked on every test
/// run regardless of proptest's case stream.
#[test]
fn parallel_matches_serial_on_golden_configs() {
    for (arch, chips) in [
        (ArchKind::Smt2, 1),
        (ArchKind::Fa8, 1),
        (ArchKind::Fa4, 4),
        (ArchKind::Smt4, 4),
    ] {
        let serial = run_once(arch, chips, "mgrid", 0xC5_317, true, Mode::Serial);
        for mode in [Mode::ParallelInline, Mode::ParallelPool] {
            let par = run_once(arch, chips, "mgrid", 0xC5_317, true, mode);
            assert_eq!(serial, par, "{} × {chips} chips ({mode:?})", arch.name());
        }
    }
}
