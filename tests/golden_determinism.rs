//! Golden determinism digests for the pipeline refactor.
//!
//! Locks the exact behavior of the simulator — cycle counts, committed
//! instruction counts, the full serialized `RunResult` (SlotStats +
//! MemStats), and the complete probe event stream — for every Table 2
//! architecture on one application at a small scale, seed `0xC5317`.
//! Any behavioral drift in the cluster pipeline (however subtle) changes
//! at least one digest and fails this test loudly.
//!
//! The expected values below were captured on the pre-refactor monolithic
//! `cluster.rs` (PR 1 tree); the staged-pipeline refactor must reproduce
//! them bit for bit.
//!
//! To re-capture after an *intentional* behavior change:
//! `GOLDEN_PRINT=1 cargo test -q --test golden_determinism -- --nocapture`

use csmt_core::ArchKind;
use csmt_verify::{EventDigest, Fnv64};
use csmt_workloads::{by_name, simulate_probed};

const SCALE: f64 = 0.2;
const SEED: u64 = 0xC5_317;
const APP: &str = "mgrid";

/// The seven distinct Table 2 configurations (SMT8 is an alias of FA8).
const ARCHS: [ArchKind; 7] = [
    ArchKind::Fa8,
    ArchKind::Fa4,
    ArchKind::Fa2,
    ArchKind::Fa1,
    ArchKind::Smt4,
    ArchKind::Smt2,
    ArchKind::Smt1,
];

/// (arch name, cycles, committed, run-result digest, event-stream digest).
const EXPECTED: [(&str, u64, u64, u64, u64); 7] = [
    ("FA8", 6058, 22160, 0x0d891347a8914ae8, 0x656c89d5235c2afd),
    ("FA4", 5340, 22160, 0xa6c7284c45fae13a, 0x120697d0b4231f2e),
    ("FA2", 6149, 22160, 0x4c99a2de9ddf9f43, 0xf2ebe0834ebe552f),
    ("FA1", 8665, 22160, 0x144a8c1fa702cfc3, 0xf8f180d6999a2e17),
    ("SMT4", 4888, 22160, 0x825206c50b75ecef, 0xd366a456ae9b3b7e),
    ("SMT2", 4875, 22160, 0xc6eb617c0c8ad226, 0x6eb0a38eb0955692),
    ("SMT1", 5195, 22160, 0xd9530d8cd531ffe1, 0xa912b83cb94c7ebf),
];

#[test]
fn per_architecture_digests_are_bit_for_bit_stable() {
    let app = by_name(APP).expect("paper app");
    let mem = csmt_mem::MemConfig::table3;
    let capture = std::env::var_os("GOLDEN_PRINT").is_some();
    let mut failures = Vec::new();
    for (i, arch) in ARCHS.into_iter().enumerate() {
        let mut probe = EventDigest::new();
        let r = simulate_probed(&app, arch.chip(), 1, SCALE, SEED, mem(), &mut probe);
        let json = serde_json::to_string(&r).expect("RunResult serializes");
        let mut rd = Fnv64::new();
        rd.update(json.as_bytes());
        let got = (
            arch.name(),
            r.cycles,
            r.slots.committed,
            rd.finish(),
            probe.hash(),
        );
        if capture {
            println!(
                "    (\"{}\", {}, {}, 0x{:016x}, 0x{:016x}),",
                got.0, got.1, got.2, got.3, got.4
            );
            continue;
        }
        let want = EXPECTED[i];
        if got != want {
            failures.push(format!(
                "{}: got (cycles={}, committed={}, result=0x{:016x}, events=0x{:016x} [{} events]), \
                 want (cycles={}, committed={}, result=0x{:016x}, events=0x{:016x})",
                got.0, got.1, got.2, got.3, got.4, probe.events(), want.1, want.2, want.3, want.4
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "behavioral drift detected:\n{}",
        failures.join("\n")
    );
}

/// (cycles, committed, run-result digest, event-stream digest) for the
/// high-end 4-chip FA4 machine — the configuration where the stall
/// fast-forward skips the most (remote misses stretch every stall), so
/// any drift in the skip path shows up here first.
const EXPECTED_FA4_4CHIP: (u64, u64, u64, u64) =
    (3293, 22160, 0xe72e0421d0136629, 0xa67e4cf7854176b1);

/// Pins the high-end (4-chip, CC-NUMA) machine, complementing the
/// single-chip sweep above: remote L2/memory latencies, directory
/// invalidations and inter-chip sharing are all exercised only here.
#[test]
fn high_end_four_chip_digest_is_bit_for_bit_stable() {
    let app = by_name(APP).expect("paper app");
    let mut probe = EventDigest::new();
    let r = simulate_probed(
        &app,
        ArchKind::Fa4.chip(),
        4,
        SCALE,
        SEED,
        csmt_mem::MemConfig::table3(),
        &mut probe,
    );
    let json = serde_json::to_string(&r).expect("RunResult serializes");
    let mut rd = Fnv64::new();
    rd.update(json.as_bytes());
    let got = (r.cycles, r.slots.committed, rd.finish(), probe.hash());
    if std::env::var_os("GOLDEN_PRINT").is_some() {
        println!(
            "    FA4x4: ({}, {}, 0x{:016x}, 0x{:016x})",
            got.0, got.1, got.2, got.3
        );
        return;
    }
    assert_eq!(
        got,
        EXPECTED_FA4_4CHIP,
        "behavioral drift on the 4-chip high-end machine ({} events)",
        probe.events()
    );
}

/// Explicitly installing the default scheduling policy
/// (`StaticRoundRobin`, what `CSMT_SCHED=static` selects) must reproduce
/// every golden digest bit for bit: the scheduler seam with the static
/// policy is pure plumbing, invisible to cycles, statistics, and the
/// event stream alike.
#[test]
fn static_round_robin_reproduces_every_golden_digest() {
    use csmt_core::sched::StaticRoundRobin;
    use csmt_core::Machine;
    use csmt_workloads::{build_streams, AppParams};

    let app = by_name(APP).expect("paper app");
    for (i, arch) in ARCHS.into_iter().enumerate() {
        let mut m = Machine::new(arch.chip(), 1, csmt_mem::MemConfig::table3(), SEED);
        m.set_scheduler(Box::new(StaticRoundRobin))
            .expect("static policy is valid everywhere");
        let n_threads = m.hw_thread_capacity();
        let params = AppParams::new(n_threads, 1, SCALE, SEED);
        m.attach_threads(build_streams(&app, &params));
        let mut probe = EventDigest::new();
        let r = m.run_probed(2_000_000_000, &mut probe);
        let json = serde_json::to_string(&r).expect("RunResult serializes");
        let mut rd = Fnv64::new();
        rd.update(json.as_bytes());
        let got = (
            arch.name(),
            r.cycles,
            r.slots.committed,
            rd.finish(),
            probe.hash(),
        );
        assert_eq!(
            got, EXPECTED[i],
            "explicit StaticRoundRobin drifted from the golden digest"
        );
        assert_eq!(r.migrations, 0, "{}: static policy must not migrate", got.0);
    }
}

/// The digests must not depend on whether a probe observes the run: the
/// unprobed path (`NullProbe` monomorphization) must produce the same
/// statistics as the probed one.
#[test]
fn probed_and_unprobed_runs_agree() {
    let app = by_name(APP).expect("paper app");
    for arch in [ArchKind::Smt2, ArchKind::Fa8] {
        let plain = csmt_workloads::simulate(&app, arch, 1, SCALE, SEED);
        let mut probe = EventDigest::new();
        let probed = simulate_probed(
            &app,
            arch.chip(),
            1,
            SCALE,
            SEED,
            csmt_mem::MemConfig::table3(),
            &mut probe,
        );
        assert_eq!(plain.cycles, probed.cycles, "{}", arch.name());
        assert_eq!(plain.slots, probed.slots, "{}", arch.name());
        assert_eq!(plain.mem, probed.mem, "{}", arch.name());
        assert!(probe.events() > 0);
    }
}
