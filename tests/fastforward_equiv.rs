//! Differential proof that the event-driven stall fast-forward is
//! bit-for-bit invisible: for random (architecture × chips × application ×
//! seed) points, a machine run with the fast-forward enabled must produce
//! the *identical* serialized `RunResult` (every statistic, including the
//! `f64` hazard accumulations), the identical cycle count, and the
//! identical full probe-event stream — every fetch/issue/commit event and
//! every per-cycle `cycle_end` snapshot, including those fired during
//! skipped spans — as the same machine stepped cycle by cycle.
//!
//! Runs under `profile.test` with `debug_assertions` on, so the per-cycle
//! weight-drift assertion inside the skip path is also live.

use csmt_core::{ArchKind, Machine};
use csmt_mem::MemConfig;
use csmt_verify::EventDigest;
use csmt_workloads::{build_streams, by_name, AppParams};
use proptest::prelude::*;

const SCALE: f64 = 0.05;
const MAX_CYCLES: u64 = 2_000_000_000;

/// Run `app` on (`arch` × `chips`) with the fast-forward forced to
/// `fastforward` and the two-phase parallel step forced to `parallel`;
/// returns (serialized RunResult, cycles, event digest, event count).
fn run_once(
    arch: ArchKind,
    chips: usize,
    app_name: &str,
    seed: u64,
    fastforward: bool,
    parallel: bool,
) -> (String, u64, u64, u64) {
    let app = by_name(app_name).expect("paper app");
    let mut m = Machine::new(arch.chip(), chips, MemConfig::table3(), seed);
    m.set_fastforward(fastforward);
    m.set_parallel(parallel);
    let n_threads = m.hw_thread_capacity();
    let params = AppParams::new(n_threads, chips, SCALE, seed);
    m.attach_threads(build_streams(&app, &params));
    let mut probe = EventDigest::new();
    let r = m.run_probed(MAX_CYCLES, &mut probe);
    let json = serde_json::to_string(&r).expect("RunResult serializes");
    (json, r.cycles, probe.hash(), probe.events())
}

fn arb_arch() -> impl Strategy<Value = ArchKind> {
    prop_oneof![
        Just(ArchKind::Fa8),
        Just(ArchKind::Fa4),
        Just(ArchKind::Fa2),
        Just(ArchKind::Fa1),
        Just(ArchKind::Smt4),
        Just(ArchKind::Smt2),
        Just(ArchKind::Smt1),
    ]
}

fn arb_chips() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4)]
}

fn arb_app() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("mgrid"), Just("ocean"), Just("fmm"), Just("swim")]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Fast-forward × parallel stepping, all four combinations against
    /// the plain stepped-serial baseline: identical RunResult
    /// (bit-for-bit, via its JSON serialization), identical cycle count,
    /// identical event stream.
    #[test]
    fn fastforward_is_bit_for_bit_invisible(
        arch in arb_arch(),
        chips in arb_chips(),
        app in arb_app(),
        seed in 0u64..1 << 48,
    ) {
        let baseline = run_once(arch, chips, app, seed, false, false);
        for (ff, par) in [(true, false), (false, true), (true, true)] {
            let other = run_once(arch, chips, app, seed, ff, par);
            prop_assert_eq!(baseline.1, other.1, "cycle counts differ (ff={}, par={})", ff, par);
            prop_assert_eq!(baseline.3, other.3, "event counts differ (ff={}, par={})", ff, par);
            prop_assert_eq!(baseline.2, other.2, "event streams differ (ff={}, par={})", ff, par);
            prop_assert_eq!(&baseline.0, &other.0, "RunResults differ (ff={}, par={})", ff, par);
        }
    }
}

/// A deterministic anchor alongside the random sweep: the exact
/// golden-digest configuration (`mgrid`, seed 0xC5317) plus a 4-chip
/// high-end point, checked on every test run regardless of proptest's
/// case stream.
#[test]
fn fastforward_matches_stepped_on_golden_configs() {
    for (arch, chips) in [
        (ArchKind::Smt2, 1),
        (ArchKind::Fa8, 1),
        (ArchKind::Fa4, 4),
        (ArchKind::Smt4, 4),
    ] {
        let stepped = run_once(arch, chips, "mgrid", 0xC5_317, false, false);
        for (ff, par) in [(true, false), (false, true), (true, true)] {
            let other = run_once(arch, chips, "mgrid", 0xC5_317, ff, par);
            assert_eq!(
                stepped,
                other,
                "{} × {chips} chips (ff={ff}, par={par})",
                arch.name()
            );
        }
    }
}
