//! Integration tests of the paper's headline claims, end to end through the
//! public API: six applications × Table 2 architectures on both machines.
//!
//! These run at a reduced work scale; the claims asserted here are the ones
//! that are robust across scales (checked against the full-scale figure
//! binaries, see EXPERIMENTS.md). Small tolerances absorb the residual
//! scale sensitivity.

use clustered_smt::prelude::*;
use csmt_core::ArchKind;
use std::collections::HashMap;
use std::sync::OnceLock;

const SCALE: f64 = 0.25;
const SEED: u64 = 0xC5_317;

/// All (app, arch, chips) results, computed once and shared across tests.
fn results() -> &'static HashMap<(String, ArchKind, usize), RunResult> {
    static CELL: OnceLock<HashMap<(String, ArchKind, usize), RunResult>> = OnceLock::new();
    CELL.get_or_init(|| {
        let mut out = HashMap::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = all_apps()
                .into_iter()
                .flat_map(|app| {
                    let mut v = Vec::new();
                    for arch in ArchKind::FA_FIGURES
                        .into_iter()
                        .chain([ArchKind::Smt4, ArchKind::Smt1])
                    {
                        for chips in [1usize, 4] {
                            let app = app.clone();
                            v.push(s.spawn(move || {
                                let r = simulate(&app, arch, chips, SCALE, SEED);
                                ((app.name.to_string(), arch, chips), r)
                            }));
                        }
                    }
                    v
                })
                .collect();
            for h in handles {
                let (k, v) = h.join().expect("sim thread");
                out.insert(k, v);
            }
        });
        out
    })
}

fn get(app: &str, arch: ArchKind, chips: usize) -> &'static RunResult {
    &results()[&(app.to_string(), arch, chips)]
}

const APPS: [&str; 6] = ["swim", "tomcatv", "mgrid", "vpenta", "fmm", "ocean"];
const FAS: [ArchKind; 4] = [ArchKind::Fa8, ArchKind::Fa4, ArchKind::Fa2, ArchKind::Fa1];

/// Figure 4's headline: the clustered SMT2 takes the fewest cycles of the
/// five compared architectures on every application (small tolerance for
/// the reduced test scale).
#[test]
fn smt2_beats_or_ties_every_fa_low_end() {
    for app in APPS {
        let smt2 = get(app, ArchKind::Smt2, 1).cycles as f64;
        for fa in FAS {
            let fa_c = get(app, fa, 1).cycles as f64;
            assert!(
                smt2 <= fa_c * 1.03,
                "{app}: SMT2 {smt2} vs {} {fa_c}",
                fa.name()
            );
        }
    }
}

/// Figure 5's headline: the same holds on the 4-chip high-end machine.
#[test]
fn smt2_beats_or_ties_every_fa_high_end() {
    for app in APPS {
        let smt2 = get(app, ArchKind::Smt2, 4).cycles as f64;
        for fa in FAS {
            let fa_c = get(app, fa, 4).cycles as f64;
            assert!(
                smt2 <= fa_c * 1.03,
                "{app}: SMT2 {smt2} vs {} {fa_c}",
                fa.name()
            );
        }
    }
}

/// §5.1: "no FA processor is clearly the best" — the conventional
/// superscalar (FA1) in particular is never the best FA on the low-end
/// machine for the highly parallel applications.
#[test]
fn fa1_is_not_best_for_parallel_apps_low_end() {
    for app in ["vpenta", "ocean", "mgrid", "swim"] {
        let fa1 = get(app, ArchKind::Fa1, 1).cycles;
        let best_other = FAS[..3]
            .iter()
            .map(|&a| get(app, a, 1).cycles)
            .min()
            .unwrap();
        assert!(
            fa1 > best_other,
            "{app}: FA1 {fa1} vs best narrow FA {best_other}"
        );
    }
}

/// §5.1: vpenta and ocean are the FA8-friendly applications — FA8 beats
/// FA1 dramatically for them.
#[test]
fn vpenta_and_ocean_prefer_many_narrow_processors() {
    for app in ["vpenta", "ocean"] {
        let fa8 = get(app, ArchKind::Fa8, 1).cycles as f64;
        let fa1 = get(app, ArchKind::Fa1, 1).cycles as f64;
        assert!(fa1 > fa8 * 1.5, "{app}: FA1 {fa1} vs FA8 {fa8}");
    }
}

/// §5.1 hazard trend: "As the number of processors per chip decreases, the
/// contribution of the sync hazard steadily decreases, while the data and
/// memory hazards steadily increase."
#[test]
fn fa_hazard_trends_match_section_5_1() {
    for app in APPS {
        let sync = |a: ArchKind| get(app, a, 1).hazard_fraction(Hazard::Sync);
        let datamem = |a: ArchKind| {
            let r = get(app, a, 1);
            r.hazard_fraction(Hazard::Data) + r.hazard_fraction(Hazard::Memory)
        };
        assert!(
            sync(ArchKind::Fa8) > sync(ArchKind::Fa1),
            "{app}: sync FA8 {} !> FA1 {}",
            sync(ArchKind::Fa8),
            sync(ArchKind::Fa1)
        );
        assert!(
            datamem(ArchKind::Fa1) > datamem(ArchKind::Fa8),
            "{app}: data+mem FA1 {} !> FA8 {}",
            datamem(ArchKind::Fa1),
            datamem(ArchKind::Fa8)
        );
    }
}

/// §5.2 / Figure 7: SMT2 is within a few percent of the centralized SMT1
/// in cycle count (the paper reports 0–9%; we allow ±12% at test scale).
#[test]
fn smt2_close_to_centralized_smt1() {
    for chips in [1usize, 4] {
        for app in APPS {
            let smt2 = get(app, ArchKind::Smt2, chips).cycles as f64;
            let smt1 = get(app, ArchKind::Smt1, chips).cycles as f64;
            let delta = (smt2 - smt1).abs() / smt1;
            assert!(
                delta < 0.12,
                "{app} ({chips} chips): SMT2 {smt2} vs SMT1 {smt1}"
            );
        }
    }
}

/// §5.2's conclusion: once the Palacharla-Jouppi clock factors are applied
/// (2× cycle time for 8-issue clusters), SMT2 is the most cost-effective
/// organization on every application.
#[test]
fn clock_adjusted_smt2_wins_everywhere() {
    let adjusted = |app: &str, arch: ArchKind| {
        let clock = if arch.chip().cluster.issue_width == 8 {
            2.0
        } else {
            1.0
        };
        get(app, arch, 1).cycles as f64 * clock
    };
    for app in APPS {
        let smt2 = adjusted(app, ArchKind::Smt2);
        for arch in [
            ArchKind::Fa8,
            ArchKind::Fa4,
            ArchKind::Fa2,
            ArchKind::Fa1,
            ArchKind::Smt4,
            ArchKind::Smt1,
        ] {
            assert!(
                smt2 <= adjusted(app, arch) * 1.03,
                "{app}: SMT2 {smt2} vs {} {}",
                arch.name(),
                adjusted(app, arch)
            );
        }
    }
}

/// Figure 6's qualitative layout: vpenta/ocean are the most
/// thread-parallel applications, tomcatv the least; swim carries more ILP
/// than ocean/vpenta.
#[test]
fn figure6_application_ordering() {
    let threads = |app: &str| get(app, ArchKind::Fa8, 1).avg_running_threads;
    let ilp = |app: &str| get(app, ArchKind::Fa1, 1).ipc();
    assert!(threads("vpenta") > threads("tomcatv") + 2.0);
    assert!(threads("ocean") > threads("tomcatv") + 2.0);
    assert!(threads("tomcatv") < 4.5);
    assert!(ilp("swim") > ilp("ocean"));
    assert!(ilp("swim") > ilp("vpenta"));
}

/// Amdahl on the high-end machine (§5.1): with four chips, serial sections
/// and load imbalance grow in importance — sync fractions rise relative to
/// the low-end machine for the many-thread architectures.
#[test]
fn high_end_increases_sync_pressure() {
    let mut grew = 0;
    for app in APPS {
        let low = get(app, ArchKind::Fa8, 1).hazard_fraction(Hazard::Sync);
        let high = get(app, ArchKind::Fa8, 4).hazard_fraction(Hazard::Sync);
        if high > low {
            grew += 1;
        }
    }
    assert!(grew >= 5, "sync grew for only {grew}/6 applications");
}

/// Remote traffic exists only on the multi-chip machine.
#[test]
fn remote_traffic_only_on_high_end() {
    for app in APPS {
        let low = get(app, ArchKind::Smt2, 1);
        let high = get(app, ArchKind::Smt2, 4);
        assert_eq!(low.mem.remote_mem + low.mem.remote_l2, 0, "{app} low-end");
        assert!(
            high.mem.remote_mem + high.mem.remote_l2 > 0,
            "{app} high-end"
        );
    }
}

/// The simulator is deterministic end to end.
#[test]
fn end_to_end_determinism() {
    let app = by_name("fmm").unwrap();
    let a = simulate(&app, ArchKind::Smt2, 4, 0.1, 99);
    let b = simulate(&app, ArchKind::Smt2, 4, 0.1, 99);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.slots, b.slots);
    assert_eq!(a.mem, b.mem);
}

/// Different seeds produce different (but valid) runs.
#[test]
fn seeds_matter() {
    let app = by_name("fmm").unwrap();
    let a = simulate(&app, ArchKind::Smt2, 1, 0.1, 1);
    let b = simulate(&app, ArchKind::Smt2, 1, 0.1, 2);
    assert_ne!(a.cycles, b.cycles);
}
