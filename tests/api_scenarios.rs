//! Cross-crate scenarios driving the public API with hand-built workloads:
//! lock mutual exclusion through the full pipeline, coherence visibility
//! across chips, custom architectures outside Table 2, and mid-run
//! inspection.

use clustered_smt::prelude::*;
use csmt_core::{ArchKind, ChipConfig, Machine};
use csmt_isa::stream::VecStream;
use csmt_isa::ArchReg;

fn alu(pc: u64) -> DynInst {
    DynInst::alu(
        pc,
        OpClass::IntAlu,
        Some(ArchReg::Int(1)),
        [Some(ArchReg::Int(1)), None],
    )
}

fn thread_with_lock(work: u64, lock_id: u32, addr: u64) -> Box<dyn InstStream + Send> {
    let mut v = Vec::new();
    for i in 0..work {
        v.push(alu(i * 4));
    }
    v.push(DynInst::sync(0x900, SyncOp::LockAcquire(lock_id)));
    v.push(DynInst::load(0x904, ArchReg::Int(2), addr, [None, None]));
    v.push(DynInst::store(0x908, addr, [Some(ArchReg::Int(2)), None]));
    v.push(DynInst::sync(0x90C, SyncOp::LockRelease(lock_id)));
    v.push(DynInst::sync(0x910, SyncOp::Barrier(0)));
    Box::new(VecStream::new(v))
}

#[test]
fn contended_lock_serializes_critical_sections() {
    let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 1);
    // All 8 threads contend for one lock around one shared address.
    m.attach_threads(
        (0..8)
            .map(|t| thread_with_lock(5 + t, 7, 0xBEEF00))
            .collect(),
    );
    let r = m.run(10_000_000);
    assert_eq!(r.lock_acquisitions, 8, "every thread acquired exactly once");
    assert_eq!(r.barrier_episodes, 1);
    // Contention shows up as sync slots.
    assert!(r.hazard_fraction(Hazard::Sync) > 0.05);
}

#[test]
fn uncontended_locks_are_cheap() {
    // Same shape, but each thread has its own lock: completion should be
    // substantially faster than the contended version.
    let contended = {
        let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 1);
        m.attach_threads(
            (0..8)
                .map(|t| thread_with_lock(200, 7, 0xBEEF00 + t * 64))
                .collect(),
        );
        m.run(10_000_000).cycles
    };
    let private = {
        let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 1);
        m.attach_threads(
            (0..8)
                .map(|t| thread_with_lock(200, t as u32, 0xBEEF00 + t * 64))
                .collect(),
        );
        m.run(10_000_000).cycles
    };
    assert!(
        private < contended,
        "private locks {private} should beat one contended lock {contended}"
    );
}

#[test]
fn cross_chip_sharing_costs_coherence_traffic() {
    // Two chips running a textbook neighbor exchange: every round, each
    // thread writes its own line, hits a barrier, then reads the line the
    // *other* thread just wrote. Every round must therefore invalidate the
    // reader's stale copy and service the read cache-to-cache. The control
    // variant reads its own line back (all local).
    const ROUNDS: u64 = 50;
    let mk = |exchange: bool| {
        let mut m = Machine::new(ArchKind::Fa1.chip(), 2, MemConfig::table3(), 3);
        let stream = |own: u64, other: u64| -> Box<dyn InstStream + Send> {
            let mut v = Vec::new();
            for i in 0..ROUNDS {
                v.push(DynInst::store(i * 12, own, [Some(ArchReg::Int(2)), None]));
                v.push(DynInst::sync(i * 12 + 4, SyncOp::Barrier(i as u32)));
                v.push(DynInst::load(
                    i * 12 + 8,
                    ArchReg::Int(2),
                    other,
                    [None, None],
                ));
            }
            Box::new(VecStream::new(v))
        };
        let (a, b) = (0x10000u64, 0x20000u64);
        if exchange {
            m.attach_threads(vec![stream(a, b), stream(b, a)]);
        } else {
            m.attach_threads(vec![stream(a, a), stream(b, b)]);
        }
        m.run(10_000_000)
    };
    let shared = mk(true);
    let private = mk(false);
    assert!(
        shared.mem.invalidations >= ROUNDS,
        "each round must invalidate a stale copy: {} < {ROUNDS}",
        shared.mem.invalidations
    );
    assert!(
        shared.mem.remote_l2 >= ROUNDS / 2,
        "dirty lines must travel cache-to-cache: {}",
        shared.mem.remote_l2
    );
    assert!(
        shared.mem.invalidations > private.mem.invalidations,
        "the private variant exchanges nothing: {} vs {}",
        shared.mem.invalidations,
        private.mem.invalidations
    );
    assert!(
        shared.cycles > private.cycles,
        "coherence round trips cost time: {} vs {}",
        shared.cycles,
        private.cycles
    );
}

#[test]
fn custom_architecture_outside_table2() {
    // A hypothetical 2-cluster chip of 2-issue SMT clusters (a "SMT4-lite"
    // with only 4 contexts): the API supports arbitrary shapes.
    let cfg = ChipConfig {
        kind: ArchKind::Smt4, // closest label, used for reporting only
        clusters: 2,
        cluster: ClusterConfig::for_width(2, 2),
    };
    let mut m = Machine::new(cfg, 1, MemConfig::table3(), 5);
    assert_eq!(m.hw_thread_capacity(), 4);
    m.attach_threads(
        (0..4)
            .map(|t| -> Box<dyn InstStream + Send> {
                Box::new(VecStream::new(
                    (0..300).map(|i| alu(t * 0x1000 + i * 4)).collect(),
                ))
            })
            .collect(),
    );
    let r = m.run(1_000_000);
    assert_eq!(r.slots.committed, 1200);
}

#[test]
fn mid_run_inspection_is_consistent() {
    let app = by_name("mgrid").unwrap();
    let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 42);
    let params = AppParams::new(m.hw_thread_capacity(), 1, 0.1, 42);
    m.attach_threads(csmt_workloads::build_streams(&app, &params));
    // Step 1000 cycles manually, snapshot, continue to completion.
    for _ in 0..1000 {
        m.step();
    }
    let snap = m.result();
    assert_eq!(snap.cycles, 1000);
    let accounted = snap.slots.useful + snap.slots.wasted.iter().sum::<f64>();
    assert!((accounted - snap.slots.slots as f64).abs() < 1e-6);
    while m.busy() {
        m.step();
    }
    let fin = m.result();
    assert!(fin.cycles > 1000);
    assert!(fin.slots.committed > snap.slots.committed);
}

#[test]
fn slot_accounting_is_exactly_conservative_per_machine() {
    for arch in [ArchKind::Fa8, ArchKind::Smt2, ArchKind::Smt1] {
        let app = by_name("swim").unwrap();
        let r = simulate(&app, arch, 1, 0.1, 7);
        let accounted = r.slots.useful + r.slots.wasted.iter().sum::<f64>();
        assert!(
            (accounted - r.slots.slots as f64).abs() < 1e-3,
            "{}: {accounted} vs {}",
            arch.name(),
            r.slots.slots
        );
        // 8 issue slots per cycle per chip, every cycle accounted.
        assert_eq!(r.slots.slots, r.cycles * 8);
    }
}
