//! Integration tests for the features built beyond the paper's baseline:
//! fetch policies, branch predictors, multiprogrammed mixes, store-buffer
//! backpressure — all exercised end to end through the public API.

use clustered_smt::prelude::*;
use csmt_core::ArchKind;
use csmt_cpu::{FetchPolicy, PredictorKind};
use csmt_workloads::runner::{simulate_with_chip, simulate_with_mem};
use csmt_workloads::simulate_job_batches;

const SCALE: f64 = 0.15;

#[test]
fn icount_never_catastrophically_loses_to_round_robin() {
    for app in ["swim", "ocean"] {
        let app = by_name(app).unwrap();
        let rr = simulate_with_chip(
            &app,
            ArchKind::Smt2
                .chip()
                .with_fetch_policy(FetchPolicy::RoundRobin),
            1,
            SCALE,
            7,
            MemConfig::table3(),
        );
        let ic = simulate_with_chip(
            &app,
            ArchKind::Smt2.chip().with_fetch_policy(FetchPolicy::ICount),
            1,
            SCALE,
            7,
            MemConfig::table3(),
        );
        assert!(
            (ic.cycles as f64) < rr.cycles as f64 * 1.05,
            "{}: ICOUNT {} vs RR {}",
            app.name,
            ic.cycles,
            rr.cycles
        );
        assert_eq!(
            ic.slots.committed, rr.slots.committed,
            "same work either way"
        );
    }
}

#[test]
fn static_taken_prediction_costs_cycles() {
    let app = by_name("fmm").unwrap(); // branch-noisy
    let bimodal = simulate_with_chip(&app, ArchKind::Fa1.chip(), 1, SCALE, 7, MemConfig::table3());
    let static_taken = simulate_with_chip(
        &app,
        ArchKind::Fa1
            .chip()
            .with_predictor(PredictorKind::StaticTaken),
        1,
        SCALE,
        7,
        MemConfig::table3(),
    );
    assert!(
        static_taken.cycles > bimodal.cycles,
        "prediction must matter: {} vs {}",
        static_taken.cycles,
        bimodal.cycles
    );
    assert!(static_taken.mispredict_rate() > bimodal.mispredict_rate() * 3.0);
}

#[test]
fn gshare_history_pollution_on_smt() {
    // The shared global history register is poisoned by thread interleaving:
    // gshare's mispredict rate on SMT1 (8 threads) exceeds its rate on the
    // single-threaded FA1 by a wide margin.
    let app = by_name("mgrid").unwrap();
    let gshare = PredictorKind::GShare { history_bits: 8 };
    let fa1 = simulate_with_chip(
        &app,
        ArchKind::Fa1.chip().with_predictor(gshare),
        1,
        SCALE,
        7,
        MemConfig::table3(),
    );
    let smt1 = simulate_with_chip(
        &app,
        ArchKind::Smt1.chip().with_predictor(gshare),
        1,
        SCALE,
        7,
        MemConfig::table3(),
    );
    assert!(
        smt1.mispredict_rate() > fa1.mispredict_rate() * 2.0,
        "SMT sharing should pollute gshare history: {:.3} vs {:.3}",
        smt1.mispredict_rate(),
        fa1.mispredict_rate()
    );
}

#[test]
fn multiprogram_batches_preserve_work_and_order_smt_first() {
    let mix: Vec<AppSpec> = ["vpenta", "tomcatv"]
        .iter()
        .map(|n| by_name(n).unwrap())
        .collect();
    let smt2 = simulate_job_batches(&mix, 8, ArchKind::Smt2.chip(), 1, SCALE, 7);
    let fa2 = simulate_job_batches(&mix, 8, ArchKind::Fa2.chip(), 1, SCALE, 7);
    let fa8 = simulate_job_batches(&mix, 8, ArchKind::Fa8.chip(), 1, SCALE, 7);
    // Same committed work everywhere (seeds per job are identical).
    assert_eq!(smt2.committed, fa2.committed);
    assert_eq!(smt2.committed, fa8.committed);
    // SMT2 at least matches the best FA on total time for the fixed job set.
    assert!(
        smt2.total_cycles <= fa2.total_cycles.min(fa8.total_cycles),
        "SMT2 {} vs FA2 {} / FA8 {}",
        smt2.total_cycles,
        fa2.total_cycles,
        fa8.total_cycles
    );
}

#[test]
fn replacement_policy_changes_are_bounded() {
    // LRU vs random: measurable but not catastrophic on these workloads
    // (sanity that the policy plumbing affects only victim choice).
    let app = by_name("mgrid").unwrap();
    let lru = simulate_with_mem(&app, ArchKind::Smt2, 1, SCALE, 7, MemConfig::table3());
    let rnd = simulate_with_mem(
        &app,
        ArchKind::Smt2,
        1,
        SCALE,
        7,
        MemConfig {
            replacement: csmt_mem::Replacement::Random,
            ..MemConfig::table3()
        },
    );
    assert_eq!(lru.slots.committed, rnd.slots.committed);
    let ratio = rnd.cycles as f64 / lru.cycles as f64;
    assert!((0.8..1.3).contains(&ratio), "ratio {ratio}");
}

#[test]
fn store_buffer_backpressure_visible_only_when_tiny() {
    let app = by_name("swim").unwrap();
    let roomy = simulate_with_chip(&app, ArchKind::Fa2.chip(), 1, SCALE, 7, MemConfig::table3());
    let tiny = simulate_with_chip(
        &app,
        ArchKind::Fa2
            .chip()
            .with_cluster(|c| c.with_store_buffer(1)),
        1,
        SCALE,
        7,
        MemConfig::table3(),
    );
    assert!(
        tiny.cycles >= roomy.cycles,
        "{} vs {}",
        tiny.cycles,
        roomy.cycles
    );
    assert_eq!(tiny.slots.committed, roomy.slots.committed);
}
