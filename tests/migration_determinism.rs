//! Differential proof that dynamic thread scheduling is deterministic:
//! for random (architecture × application × seed × policy) points, two
//! runs of the same configuration must produce the *identical* serialized
//! `RunResult` (including the migration counters) and the identical full
//! probe-event stream — here extended with the scheduler's own
//! attach/depart/arrive events, which the golden digests deliberately
//! ignore — and the fast-forward must stay bit-for-bit invisible under
//! every policy, exactly as `tests/fastforward_equiv.rs` proves for the
//! static machine.
//!
//! Only the three dynamic-capable architectures appear in the sweep:
//! SMT4, SMT2 and SMT1 are the Table 2 configurations with more than one
//! hardware context per cluster, so they are the only ones where
//! `Machine::set_scheduler` accepts a migrating policy.

use csmt_core::sched::by_name;
use csmt_core::{ArchKind, Machine};
use csmt_mem::MemConfig;
use csmt_verify::SchedEventDigest;
use csmt_workloads::{build_streams, by_name as app_by_name, AppParams};
use proptest::prelude::*;

const SCALE: f64 = 0.05;
const MAX_CYCLES: u64 = 2_000_000_000;

/// One run of `app` on single-chip `arch` under `policy`; returns
/// (serialized RunResult, cycles, event digest, event count, migrations).
fn run_once(
    arch: ArchKind,
    app_name: &str,
    seed: u64,
    policy: &str,
    fastforward: bool,
    parallel: bool,
) -> (String, u64, u64, u64, u64) {
    let app = app_by_name(app_name).expect("paper app");
    let mut m = Machine::new(arch.chip(), 1, MemConfig::table3(), seed);
    m.set_fastforward(fastforward);
    m.set_parallel(parallel);
    m.set_scheduler(by_name(policy).expect("known policy"))
        .expect("dynamic-capable arch");
    let n_threads = m.hw_thread_capacity();
    let params = AppParams::new(n_threads, 1, SCALE, seed);
    m.attach_threads(build_streams(&app, &params));
    let mut probe = SchedEventDigest::new();
    let r = m.run_probed(MAX_CYCLES, &mut probe);
    let json = serde_json::to_string(&r).expect("RunResult serializes");
    (json, r.cycles, probe.hash(), probe.events(), r.migrations)
}

/// The dynamic-capable architectures: >1 hardware context per cluster.
fn arb_arch() -> impl Strategy<Value = ArchKind> {
    prop_oneof![
        Just(ArchKind::Smt4),
        Just(ArchKind::Smt2),
        Just(ArchKind::Smt1),
    ]
}

fn arb_app() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("mgrid"), Just("ocean"), Just("fmm"), Just("swim")]
}

fn arb_policy() -> impl Strategy<Value = &'static str> {
    prop_oneof![Just("static"), Just("barrier"), Just("hazard_pairing")]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Same (arch × app × seed × policy) twice: identical RunResult JSON
    /// and identical event stream — migration events included — across
    /// the fast-forward × parallel-stepping matrix, with no divergence
    /// between any pair of modes either.
    #[test]
    fn same_policy_same_seed_is_bit_for_bit_reproducible(
        arch in arb_arch(),
        app in arb_app(),
        seed in 0u64..1 << 48,
        policy in arb_policy(),
    ) {
        for ff in [false, true] {
            let a = run_once(arch, app, seed, policy, ff, false);
            let b = run_once(arch, app, seed, policy, ff, false);
            prop_assert_eq!(&a, &b, "non-deterministic run (ff={})", ff);
        }
        let stepped = run_once(arch, app, seed, policy, false, false);
        for (ff, par) in [(true, false), (false, true), (true, true)] {
            let other = run_once(arch, app, seed, policy, ff, par);
            prop_assert_eq!(stepped.1, other.1, "cycle counts differ (ff={}, par={})", ff, par);
            prop_assert_eq!(stepped.4, other.4, "migration counts differ (ff={}, par={})", ff, par);
            prop_assert_eq!(stepped.3, other.3, "event counts differ (ff={}, par={})", ff, par);
            prop_assert_eq!(stepped.2, other.2, "event streams differ (ff={}, par={})", ff, par);
            prop_assert_eq!(&stepped.0, &other.0, "RunResults differ (ff={}, par={})", ff, par);
        }
    }
}

/// A deterministic anchor alongside the random sweep: the golden-digest
/// configuration (`mgrid`, seed 0xC5317) under every policy, checked on
/// every test run regardless of proptest's case stream.
#[test]
fn every_policy_is_reproducible_on_the_golden_config() {
    for policy in ["static", "barrier", "hazard_pairing"] {
        for ff in [false, true] {
            let a = run_once(ArchKind::Smt2, "mgrid", 0xC5_317, policy, ff, false);
            let b = run_once(ArchKind::Smt2, "mgrid", 0xC5_317, policy, ff, false);
            assert_eq!(a, b, "{policy} ff={ff}");
        }
        let stepped = run_once(ArchKind::Smt2, "mgrid", 0xC5_317, policy, false, false);
        for (ff, par) in [(true, false), (false, true), (true, true)] {
            let other = run_once(ArchKind::Smt2, "mgrid", 0xC5_317, policy, ff, par);
            assert_eq!(
                stepped, other,
                "{policy}: ff={ff}/par={par} must be invisible"
            );
        }
    }
}
