//! §5.1.1 of the paper compares the simulated results with the §2 analytic
//! model's predictions. These tests close the same loop: measure each
//! application's (threads, ILP) point, feed it to the model, and check the
//! model's qualitative predictions against the simulator.

use clustered_smt::prelude::*;
use csmt_core::ArchKind;
use csmt_model::ranking;

const SCALE: f64 = 0.25;
const SEED: u64 = 0xC5_317;

fn measure_point(app: &AppSpec) -> AppPoint {
    let fa8 = simulate(app, ArchKind::Fa8, 1, SCALE, SEED);
    let fa1 = simulate(app, ArchKind::Fa1, 1, SCALE, SEED);
    AppPoint::new(fa8.avg_running_threads.max(0.1), fa1.ipc().max(0.1))
}

/// For the applications at the extremes of the chart (vpenta, ocean:
/// thread-rich/ILP-poor), the model and the simulator agree on the best FA.
#[test]
fn model_and_simulator_agree_on_extreme_apps() {
    let fas = [
        csmt_model::ArchModel::Fa { clusters: 8 },
        csmt_model::ArchModel::Fa { clusters: 4 },
        csmt_model::ArchModel::Fa { clusters: 2 },
        csmt_model::ArchModel::Fa { clusters: 1 },
    ];
    for name in ["vpenta", "ocean"] {
        let app = by_name(name).unwrap();
        let point = measure_point(&app);
        let model_best = ranking(&fas, point)[0].0.name();
        let mut sim_best = (ArchKind::Fa8, u64::MAX);
        for arch in [ArchKind::Fa8, ArchKind::Fa4, ArchKind::Fa2, ArchKind::Fa1] {
            let c = simulate(&app, arch, 1, SCALE, SEED).cycles;
            if c < sim_best.1 {
                sim_best = (arch, c);
            }
        }
        assert_eq!(
            model_best,
            sim_best.0.name(),
            "{name} at {point:?}: model {model_best} vs simulated {}",
            sim_best.0.name()
        );
    }
}

/// The model's core theorem — SMT2 delivered ≥ FA2 delivered for every
/// application point — is mirrored by the simulator on every measured app.
#[test]
fn smt2_dominates_fa2_in_model_and_simulation() {
    for app in all_apps() {
        let point = measure_point(&app);
        let m_fa2 = csmt_model::ArchModel::Fa { clusters: 2 }.delivered(point);
        let m_smt2 = csmt_model::ArchModel::Smt { clusters: 2 }.delivered(point);
        assert!(m_smt2 >= m_fa2 - 1e-9, "{}: model violated", app.name);
        let s_fa2 = simulate(&app, ArchKind::Fa2, 1, SCALE, SEED).cycles as f64;
        let s_smt2 = simulate(&app, ArchKind::Smt2, 1, SCALE, SEED).cycles as f64;
        assert!(
            s_smt2 <= s_fa2 * 1.03,
            "{}: sim violated ({s_smt2} vs {s_fa2})",
            app.name
        );
    }
}

/// Model sanity against the measured chart: every measured application
/// point lies inside the chart (0 < threads ≤ 8, ILP ≤ 8) and the
/// delivered performance on SMT1 upper-bounds every other architecture.
#[test]
fn measured_points_live_on_the_chart() {
    for app in all_apps() {
        let p = measure_point(&app);
        assert!(p.threads > 0.0 && p.threads <= 8.0, "{}: {p:?}", app.name);
        assert!(p.ilp > 0.0 && p.ilp <= 8.0, "{}: {p:?}", app.name);
        let smt1 = csmt_model::ArchModel::Smt { clusters: 1 };
        for c in [2u32, 4, 8] {
            let m = csmt_model::ArchModel::Smt { clusters: c };
            assert!(smt1.delivered(p) >= m.delivered(p) - 1e-9);
        }
    }
}
