//! Minimal offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for structs with named fields (the
//! only shape this workspace derives on), honoring `#[serde(skip)]` on
//! fields. Parsing walks the raw token stream directly — no `syn`/`quote`,
//! since the build environment is offline and those crates are unavailable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored stand-in's `to_value` form) for
/// a struct with named fields. Fields annotated `#[serde(skip)]` are
/// omitted from the output object.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility/keywords until the
    // `struct` keyword.
    let mut name = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr: `#` + bracket group
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                }
                i += 2;
                break;
            }
            _ => i += 1,
        }
    }
    let name = name.expect("derive(Serialize): expected `struct Name`");

    // The next brace group holds the fields. Generics are unsupported: this
    // stand-in only needs to cover the workspace's concrete stats structs.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive(Serialize) stand-in does not support generic structs")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("derive(Serialize) stand-in requires named fields")
            }
            Some(_) => i += 1,
            None => panic!("derive(Serialize): struct body not found"),
        }
    };

    let fields = parse_named_fields(body);
    let mut members = String::new();
    for f in &fields {
        members.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{members}])\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("derive(Serialize): generated impl must parse")
}

/// Extract non-skipped field names from a named-fields body stream.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Leading field attributes; detect `#[serde(skip)]`.
        let mut skip = false;
        while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
            (toks.get(i), toks.get(i + 1))
        {
            if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
                break;
            }
            let attr: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = attr.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = attr.get(1) {
                        if args
                            .stream()
                            .into_iter()
                            .any(|t| matches!(t, TokenTree::Ident(w) if w.to_string() == "skip"))
                        {
                            skip = true;
                        }
                    }
                }
            }
            i += 2;
        }
        // Visibility: `pub` optionally followed by a `(...)` restriction.
        if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        // Field name.
        let Some(TokenTree::Ident(fname)) = toks.get(i) else {
            break; // trailing comma / end
        };
        let fname = fname.to_string();
        i += 1;
        assert!(
            matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "derive(Serialize): expected `:` after field `{fname}`"
        );
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        if !skip {
            fields.push(fname);
        }
    }
    fields
}
