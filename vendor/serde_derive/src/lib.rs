//! Minimal offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` for structs with named fields (the
//! only shape this workspace derives on), honoring `#[serde(skip)]` and
//! `#[serde(skip_serializing_if = "pred")]` on fields. Parsing walks the
//! raw token stream directly — no `syn`/`quote`, since the build
//! environment is offline and those crates are unavailable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (the vendored stand-in's `to_value` form) for
/// a struct with named fields. Fields annotated `#[serde(skip)]` are
/// omitted from the output object; fields annotated
/// `#[serde(skip_serializing_if = "pred")]` are omitted when `pred(&field)`
/// returns true (the predicate path resolves in the struct's module, as in
/// real serde).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility/keywords until the
    // `struct` keyword.
    let mut name = None;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // attr: `#` + bracket group
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                }
                i += 2;
                break;
            }
            _ => i += 1,
        }
    }
    let name = name.expect("derive(Serialize): expected `struct Name`");

    // The next brace group holds the fields. Generics are unsupported: this
    // stand-in only needs to cover the workspace's concrete stats structs.
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("derive(Serialize) stand-in does not support generic structs")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                panic!("derive(Serialize) stand-in requires named fields")
            }
            Some(_) => i += 1,
            None => panic!("derive(Serialize): struct body not found"),
        }
    };

    let fields = parse_named_fields(body);
    let mut members = String::new();
    for (f, pred) in &fields {
        let push = format!(
            "obj.push((::std::string::String::from(\"{f}\"), \
             ::serde::Serialize::to_value(&self.{f})));"
        );
        match pred {
            None => members.push_str(&push),
            Some(p) => members.push_str(&format!("if !{p}(&self.{f}) {{ {push} }}")),
        }
    }
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> =\n\
                     ::std::vec::Vec::new();\n\
                 {members}\n\
                 ::serde::Value::Object(obj)\n\
             }}\n\
         }}"
    );
    out.parse()
        .expect("derive(Serialize): generated impl must parse")
}

/// Extract field names (and the optional `skip_serializing_if` predicate
/// path) from a named-fields body stream; `#[serde(skip)]` fields are
/// dropped entirely.
fn parse_named_fields(body: TokenStream) -> Vec<(String, Option<String>)> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Leading field attributes; detect `#[serde(skip)]` and
        // `#[serde(skip_serializing_if = "pred")]`.
        let mut skip = false;
        let mut pred: Option<String> = None;
        while let (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g))) =
            (toks.get(i), toks.get(i + 1))
        {
            if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
                break;
            }
            let attr: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = attr.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = attr.get(1) {
                        let args: Vec<TokenTree> = args.stream().into_iter().collect();
                        for (k, t) in args.iter().enumerate() {
                            let TokenTree::Ident(w) = t else { continue };
                            match w.to_string().as_str() {
                                "skip" => skip = true,
                                "skip_serializing_if" => {
                                    if let (
                                        Some(TokenTree::Punct(eq)),
                                        Some(TokenTree::Literal(l)),
                                    ) = (args.get(k + 1), args.get(k + 2))
                                    {
                                        if eq.as_char() == '=' {
                                            pred =
                                                Some(l.to_string().trim_matches('"').to_string());
                                        }
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                }
            }
            i += 2;
        }
        // Visibility: `pub` optionally followed by a `(...)` restriction.
        if matches!(&toks.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        // Field name.
        let Some(TokenTree::Ident(fname)) = toks.get(i) else {
            break; // trailing comma / end
        };
        let fname = fname.to_string();
        i += 1;
        assert!(
            matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "derive(Serialize): expected `:` after field `{fname}`"
        );
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = toks.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        if !skip {
            fields.push((fname, pred));
        }
    }
    fields
}
