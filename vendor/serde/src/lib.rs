//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real `serde` crate
//! cannot be fetched. This crate provides the small slice of the serde API
//! this workspace actually uses — `#[derive(Serialize)]`, a `Serialize`
//! trait, and a JSON-shaped [`Value`] data model — with the same crate and
//! item names, so swapping the real serde back in later is a one-line
//! manifest change for any code that sticks to this subset.
//!
//! Design differences from real serde, chosen for smallness:
//!
//! * Serialization is *value-building*, not visitor-driven:
//!   [`Serialize::to_value`] produces a [`Value`] tree that `serde_json`
//!   renders. This costs an intermediate allocation per dump, which is fine
//!   for end-of-run statistics (the only use here).
//! * Deserialization is only what the tests need: parsing JSON text into
//!   [`Value`] (see `serde_json::from_str`).

pub use serde_derive::Serialize;

use std::fmt;

/// A JSON-shaped dynamic value. Object keys keep insertion order, so struct
/// serialization is stable and golden tests can compare exact strings.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers (and any parsed integer with a leading `-`).
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating-point numbers.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an i64, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a u64, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Any numeric value as an f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object (ordered key/value pairs), if it is one.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Is this `Value::Null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member by key (None for non-objects or absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

/// Render a JSON number the way serde_json does: integers bare, floats with
/// a decimal point or exponent (Rust's `{:?}` guarantees round-tripping),
/// non-finite values as `null` (JSON has no representation for them).
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Compact JSON rendering.
    pub fn render(&self, out: &mut String) {
        self.render_at(out, None, 0);
    }

    /// Pretty JSON rendering with 2-space indents.
    pub fn render_pretty(&self, out: &mut String) {
        self.render_at(out, Some(2), 0);
    }

    fn render_at(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => write_f64(out, *x),
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    v.render_at(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.render_at(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render(&mut s);
        f.write_str(&s)
    }
}

/// Types that can report themselves as a [`Value`].
pub trait Serialize {
    /// Build the JSON-shaped representation of `self`.
    fn to_value(&self) -> Value;
}

/// Types constructible from a [`Value`] (only what the tests need).
pub trait Deserialize: Sized {
    /// Rebuild from a parsed value.
    fn from_value(v: Value) -> Result<Self, String>;
}

impl Deserialize for Value {
    fn from_value(v: Value) -> Result<Self, String> {
        Ok(v)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u64.to_value(), Value::U64(3));
        assert_eq!((-3i32).to_value(), Value::I64(-3));
        assert_eq!(1.5f64.to_value(), Value::F64(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".into()));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }

    #[test]
    fn arrays_and_vecs_serialize_elementwise() {
        let v = [1.0f64, 2.0].to_value();
        assert_eq!(v, Value::Array(vec![Value::F64(1.0), Value::F64(2.0)]));
        assert_eq!(vec![1u8, 2].to_value().as_array().unwrap().len(), 2);
    }

    #[test]
    fn float_rendering_keeps_a_decimal_point() {
        let mut s = String::new();
        Value::F64(1.0).render(&mut s);
        assert_eq!(s, "1.0");
        let mut s = String::new();
        Value::F64(f64::NAN).render(&mut s);
        assert_eq!(s, "null");
    }

    #[test]
    fn string_escaping_covers_quotes_and_controls() {
        let mut s = String::new();
        Value::Str("a\"b\\c\nd".into()).render(&mut s);
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn value_indexing_and_comparison() {
        let v = Value::Array(vec![Value::Object(vec![(
            "arch".to_string(),
            Value::Str("FA8".to_string()),
        )])]);
        assert_eq!(v[0]["arch"], "FA8");
        assert!(v[9]["missing"].is_null());
    }
}
