//! Minimal offline stand-in for `serde_json`.
//!
//! Renders [`serde::Value`] trees (built by the vendored `serde` stand-in's
//! `Serialize`) to JSON text, and parses JSON text back into values. Covers
//! the API surface this workspace uses: [`to_string`], [`to_string_pretty`],
//! [`to_value`], [`from_str`], and [`Value`] with indexing/comparison.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render(&mut out);
    Ok(out)
}

/// Serialize to pretty JSON text (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().render_pretty(&mut out);
    Ok(out)
}

/// Serialize to a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parse JSON text. `T` is [`Value`] in practice (typed deserialization is
/// out of scope for the stand-in).
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error(format!("trailing characters at byte {}", p.i)));
    }
    T::from_value(v).map_err(Error)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                c as char, self.i
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected byte at {}", self.i))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.i += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.i += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.i))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.i))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x\"y".into())),
            ("n".into(), Value::U64(42)),
            ("neg".into(), Value::I64(-7)),
            ("pi".into(), Value::F64(3.25)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn parses_nested_json() {
        let v: Value = from_str(r#"[{"a": [1, 2.5, -3]}, "s"]"#).unwrap();
        assert_eq!(v[0]["a"][0], Value::U64(1));
        assert_eq!(v[0]["a"][1], Value::F64(2.5));
        assert_eq!(v[0]["a"][2], Value::I64(-3));
        assert_eq!(v[1], "s");
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }

    #[test]
    fn exponent_numbers_parse_as_floats() {
        let v: Value = from_str("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
    }
}
