//! Minimal offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the real `criterion`
//! crate cannot be fetched. This crate reimplements the benchmarking API
//! surface this workspace uses — `Criterion`, `benchmark_group`,
//! `BenchmarkGroup<'_, WallTime>` with `sample_size`/`warm_up_time`/
//! `measurement_time`, `Bencher::iter`, and the `criterion_group!`/
//! `criterion_main!` macros — with the same paths and names.
//!
//! Measurement is deliberately simple: per benchmark, a warm-up phase
//! estimates the cost of one iteration, then `sample_size` samples are
//! timed (each sized to fit the measurement budget) and min/median/mean
//! are reported on stdout. There are no plots, no statistical regression
//! tests, and no saved baselines. Passing `--test` (as `cargo test
//! --benches` does) runs each routine once, skipping measurement.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement back-ends. Only wall-clock time exists here.

    /// Wall-clock time measurement (the default; named so call sites can
    /// spell `BenchmarkGroup<'_, WallTime>` like real criterion).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Re-export of `std::hint::black_box` for call sites that import it from
/// criterion rather than std.
pub use std::hint::black_box;

/// Top-level benchmark harness state.
#[derive(Debug)]
pub struct Criterion {
    /// Run each routine exactly once (set by `--test`, as passed by
    /// `cargo test --benches`).
    test_mode: bool,
    /// Substring filter from the command line, like real criterion.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            _measurement: std::marker::PhantomData,
        }
    }
}

/// A named set of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up (and estimating iteration cost).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Target total time for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark. `f` receives a [`Bencher`]; it should call
    /// [`Bencher::iter`] exactly once with the routine to measure.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(&full);
        self
    }

    /// End the group. (Real criterion emits summary output here; the
    /// stand-in reports per-benchmark, so this is a no-op.)
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the routine given to [`iter`].
///
/// [`iter`]: Bencher::iter
pub struct Bencher {
    test_mode: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`: warm up for the configured time to estimate the
    /// per-iteration cost, then record `sample_size` timed samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: run until the warm-up budget is spent, counting
        // iterations to estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size each sample so all samples together fit the measurement
        // budget, with at least one iteration per sample.
        let budget_per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget_per_sample / per_iter).floor() as u64).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.test_mode {
            println!("{id}: ok (test mode)");
            return;
        }
        if self.samples_ns.is_empty() {
            println!("{id}: no samples (did the closure call iter()?)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        let mut line = String::new();
        let _ = write!(
            line,
            "{id}: min {} median {} mean {} ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len()
        );
        println!("{line}");
    }
}

/// Human-readable nanosecond quantity.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundle benchmark functions into a single runner function, mirroring
/// real criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Run every benchmark registered in this group.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_sample_count() {
        let mut b = Bencher {
            test_mode: false,
            warm_up_time: Duration::from_millis(5),
            measurement_time: Duration::from_millis(10),
            sample_size: 7,
            samples_ns: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert_eq!(b.samples_ns.len(), 7);
        assert!(b.samples_ns.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn test_mode_runs_once_without_sampling() {
        let mut b = Bencher {
            test_mode: true,
            warm_up_time: Duration::from_secs(100),
            measurement_time: Duration::from_secs(100),
            sample_size: 10,
            samples_ns: Vec::new(),
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(b.samples_ns.is_empty());
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(12.0), "12.0 ns");
        assert_eq!(fmt_ns(1500.0), "1.50 µs");
        assert_eq!(fmt_ns(2.5e6), "2.50 ms");
        assert_eq!(fmt_ns(3.0e9), "3.000 s");
    }
}
