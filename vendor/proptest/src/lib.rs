//! Minimal offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real `proptest`
//! crate cannot be fetched. This crate reimplements the slice of the API
//! this workspace's property tests use, with the same module paths and
//! item names (`prelude::*`, `Strategy`, `Just`, `any`, `prop_oneof!`,
//! `prop::collection::vec`, `proptest!`, `prop_assert*!`,
//! `ProptestConfig`), so the tests compile unchanged and the real crate
//! can be swapped back in later.
//!
//! Differences from real proptest, chosen for smallness:
//!
//! * No shrinking: a failing case reports its generated inputs verbatim.
//! * Generation is driven by a fixed splitmix64 stream seeded from the
//!   test's module path and name, so failures are reproducible across
//!   runs without a persistence file.

pub mod test_runner {
    //! Config, error, and RNG types (mirrors `proptest::test_runner`).

    use std::fmt;

    /// How many cases each property runs, mirroring the real config's
    /// `cases` knob. Construct with struct-update syntax:
    /// `ProptestConfig { cases: 64, ..ProptestConfig::default() }`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
        /// Accepted for API compatibility with the real crate; the
        /// stand-in does not shrink failing inputs.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A property-level failure (from `prop_assert*!`), distinct from a
    /// panic: carries the assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic splitmix64 generator. Seeded from the test name so
    /// every run of a given test sees the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from a test identifier (FNV-1a over the name).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit value (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform-ish value in `0..n` (modulo bias is irrelevant at the
        /// ranges property tests use).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform float in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators (mirrors
    //! `proptest::strategy`).

    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type. `Debug` so failing cases can print their
        /// inputs.
        type Value: Debug;

        /// Draw one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a [`BoxedStrategy`] (used by `prop_oneof!` to
        /// unify heterogeneous arm types).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    #[allow(clippy::type_complexity)]
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Weighted choice between boxed alternatives; the expansion of
    /// `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms. Panics if all weights
        /// are zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights cover 0..total")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    (self.start as u64).wrapping_add(rng.below(span)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.f64_unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support (mirrors `proptest::arbitrary`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draw an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `A`: `any::<bool>()`, `any::<u16>()`, …
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (mirrors `proptest::collection`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: std::ops::Range<usize>,
    }

    /// `vec(element_strategy, min..max)` — lengths are drawn uniformly
    /// from the half-open range, like real proptest.
    pub fn vec<S: Strategy>(elem: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted or unweighted choice between strategies producing the same
/// value type: `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Property-failure assertion: records the message and fails the case
/// without unwinding through foreign frames.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion for property tests. Operands are compared by
/// reference, so passing references or values both work.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?} == {:?}`", l, r);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?} == {:?}`: {}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?} != {:?}`", l, r);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$a, &$b);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?} != {:?}`: {}",
            l,
            r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written explicitly at the use
/// site, as with real proptest) looping over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    ::std::concat!(::std::module_path!(), "::", ::std::stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = ::std::format!(
                        ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        ::std::panic!(
                            "property `{}` failed at case {}/{}:\n  {}\n  inputs: {}",
                            ::std::stringify!($name),
                            case + 1,
                            config.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::for_test("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u8..7), &mut rng);
            assert!((3..7).contains(&v));
            let f = Strategy::generate(&(0.5f64..2.0), &mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn union_respects_zero_weight() {
        let mut rng = crate::test_runner::TestRng::for_test("union");
        let s = prop_oneof![0 => Just(1u8), 5 => Just(2u8)];
        for _ in 0..100 {
            assert_eq!(Strategy::generate(&s, &mut rng), 2);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = prop::collection::vec((0u64..100, any::<bool>()), 1..20);
        let mut a = crate::test_runner::TestRng::for_test("det");
        let mut b = crate::test_runner::TestRng::for_test("det");
        for _ in 0..50 {
            assert_eq!(
                Strategy::generate(&strat, &mut a),
                Strategy::generate(&strat, &mut b)
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// The macro plumbing itself: args bind, asserts pass, tuples and
        /// maps compose.
        #[test]
        fn macro_end_to_end(
            xs in prop::collection::vec(0u32..50, 1..10),
            flag in any::<bool>(),
            scaled in (1u8..5).prop_map(|v| v as u32 * 10),
        ) {
            prop_assert!(!xs.is_empty());
            for x in &xs {
                prop_assert!(*x < 50, "x = {}", x);
            }
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(scaled, 0u32);
            prop_assert!(scaled.is_multiple_of(10));
        }
    }
}
