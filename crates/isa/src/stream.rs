//! Instruction-stream abstractions.
//!
//! A software thread presents itself to the pipeline as an [`InstStream`]:
//! an on-demand generator of the thread's dynamic instruction sequence.
//! This is the role MINT's execution-driven front-end plays in the paper —
//! the stream always follows the *correct* control-flow path; the timing
//! model layers branch prediction, wrong-path fetch and squashing on top.

use crate::inst::DynInst;
use crate::op::OpClass;
use crate::reg::ArchReg;
use crate::rng::SplitMix64;

/// A generator of one thread's dynamic instruction stream.
pub trait InstStream {
    /// Produce the next instruction on the correct path, or `None` when the
    /// thread has finished (equivalent to yielding [`crate::SyncOp::Exit`]).
    fn next_inst(&mut self) -> Option<DynInst>;

    /// Optional hint: total instructions this stream will produce, if known.
    /// Used only for progress reporting; must not affect timing.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// Blanket impl so `Box<dyn InstStream>` is itself a stream.
impl InstStream for Box<dyn InstStream + Send> {
    fn next_inst(&mut self) -> Option<DynInst> {
        (**self).next_inst()
    }
    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
}

/// A stream backed by a pre-built vector. Used by unit tests and
/// micro-workloads where the whole trace is small.
#[derive(Debug, Clone)]
pub struct VecStream {
    insts: Vec<DynInst>,
    pos: usize,
}

impl VecStream {
    /// Wrap a trace.
    pub fn new(insts: Vec<DynInst>) -> Self {
        Self { insts, pos: 0 }
    }

    /// Remaining instruction count.
    pub fn remaining(&self) -> usize {
        self.insts.len() - self.pos
    }
}

impl InstStream for VecStream {
    fn next_inst(&mut self) -> Option<DynInst> {
        let i = self.insts.get(self.pos).copied();
        if i.is_some() {
            self.pos += 1;
        }
        i
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.insts.len() as u64)
    }
}

/// An infinitely repeating stream over a fixed body. Handy for steady-state
/// pipeline tests; real workloads bound their own length.
#[derive(Debug, Clone)]
pub struct CycleStream {
    body: Vec<DynInst>,
    pos: usize,
    produced: u64,
    limit: u64,
}

impl CycleStream {
    /// Repeat `body` until `limit` total instructions have been produced.
    pub fn new(body: Vec<DynInst>, limit: u64) -> Self {
        assert!(!body.is_empty(), "CycleStream body must be non-empty");
        Self {
            body,
            pos: 0,
            produced: 0,
            limit,
        }
    }
}

impl InstStream for CycleStream {
    fn next_inst(&mut self) -> Option<DynInst> {
        if self.produced >= self.limit {
            return None;
        }
        let i = self.body[self.pos];
        self.pos = (self.pos + 1) % self.body.len();
        self.produced += 1;
        Some(i)
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.limit)
    }
}

/// Generator of wrong-path instructions fetched between a mispredicted
/// branch and its resolution.
///
/// The paper charges issue slots consumed by squashed instructions to the
/// `other` category (§4.1); for that to be visible, wrong-path instructions
/// must actually occupy rename registers, window slots and functional units.
/// We synthesize a deterministic mix of short-latency integer/FP ops with
/// shallow dependence chains — a plausible down-the-wrong-arm basic block.
/// Wrong-path instructions never touch memory (a conservative but common
/// simulator simplification that avoids polluting the data cache with
/// speculative misses the paper does not discuss).
#[derive(Debug, Clone)]
pub struct WrongPathGen {
    rng: SplitMix64,
}

impl WrongPathGen {
    /// One generator per hardware thread context, seeded for determinism.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SplitMix64::new(seed),
        }
    }

    /// Produce the next wrong-path instruction starting at pseudo-PC `pc`.
    pub fn next_inst(&mut self, pc: u64) -> DynInst {
        let roll = self.rng.below(8);
        let op = match roll {
            0..=4 => OpClass::IntAlu,
            5 => OpClass::Shift,
            6 => OpClass::FpAdd,
            _ => OpClass::IntMul,
        };
        let dest = ArchReg::Int(1 + (self.rng.below(8) as u8));
        let src = ArchReg::Int(1 + (self.rng.below(8) as u8));
        DynInst::alu(pc, op, Some(dest), [Some(src), None])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::DynInst;

    fn nopish(pc: u64) -> DynInst {
        DynInst::alu(pc, OpClass::IntAlu, Some(ArchReg::Int(1)), [None, None])
    }

    #[test]
    fn vec_stream_yields_in_order_then_none() {
        let mut s = VecStream::new(vec![nopish(0), nopish(4), nopish(8)]);
        assert_eq!(s.len_hint(), Some(3));
        assert_eq!(s.next_inst().unwrap().pc, 0);
        assert_eq!(s.next_inst().unwrap().pc, 4);
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.next_inst().unwrap().pc, 8);
        assert!(s.next_inst().is_none());
        assert!(s.next_inst().is_none());
    }

    #[test]
    fn cycle_stream_repeats_body_up_to_limit() {
        let mut s = CycleStream::new(vec![nopish(0), nopish(4)], 5);
        let pcs: Vec<u64> = std::iter::from_fn(|| s.next_inst()).map(|i| i.pc).collect();
        assert_eq!(pcs, vec![0, 4, 0, 4, 0]);
    }

    #[test]
    fn wrong_path_gen_is_deterministic_and_memoryless() {
        let mut a = WrongPathGen::new(99);
        let mut b = WrongPathGen::new(99);
        for k in 0..100 {
            let ia = a.next_inst(k * 4);
            let ib = b.next_inst(k * 4);
            assert_eq!(ia, ib);
            assert!(ia.mem.is_none(), "wrong path must not touch memory");
            assert!(ia.branch.is_none());
            assert!(ia.sync.is_none());
        }
    }

    #[test]
    fn boxed_stream_is_a_stream() {
        let mut s: Box<dyn InstStream + Send> = Box::new(VecStream::new(vec![nopish(0)]));
        assert!(s.next_inst().is_some());
        assert!(s.next_inst().is_none());
    }
}
