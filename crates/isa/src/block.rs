//! Basic-block construction utilities.
//!
//! The synthetic applications (`csmt-workloads`) emit their dynamic
//! instruction streams out of parameterized loop bodies. This module gives
//! them a small builder vocabulary:
//!
//! * [`BlockBuilder`] — append instructions with automatically assigned,
//!   stable pseudo-PCs (so the branch predictor sees consistent static
//!   branches across iterations);
//! * [`RegAlloc`] — a round-robin temporary-register allocator for the
//!   integer and FP files;
//! * [`ChainSpec`] / [`BlockBuilder::emit_compute`] — the canonical
//!   "k independent dependence chains of depth d" compute pattern whose
//!   width/depth ratio sets the per-thread ILP, the key workload knob that
//!   positions each application on the paper's Figure 6 chart.

use crate::inst::{DynInst, SyncOp};
use crate::op::OpClass;
use crate::reg::ArchReg;

/// Round-robin allocator of temporary registers.
///
/// Hands out integer temporaries from `$8..$24` and FP temporaries from
/// `$f2..$f30`, wrapping around. Wrap-around creates realistic architectural
/// register reuse (anti/output dependences removed by renaming, as in real
/// compiled code).
#[derive(Debug, Clone)]
pub struct RegAlloc {
    next_int: u8,
    next_fp: u8,
}

const INT_TMP_LO: u8 = 8;
const INT_TMP_HI: u8 = 24;
const FP_TMP_LO: u8 = 2;
const FP_TMP_HI: u8 = 26;

impl Default for RegAlloc {
    fn default() -> Self {
        Self::new()
    }
}

impl RegAlloc {
    /// Fresh allocator starting at the bottom of each temp range.
    pub fn new() -> Self {
        Self {
            next_int: INT_TMP_LO,
            next_fp: FP_TMP_LO,
        }
    }

    /// Next integer temporary.
    pub fn int(&mut self) -> ArchReg {
        let r = ArchReg::Int(self.next_int);
        self.next_int += 1;
        if self.next_int >= INT_TMP_HI {
            self.next_int = INT_TMP_LO;
        }
        r
    }

    /// Next FP temporary.
    pub fn fp(&mut self) -> ArchReg {
        let r = ArchReg::Fp(self.next_fp);
        self.next_fp += 1;
        if self.next_fp >= FP_TMP_HI {
            self.next_fp = FP_TMP_LO;
        }
        r
    }
}

/// Specification of the compute portion of a loop iteration.
///
/// Emits `chains` independent dependence chains, each `depth` operations
/// long, drawing operation classes from `mix`. With enough issue width the
/// achievable ILP of the block is about `chains` (each chain advances one op
/// per `latency` cycles); with a single chain the block is latency-bound.
#[derive(Debug, Clone, Copy)]
pub struct ChainSpec {
    /// Number of independent chains (≈ target ILP of the block).
    pub chains: u8,
    /// Dependent operations per chain.
    pub depth: u8,
    /// Operation mix for chain links.
    pub mix: OpMix,
}

/// A coarse operation mix for compute chains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpMix {
    /// Mostly FP adds/multiplies — dense numeric kernels (swim, tomcatv...).
    Float,
    /// Integer ALU heavy — index arithmetic, particle bookkeeping (fmm).
    Integer,
    /// Alternating FP and integer.
    Mixed,
}

impl OpMix {
    /// Operation class for the `k`-th link of a chain.
    fn op_for(self, k: u8) -> OpClass {
        match self {
            OpMix::Float => {
                if k % 3 == 2 {
                    OpClass::FpMul
                } else {
                    OpClass::FpAdd
                }
            }
            OpMix::Integer => {
                if k % 4 == 3 {
                    OpClass::IntMul
                } else {
                    OpClass::IntAlu
                }
            }
            OpMix::Mixed => {
                if k.is_multiple_of(2) {
                    OpClass::FpAdd
                } else {
                    OpClass::IntAlu
                }
            }
        }
    }

    fn is_fp(self, k: u8) -> bool {
        matches!(self.op_for(k).fu_kind(), Some(crate::op::FuKind::Fp))
    }
}

/// Appends instructions to a growing trace with stable pseudo-PCs.
///
/// PCs are assigned as `base + 4 * (static index)`; re-emitting the same
/// static block (next loop iteration) re-uses the same PCs, which is what
/// the 2K-entry direct-mapped predictor needs to learn loop branches.
#[derive(Debug)]
pub struct BlockBuilder {
    base_pc: u64,
    static_idx: u64,
    out: Vec<DynInst>,
}

impl BlockBuilder {
    /// Start a builder whose static code begins at `base_pc`.
    pub fn new(base_pc: u64) -> Self {
        Self {
            base_pc,
            static_idx: 0,
            out: Vec::new(),
        }
    }

    /// Reset the static PC cursor to the block start (call at the top of
    /// each loop iteration so PCs repeat).
    pub fn rewind_pc(&mut self) {
        self.static_idx = 0;
    }

    /// PC that the next emitted instruction will get.
    pub fn next_pc(&self) -> u64 {
        self.base_pc + 4 * self.static_idx
    }

    fn bump(&mut self) -> u64 {
        let pc = self.next_pc();
        self.static_idx += 1;
        pc
    }

    /// Emit an ALU-class op.
    pub fn op(
        &mut self,
        op: OpClass,
        dest: Option<ArchReg>,
        srcs: [Option<ArchReg>; 2],
    ) -> &mut Self {
        let pc = self.bump();
        self.out.push(DynInst::alu(pc, op, dest, srcs));
        self
    }

    /// Emit a load of `addr` into `dest`, depending on `addr_src` for
    /// address generation (usually the loop induction register).
    pub fn load(&mut self, dest: ArchReg, addr: u64, addr_src: Option<ArchReg>) -> &mut Self {
        let pc = self.bump();
        self.out
            .push(DynInst::load(pc, dest, addr, [addr_src, None]));
        self
    }

    /// Emit a store of `val_src` to `addr`.
    pub fn store(
        &mut self,
        addr: u64,
        val_src: Option<ArchReg>,
        addr_src: Option<ArchReg>,
    ) -> &mut Self {
        let pc = self.bump();
        self.out.push(DynInst::store(pc, addr, [val_src, addr_src]));
        self
    }

    /// Emit a conditional branch with true outcome `taken`; `target` is the
    /// block base (backward branch) by default.
    pub fn branch(&mut self, taken: bool, srcs: [Option<ArchReg>; 2]) -> &mut Self {
        let pc = self.bump();
        self.out
            .push(DynInst::branch(pc, taken, self.base_pc, srcs));
        self
    }

    /// Emit a synchronization marker.
    pub fn sync(&mut self, s: SyncOp) -> &mut Self {
        let pc = self.bump();
        self.out.push(DynInst::sync(pc, s));
        self
    }

    /// Emit the canonical compute pattern of [`ChainSpec`]: `chains`
    /// independent dependence chains seeded from `seeds` (one register per
    /// chain, typically loaded values), each chain `depth` ops deep.
    /// Returns the final register of each chain.
    pub fn emit_compute(
        &mut self,
        spec: ChainSpec,
        seeds: &[ArchReg],
        ra: &mut RegAlloc,
    ) -> Vec<ArchReg> {
        let mut heads: Vec<ArchReg> = (0..spec.chains as usize)
            .map(|c| {
                seeds
                    .get(c % seeds.len().max(1))
                    .copied()
                    .unwrap_or(ArchReg::Int(1))
            })
            .collect();
        // Interleave chain links (chain-major per level) the way a compiler
        // schedules unrolled independent operations.
        for k in 0..spec.depth {
            for head in heads.iter_mut() {
                let op = spec.mix.op_for(k);
                let dest = if spec.mix.is_fp(k) { ra.fp() } else { ra.int() };
                let pc = self.bump();
                self.out
                    .push(DynInst::alu(pc, op, Some(dest), [Some(*head), None]));
                *head = dest;
            }
        }
        heads
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True if nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Finish and take the trace.
    pub fn finish(self) -> Vec<DynInst> {
        self.out
    }

    /// Borrow the trace built so far.
    pub fn insts(&self) -> &[DynInst] {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcs_are_stable_across_iterations() {
        let mut b = BlockBuilder::new(0x1000);
        b.op(OpClass::IntAlu, None, [None, None]);
        b.branch(true, [None, None]);
        let first: Vec<u64> = b.insts().iter().map(|i| i.pc).collect();
        b.rewind_pc();
        b.op(OpClass::IntAlu, None, [None, None]);
        b.branch(true, [None, None]);
        let all = b.finish();
        let second: Vec<u64> = all[2..].iter().map(|i| i.pc).collect();
        assert_eq!(first, second);
        assert_eq!(first, vec![0x1000, 0x1004]);
    }

    #[test]
    fn compute_chains_are_independent_of_each_other() {
        let mut b = BlockBuilder::new(0);
        let mut ra = RegAlloc::new();
        let seeds = [ArchReg::Fp(0), ArchReg::Fp(1)];
        let spec = ChainSpec {
            chains: 2,
            depth: 3,
            mix: OpMix::Float,
        };
        let tails = b.emit_compute(spec, &seeds, &mut ra);
        let insts = b.finish();
        assert_eq!(insts.len(), 6);
        assert_eq!(tails.len(), 2);
        // Each level's two ops read registers written at the previous level
        // (or seeds) and never each other.
        for lvl in 0..3 {
            let a = &insts[lvl * 2];
            let b2 = &insts[lvl * 2 + 1];
            assert_ne!(a.dest, b2.dest);
            assert_ne!(a.srcs[0], b2.srcs[0]);
        }
        // Chain property: op at level k reads dest of level k-1 in the same chain.
        assert_eq!(insts[2].srcs[0], insts[0].dest);
        assert_eq!(insts[3].srcs[0], insts[1].dest);
        assert_eq!(insts[4].srcs[0], insts[2].dest);
    }

    #[test]
    fn reg_alloc_wraps_within_temp_ranges() {
        let mut ra = RegAlloc::new();
        for _ in 0..100 {
            match ra.int() {
                ArchReg::Int(i) => assert!((INT_TMP_LO..INT_TMP_HI).contains(&i)),
                _ => panic!(),
            }
            match ra.fp() {
                ArchReg::Fp(i) => assert!((FP_TMP_LO..FP_TMP_HI).contains(&i)),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn mix_classes_route_to_expected_units() {
        use crate::op::FuKind;
        for k in 0..8 {
            assert_eq!(OpMix::Float.op_for(k).fu_kind(), Some(FuKind::Fp));
            assert_eq!(OpMix::Integer.op_for(k).fu_kind(), Some(FuKind::Int));
        }
    }
}
