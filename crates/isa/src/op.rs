//! Operation classes, functional-unit kinds, and the latency table.
//!
//! Reproduces **Table 1** of the paper exactly:
//!
//! | Unit       | Operation            | Latency |
//! |------------|----------------------|---------|
//! | Integer    | add, sub, logical    | 1       |
//! |            | shift                | 1       |
//! |            | mul                  | 2       |
//! |            | div                  | 8       |
//! |            | branch               | 1       |
//! | Load/Store | load                 | 2       |
//! |            | store                | 1       |
//! | FP         | fpadd                | 1       |
//! |            | fpmult               | 2       |
//! |            | fpdiv                | 4 / 7   |
//!
//! The paper lists FP divide as `4/7` (single/double precision); we model
//! both widths. All units are pipelined except the dividers, which occupy
//! their unit for the full latency (the conventional reading of long-latency
//! divide in 1990s cores such as the R10000 the paper builds on).
//!
//! The *load* latency of 2 cycles is the L1-hit pipeline latency; the actual
//! completion time of a load is determined by the memory system (`csmt-mem`)
//! and can be far longer on misses.

/// The three functional-unit kinds of the base superscalar core (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Integer ALU (also executes branches, per Table 1).
    Int,
    /// Load/store (address generation + cache port).
    LdSt,
    /// Floating point.
    Fp,
}

impl FuKind {
    /// All kinds, in the order used by per-kind count arrays
    /// (`[int, ldst, fp]`, matching the paper's "int/ld-st/fp" notation).
    pub const ALL: [FuKind; 3] = [FuKind::Int, FuKind::LdSt, FuKind::Fp];

    /// Index into `[int, ldst, fp]` arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FuKind::Int => 0,
            FuKind::LdSt => 1,
            FuKind::Fp => 2,
        }
    }
}

/// Dynamic operation classes (the rows of Table 1, plus the `Sync` marker
/// used by the parallel runtime and a `Nop`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer add / sub / logical.
    IntAlu,
    /// Integer shift.
    Shift,
    /// Integer multiply.
    IntMul,
    /// Integer divide (unpipelined).
    IntDiv,
    /// Conditional or unconditional branch.
    Branch,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// FP add / sub.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide, single precision (unpipelined).
    FpDivSingle,
    /// FP divide, double precision (unpipelined).
    FpDivDouble,
    /// Synchronization marker (barrier / lock); consumes a fetch slot and a
    /// ROB entry but no functional unit. Interpreted by the runtime.
    Sync,
    /// No-op (pipeline filler; never produced by workloads).
    Nop,
}

impl OpClass {
    /// Execution latency in cycles (Table 1). For `Load` this is the L1-hit
    /// pipeline latency; real completion comes from the memory system.
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Shift | OpClass::Branch => 1,
            OpClass::IntMul => 2,
            OpClass::IntDiv => 8,
            OpClass::Load => 2,
            OpClass::Store => 1,
            OpClass::FpAdd => 1,
            OpClass::FpMul => 2,
            OpClass::FpDivSingle => 4,
            OpClass::FpDivDouble => 7,
            OpClass::Sync | OpClass::Nop => 1,
        }
    }

    /// Which functional unit executes this class; `None` for classes that
    /// need no unit (sync markers, nops).
    #[inline]
    pub fn fu_kind(self) -> Option<FuKind> {
        match self {
            OpClass::IntAlu
            | OpClass::Shift
            | OpClass::IntMul
            | OpClass::IntDiv
            | OpClass::Branch => Some(FuKind::Int),
            OpClass::Load | OpClass::Store => Some(FuKind::LdSt),
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDivSingle | OpClass::FpDivDouble => {
                Some(FuKind::Fp)
            }
            OpClass::Sync | OpClass::Nop => None,
        }
    }

    /// Cycles the functional unit stays busy. 1 for pipelined units,
    /// full latency for the (unpipelined) dividers.
    #[inline]
    pub fn fu_occupancy(self) -> u32 {
        match self {
            OpClass::IntDiv => 8,
            OpClass::FpDivSingle => 4,
            OpClass::FpDivDouble => 7,
            _ => 1,
        }
    }

    /// True for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// True for branches.
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }

    /// True if the destination register (when present) lives in the FP file.
    /// Used by rename to pick the register pool.
    #[inline]
    pub fn writes_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAdd
                | OpClass::FpMul
                | OpClass::FpDivSingle
                | OpClass::FpDivDouble
                | OpClass::Load // FP loads also exist; pool choice comes from dest reg, see rename
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 1 of the paper, verbatim.
    #[test]
    fn table1_integer_unit_latencies() {
        assert_eq!(OpClass::IntAlu.latency(), 1); // add, sub, log
        assert_eq!(OpClass::Shift.latency(), 1); // shift
        assert_eq!(OpClass::IntMul.latency(), 2); // mul
        assert_eq!(OpClass::IntDiv.latency(), 8); // div
        assert_eq!(OpClass::Branch.latency(), 1); // branch
    }

    #[test]
    fn table1_load_store_unit_latencies() {
        assert_eq!(OpClass::Load.latency(), 2); // load
        assert_eq!(OpClass::Store.latency(), 1); // store
    }

    #[test]
    fn table1_fp_unit_latencies() {
        assert_eq!(OpClass::FpAdd.latency(), 1); // fpadd
        assert_eq!(OpClass::FpMul.latency(), 2); // fpmult
        assert_eq!(OpClass::FpDivSingle.latency(), 4); // fpdiv 4/...
        assert_eq!(OpClass::FpDivDouble.latency(), 7); // fpdiv .../7
    }

    #[test]
    fn fu_kind_routing_matches_table1_grouping() {
        for op in [
            OpClass::IntAlu,
            OpClass::Shift,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::Branch,
        ] {
            assert_eq!(op.fu_kind(), Some(FuKind::Int), "{op:?}");
        }
        for op in [OpClass::Load, OpClass::Store] {
            assert_eq!(op.fu_kind(), Some(FuKind::LdSt), "{op:?}");
        }
        for op in [
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::FpDivSingle,
            OpClass::FpDivDouble,
        ] {
            assert_eq!(op.fu_kind(), Some(FuKind::Fp), "{op:?}");
        }
        assert_eq!(OpClass::Sync.fu_kind(), None);
        assert_eq!(OpClass::Nop.fu_kind(), None);
    }

    #[test]
    fn dividers_are_unpipelined_everything_else_is() {
        assert_eq!(OpClass::IntDiv.fu_occupancy(), 8);
        assert_eq!(OpClass::FpDivSingle.fu_occupancy(), 4);
        assert_eq!(OpClass::FpDivDouble.fu_occupancy(), 7);
        for op in [
            OpClass::IntAlu,
            OpClass::Shift,
            OpClass::IntMul,
            OpClass::Branch,
            OpClass::Load,
            OpClass::Store,
            OpClass::FpAdd,
            OpClass::FpMul,
        ] {
            assert_eq!(op.fu_occupancy(), 1, "{op:?}");
        }
    }

    #[test]
    fn fu_kind_indices_are_distinct_and_dense() {
        let mut seen = [false; 3];
        for k in FuKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mem_and_branch_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::Branch.is_branch());
        assert!(!OpClass::Load.is_branch());
    }
}
