//! # csmt-isa — instruction set and dynamic-instruction streams
//!
//! Bottom layer of the clustered-SMT simulator reproducing Krishnan &
//! Torrellas, *"A Clustered Approach to Multithreaded Processors"* (IPPS
//! 1998).
//!
//! The paper's evaluation drives a cycle-accurate back-end with the dynamic
//! instruction stream of each software thread (produced there by the MINT
//! execution-driven front-end instrumenting MIPS2 binaries). This crate
//! defines the equivalent abstractions for our from-scratch build:
//!
//! * [`op`] — operation classes, functional-unit kinds and the latency table
//!   (paper Table 1);
//! * [`reg`] — architectural register names (integer and floating point);
//! * [`inst`] — [`inst::DynInst`], one dynamic instruction as seen by the
//!   timing pipeline, carrying *architecturally correct* branch outcomes and
//!   memory addresses (like MINT's front-end events);
//! * [`stream`] — the [`stream::InstStream`] trait a workload implements,
//!   plus wrong-path generators used after branch mispredictions;
//! * [`block`] — reusable basic-block templates with explicit register
//!   dataflow, the building blocks of the synthetic applications;
//! * [`rng`] — a tiny deterministic SplitMix64 PRNG so every simulation is
//!   bit-for-bit reproducible;
//! * [`fxhash`] — a fixed-seed FxHash map for address-keyed hot-path
//!   tables (TLB, directory), replacing SipHash + per-process entropy.

//! ```
//! use csmt_isa::block::{BlockBuilder, ChainSpec, OpMix, RegAlloc};
//! use csmt_isa::{ArchReg, InstStream, OpClass};
//!
//! // Build one loop iteration: a load feeding two dependence chains.
//! let mut b = BlockBuilder::new(0x1000);
//! let mut ra = RegAlloc::new();
//! b.load(ArchReg::Fp(0), 0x8000, Some(ArchReg::Int(7)));
//! b.emit_compute(ChainSpec { chains: 2, depth: 3, mix: OpMix::Float }, &[ArchReg::Fp(0)], &mut ra);
//! b.branch(true, [Some(ArchReg::Int(7)), None]);
//! let body = b.finish();
//! assert_eq!(body.len(), 8);
//!
//! // Replay it as a bounded instruction stream.
//! let mut s = csmt_isa::stream::CycleStream::new(body, 24);
//! let mut n = 0;
//! while s.next_inst().is_some() { n += 1; }
//! assert_eq!(n, 24);
//! ```

pub mod block;
pub mod fxhash;
pub mod inst;
pub mod op;
pub mod reg;
pub mod rng;
pub mod stream;

pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher64};
pub use inst::{BranchInfo, DynInst, MemRef, SyncOp};
pub use op::{FuKind, OpClass};
pub use reg::ArchReg;
pub use rng::SplitMix64;
pub use stream::InstStream;
