//! Architectural register names.
//!
//! The base core (paper §3.1, Figure 2) has separate integer and floating
//! point register files, each renamed through its own pool of renaming
//! registers (Table 2). We model a MIPS-like architectural file: 32 integer
//! plus 32 FP registers per thread. Register `Int(0)` is the hard-wired zero
//! register and is never a real dependence.

/// Number of architectural integer registers per thread.
pub const NUM_INT_REGS: u8 = 32;
/// Number of architectural floating-point registers per thread.
pub const NUM_FP_REGS: u8 = 32;

/// An architectural register name within one thread's context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArchReg {
    /// Integer register `$0..$31`. `$0` reads as zero and is never renamed.
    Int(u8),
    /// Floating-point register `$f0..$f31`.
    Fp(u8),
}

impl ArchReg {
    /// True if this is the hard-wired integer zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        matches!(self, ArchReg::Int(0))
    }

    /// True if the register lives in the FP file (selects the FP rename pool).
    #[inline]
    pub fn is_fp(self) -> bool {
        matches!(self, ArchReg::Fp(_))
    }

    /// Dense index in `[0, NUM_INT_REGS + NUM_FP_REGS)` for per-thread map
    /// tables stored as flat arrays.
    #[inline]
    pub fn flat_index(self) -> usize {
        match self {
            ArchReg::Int(i) => {
                debug_assert!(i < NUM_INT_REGS);
                i as usize
            }
            ArchReg::Fp(i) => {
                debug_assert!(i < NUM_FP_REGS);
                NUM_INT_REGS as usize + i as usize
            }
        }
    }

    /// Total number of architectural registers per thread.
    pub const COUNT: usize = NUM_INT_REGS as usize + NUM_FP_REGS as usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_detection() {
        assert!(ArchReg::Int(0).is_zero());
        assert!(!ArchReg::Int(1).is_zero());
        assert!(!ArchReg::Fp(0).is_zero());
    }

    #[test]
    fn flat_index_is_dense_and_injective() {
        let mut seen = [false; ArchReg::COUNT];
        for i in 0..NUM_INT_REGS {
            let idx = ArchReg::Int(i).flat_index();
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        for i in 0..NUM_FP_REGS {
            let idx = ArchReg::Fp(i).flat_index();
            assert!(!seen[idx]);
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fp_predicate() {
        assert!(ArchReg::Fp(3).is_fp());
        assert!(!ArchReg::Int(3).is_fp());
    }
}
