//! Deterministic SplitMix64 PRNG.
//!
//! Every source of "randomness" in the simulator (TLB random replacement,
//! irregular workload address patterns, wrong-path instruction mixes) draws
//! from a seeded [`SplitMix64`] so that a given configuration always produces
//! the same cycle count. Determinism is load-bearing: the paper's figures are
//! single runs, and our tests assert exact reproducibility.

/// SplitMix64 generator (Steele, Lea & Flood; public-domain constants).
///
/// Small, fast (one multiply-xor-shift chain per draw), and statistically
/// good enough for replacement policies and synthetic address streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Two generators with the same seed
    /// yield identical sequences.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit value (upper half of the 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply technique (Lemire); bias is negligible for
    /// the small bounds used here (≤ a few thousand).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derive an independent child generator. Used to give each thread /
    /// structure its own stream while keeping global determinism.
    #[inline]
    pub fn fork(&mut self, tag: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ tag.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 7, 100, 4096] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = SplitMix64::new(13);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        assert_eq!(fa.next_u64(), fb.next_u64());
        let mut fa2 = a.fork(2);
        assert_ne!(fa.next_u64(), fa2.next_u64());
    }
}
