//! Dynamic instructions as consumed by the timing pipeline.
//!
//! A [`DynInst`] is one *executed* instruction of a software thread, in
//! program order, annotated with everything the timing model needs and the
//! front-end already knows (the MINT analogue): the true branch outcome, the
//! effective memory address, and the architectural register dataflow.

use crate::op::OpClass;
use crate::reg::ArchReg;

/// A memory reference carried by a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Virtual byte address.
    pub addr: u64,
    /// Access size in bytes (4 or 8 in our workloads).
    pub size: u8,
}

/// The architecturally-correct outcome of a branch, known to the front-end
/// and revealed to the pipeline only when the branch executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchInfo {
    /// Whether the branch is actually taken.
    pub taken: bool,
    /// Target PC if taken (used to index the BTB).
    pub target: u64,
}

/// Synchronization operations interpreted by the parallel runtime
/// (`csmt-core::runtime`). They reach the runtime when the thread's pipeline
/// has drained up to the marker, modelling the fence semantics of the ANL
/// macros the SPLASH-2 applications use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncOp {
    /// Arrive at barrier `id`; the thread spins until all participants arrive.
    Barrier(u32),
    /// Acquire lock `id`; spins while held by another thread.
    LockAcquire(u32),
    /// Release lock `id`.
    LockRelease(u32),
    /// Thread has no further work (end of program for this thread).
    Exit,
}

/// One dynamic instruction.
///
/// Kept small (fits in two cache lines comfortably) because millions flow
/// through the pipeline per simulation. Register source slots use
/// `Option<ArchReg>`; `None` or the zero register mean "no dependence".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Pseudo program counter. Workload generators assign stable PCs to
    /// static instructions so the branch predictor sees realistic aliasing.
    pub pc: u64,
    /// Operation class (selects FU and latency, Table 1).
    pub op: OpClass,
    /// Destination register, if any.
    pub dest: Option<ArchReg>,
    /// Up to two source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Memory reference for loads/stores.
    pub mem: Option<MemRef>,
    /// True outcome for branches.
    pub branch: Option<BranchInfo>,
    /// Runtime interpretation for `OpClass::Sync`.
    pub sync: Option<SyncOp>,
}

impl DynInst {
    /// A plain ALU-style instruction.
    #[inline]
    pub fn alu(pc: u64, op: OpClass, dest: Option<ArchReg>, srcs: [Option<ArchReg>; 2]) -> Self {
        debug_assert!(!op.is_mem() && !op.is_branch() && op != OpClass::Sync);
        DynInst {
            pc,
            op,
            dest,
            srcs,
            mem: None,
            branch: None,
            sync: None,
        }
    }

    /// A load producing `dest` from `addr`, with address-generation sources.
    #[inline]
    pub fn load(pc: u64, dest: ArchReg, addr: u64, srcs: [Option<ArchReg>; 2]) -> Self {
        DynInst {
            pc,
            op: OpClass::Load,
            dest: Some(dest),
            srcs,
            mem: Some(MemRef { addr, size: 8 }),
            branch: None,
            sync: None,
        }
    }

    /// A store of `src` to `addr`.
    #[inline]
    pub fn store(pc: u64, addr: u64, srcs: [Option<ArchReg>; 2]) -> Self {
        DynInst {
            pc,
            op: OpClass::Store,
            dest: None,
            srcs,
            mem: Some(MemRef { addr, size: 8 }),
            branch: None,
            sync: None,
        }
    }

    /// A conditional branch with its true outcome.
    #[inline]
    pub fn branch(pc: u64, taken: bool, target: u64, srcs: [Option<ArchReg>; 2]) -> Self {
        DynInst {
            pc,
            op: OpClass::Branch,
            dest: None,
            srcs,
            mem: None,
            branch: Some(BranchInfo { taken, target }),
            sync: None,
        }
    }

    /// A synchronization marker.
    #[inline]
    pub fn sync(pc: u64, op: SyncOp) -> Self {
        DynInst {
            pc,
            op: OpClass::Sync,
            dest: None,
            srcs: [None, None],
            mem: None,
            branch: None,
            sync: Some(op),
        }
    }

    /// Iterate over real (non-zero-register) sources.
    #[inline]
    pub fn real_srcs(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().filter_map(|s| *s).filter(|r| !r.is_zero())
    }

    /// Destination register if it is a real renamed register.
    #[inline]
    pub fn real_dest(&self) -> Option<ArchReg> {
        self.dest.filter(|r| !r.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let l = DynInst::load(0x100, ArchReg::Fp(1), 0xBEEF, [Some(ArchReg::Int(2)), None]);
        assert_eq!(l.op, OpClass::Load);
        assert_eq!(l.mem.unwrap().addr, 0xBEEF);
        assert_eq!(l.dest, Some(ArchReg::Fp(1)));

        let b = DynInst::branch(0x104, true, 0x40, [Some(ArchReg::Int(3)), None]);
        assert!(b.branch.unwrap().taken);
        assert_eq!(b.branch.unwrap().target, 0x40);
        assert!(b.dest.is_none());

        let s = DynInst::sync(0x108, SyncOp::Barrier(7));
        assert_eq!(s.sync, Some(SyncOp::Barrier(7)));
        assert_eq!(s.op, OpClass::Sync);
    }

    #[test]
    fn zero_register_is_not_a_dependence() {
        let i = DynInst::alu(
            0,
            OpClass::IntAlu,
            Some(ArchReg::Int(0)),
            [Some(ArchReg::Int(0)), Some(ArchReg::Int(5))],
        );
        assert_eq!(i.real_srcs().collect::<Vec<_>>(), vec![ArchReg::Int(5)]);
        assert_eq!(i.real_dest(), None);
    }

    #[test]
    fn dyninst_is_reasonably_small() {
        // Millions are in flight across a figure sweep; keep the hot type lean.
        assert!(
            std::mem::size_of::<DynInst>() <= 64,
            "{}",
            std::mem::size_of::<DynInst>()
        );
    }
}
