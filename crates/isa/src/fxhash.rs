//! Deterministic FxHash-style hashing for simulator hot paths.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 behind a
//! per-process random seed: robust against adversarial keys, but an
//! order of magnitude slower than necessary for the trusted `u64` keys
//! (cache lines, pages) the memory hierarchy hashes millions of times
//! per run. [`FxHashMap`] swaps in the rustc-compiler-style Fx mix —
//! one rotate/xor/multiply per 8 bytes — behind a *fixed* seed, so
//! hashing is identical on every run and platform.
//!
//! Determinism note: the simulator never iterates these maps (lookups,
//! inserts and removals only), so even the std map's random iteration
//! order could not leak into results — the fixed seed simply removes
//! the temptation and the per-process entropy entirely.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (the golden-ratio-derived odd constant used
/// by rustc's `FxHasher` for 64-bit mixing).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fixed, build-independent initial state (any constant works; a
/// non-zero one avoids mapping the all-zero key to hash 0).
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// One-word multiply-mix hasher (FxHash), seeded with a fixed constant.
///
/// Not DoS-resistant — use only for trusted keys like addresses.
#[derive(Debug, Clone, Copy)]
pub struct FxHasher64 {
    hash: u64,
}

impl Default for FxHasher64 {
    fn default() -> Self {
        FxHasher64 { hash: SEED }
    }
}

impl FxHasher64 {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher64`]s (all identically seeded).
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// Drop-in `HashMap` replacement with deterministic Fx hashing.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_u64(v: u64) -> u64 {
        let mut h = FxBuildHasher::default().build_hasher();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn hashing_is_deterministic_across_hashers() {
        for v in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(hash_u64(v), hash_u64(v));
        }
    }

    #[test]
    fn distinct_keys_spread() {
        let hashes: std::collections::HashSet<u64> = (0..1000u64).map(hash_u64).collect();
        assert_eq!(hashes.len(), 1000, "no collisions on small sequential keys");
    }

    #[test]
    fn map_behaves_like_std_hashmap() {
        let mut m: FxHashMap<u64, usize> = FxHashMap::default();
        for k in 0..100u64 {
            m.insert(k * 3, k as usize);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get(&27), Some(&9));
        assert_eq!(m.remove(&27), Some(9));
        assert!(!m.contains_key(&27));
    }

    #[test]
    fn byte_stream_and_word_paths_agree_on_8_byte_input() {
        let mut a = FxHasher64::default();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = FxHasher64::default();
        b.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
