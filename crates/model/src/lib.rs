//! # csmt-model — the paper's §2 model of parallelism
//!
//! The model charts applications and architectures on a plane of
//! *number of threads* (x) versus *ILP per thread* (y), all for 8-issue
//! chips:
//!
//! * an application `A` is a point `(t, i)`; the area `t·i` is the
//!   performance extractable from it;
//! * a fixed-assignment processor `FAc` is the rectangle `c × 8/c`: it
//!   delivers the overlap of its rectangle with the application's;
//! * an SMT processor is a rectangle of constant area 8 whose upper-right
//!   vertex slides along the hyperbola `x·y = 8`; a *clustered* SMT with
//!   `c` clusters cannot raise ILP above `8/c`, so its hyperbola is capped
//!   at `y = 8/c`.
//!
//! Region classification (Figure 1-(d)/(g)): region 1 — application fully
//! exploited, processor under-utilized; region 2 (*optimal*) — processor
//! fully utilized; region 3 — both under-utilized.
//!
//! The model deliberately ignores cycle-time differences (§2: "it just
//! serves to illustrate the potential of each architecture"); the bench
//! harness applies the Palacharla-Jouppi clock factors separately.

//! ```
//! use csmt_model::{AppPoint, ArchModel};
//!
//! // An application with 6 runnable threads of ILP 1.3 (ocean-like):
//! let a = AppPoint::new(6.0, 1.3);
//! let fa2 = ArchModel::Fa { clusters: 2 };
//! let smt2 = ArchModel::Smt { clusters: 2 };
//! // FA2 can use only 2 of the 6 threads; SMT2 uses them all.
//! assert!(smt2.delivered(a) > fa2.delivered(a) * 2.5);
//! ```

/// Chip issue width the whole analysis assumes (the paper restricts itself
/// to 8-issue processors).
pub const CHIP_ISSUE: f64 = 8.0;

/// An application as a point on the parallelism chart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppPoint {
    /// Average number of runnable threads.
    pub threads: f64,
    /// Average ILP per thread.
    pub ilp: f64,
}

impl AppPoint {
    /// Construct, validating positivity.
    pub fn new(threads: f64, ilp: f64) -> Self {
        assert!(threads > 0.0 && ilp > 0.0, "degenerate application point");
        AppPoint { threads, ilp }
    }

    /// Extractable performance (area under the point).
    pub fn potential(&self) -> f64 {
        self.threads * self.ilp
    }
}

/// An 8-issue architecture in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchModel {
    /// Fixed assignment with `clusters` processors of width `8/clusters`.
    Fa {
        /// Number of single-thread clusters.
        clusters: u32,
    },
    /// (Clustered) SMT with `clusters` clusters of width `8/clusters`,
    /// 8 hardware threads total. `clusters = 1` is the centralized SMT.
    Smt {
        /// Number of SMT clusters.
        clusters: u32,
    },
}

impl ArchModel {
    fn check(clusters: u32) {
        assert!(
            matches!(clusters, 1 | 2 | 4 | 8),
            "paper divides an 8-issue chip into 1/2/4/8 clusters"
        );
    }

    /// Width of one cluster.
    pub fn cluster_width(self) -> f64 {
        match self {
            ArchModel::Fa { clusters } | ArchModel::Smt { clusters } => {
                Self::check(clusters);
                CHIP_ISSUE / clusters as f64
            }
        }
    }

    /// Maximum thread count exploitable.
    pub fn max_threads(self) -> f64 {
        match self {
            ArchModel::Fa { clusters } => clusters as f64,
            // Any SMT variant supports 8 threads.
            ArchModel::Smt { .. } => CHIP_ISSUE,
        }
    }

    /// Maximum per-thread ILP exploitable (the Y-cap of the hyperbola for
    /// clustered SMTs, the box height for FAs).
    pub fn max_ilp(self) -> f64 {
        self.cluster_width()
    }

    /// Performance delivered on application `a` (the shaded-area overlap of
    /// Figure 1-(c)/(f)), in instructions per cycle.
    pub fn delivered(self, a: AppPoint) -> f64 {
        match self {
            ArchModel::Fa { clusters } => {
                let c = clusters as f64;
                a.threads.min(c) * a.ilp.min(CHIP_ISSUE / c)
            }
            ArchModel::Smt { .. } => {
                // The rectangle adapts: pick per-thread issue y = min(ilp,
                // cap), then thread count x = min(threads, 8/y); delivered
                // x·y = min(threads·y, 8).
                let y = a.ilp.min(self.max_ilp());
                (a.threads * y).min(CHIP_ISSUE)
            }
        }
    }

    /// Fraction of the chip's peak (8 IPC) utilized on `a`.
    pub fn utilization(self, a: AppPoint) -> f64 {
        self.delivered(a) / CHIP_ISSUE
    }

    /// Region of Figure 1-(d)/(g) that `a` falls into for this architecture.
    pub fn region(self, a: AppPoint) -> Region {
        let d = self.delivered(a);
        let app_fully_exploited = (d - a.potential()).abs() < 1e-9 || d >= a.potential();
        let processor_fully_utilized = d >= CHIP_ISSUE - 1e-9;
        match (app_fully_exploited, processor_fully_utilized) {
            (true, false) => Region::AppExploited,
            (_, true) => Region::Optimal,
            (false, false) => Region::BothUnderUtilized,
        }
    }

    /// Display name ("FA2", "SMT2", …).
    pub fn name(self) -> String {
        match self {
            ArchModel::Fa { clusters } => format!("FA{clusters}"),
            ArchModel::Smt { clusters } => format!("SMT{clusters}"),
        }
    }
}

/// The three regions of the model's charts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Region {
    /// (1) Application fully exploited; processor under-utilized. Maximum
    /// performance for this application is achieved.
    AppExploited,
    /// (2) Processor fully utilized — "the optimal region".
    Optimal,
    /// (3) Application under-exploited *and* processor under-utilized.
    BothUnderUtilized,
}

/// Sample the limiting envelope of an architecture for plotting Figure 1:
/// returns `(threads, max-ilp-at-that-thread-count)` pairs.
pub fn envelope(arch: ArchModel, samples: usize) -> Vec<(f64, f64)> {
    assert!(samples >= 2);
    (0..samples)
        .map(|k| {
            let x = 0.25 + (CHIP_ISSUE - 0.25) * k as f64 / (samples - 1) as f64;
            let y = match arch {
                ArchModel::Fa { clusters } => {
                    if x <= clusters as f64 {
                        CHIP_ISSUE / clusters as f64
                    } else {
                        0.0
                    }
                }
                ArchModel::Smt { .. } => (CHIP_ISSUE / x).min(arch.max_ilp()),
            };
            (x, y)
        })
        .collect()
}

/// Rank architectures by delivered performance on `a`, best first.
pub fn ranking(archs: &[ArchModel], a: AppPoint) -> Vec<(ArchModel, f64)> {
    let mut v: Vec<(ArchModel, f64)> = archs.iter().map(|&m| (m, m.delivered(a))).collect();
    v.sort_by(|x, y| y.1.partial_cmp(&x.1).expect("finite"));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    const FA: [ArchModel; 4] = [
        ArchModel::Fa { clusters: 8 },
        ArchModel::Fa { clusters: 4 },
        ArchModel::Fa { clusters: 2 },
        ArchModel::Fa { clusters: 1 },
    ];

    #[test]
    fn fa_boxes_have_area_eight() {
        for m in FA {
            assert!(
                (m.max_threads() * m.max_ilp() - 8.0).abs() < 1e-12,
                "{}",
                m.name()
            );
        }
    }

    #[test]
    fn smt1_adapts_to_any_app_shape() {
        let smt1 = ArchModel::Smt { clusters: 1 };
        // Wide-thread app.
        assert!((smt1.delivered(AppPoint::new(8.0, 1.0)) - 8.0).abs() < 1e-12);
        // Single-thread high-ILP app.
        assert!((smt1.delivered(AppPoint::new(1.0, 8.0)) - 8.0).abs() < 1e-12);
        // Intermediate point on the hyperbola.
        assert!((smt1.delivered(AppPoint::new(5.0, 1.6)) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn smt2_caps_per_thread_ilp_at_four() {
        let smt2 = ArchModel::Smt { clusters: 2 };
        // One 8-ILP thread: only 4 exploitable.
        assert!((smt2.delivered(AppPoint::new(1.0, 8.0)) - 4.0).abs() < 1e-12);
        // Two such threads saturate the chip.
        assert!((smt2.delivered(AppPoint::new(2.0, 8.0)) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn clustered_smt_dominates_same_shape_fa() {
        // §2's conclusion: the SMT optimal region is a superset of the FA's.
        for clusters in [1u32, 2, 4, 8] {
            let fa = ArchModel::Fa { clusters };
            let smt = ArchModel::Smt { clusters };
            for &t in &[0.5, 1.0, 2.0, 3.7, 6.0, 8.0] {
                for &i in &[0.5, 1.0, 2.3, 4.0, 8.0] {
                    let a = AppPoint::new(t, i);
                    assert!(
                        smt.delivered(a) >= fa.delivered(a) - 1e-12,
                        "{} vs {} on {a:?}",
                        smt.name(),
                        fa.name()
                    );
                }
            }
        }
    }

    #[test]
    fn figure1_example_application_a() {
        // Figure 1-(c): A ≈ (6, 5). FA2 delivers only 2×4 = 8 of the 30
        // available; SMT2 the same chip-peak 8 — but for a *smaller* app the
        // difference shows:
        let a = AppPoint::new(3.0, 3.0);
        let fa2 = ArchModel::Fa { clusters: 2 };
        let smt2 = ArchModel::Smt { clusters: 2 };
        assert!((fa2.delivered(a) - 2.0 * 3.0).abs() < 1e-12); // 2 threads × 3 ILP
        assert!((smt2.delivered(a) - 8.0).abs() < 1e-12); // clips at chip peak
    }

    #[test]
    fn regions_classify_as_in_figure_1d() {
        let fa2 = ArchModel::Fa { clusters: 2 };
        // Small app inside the box: region 1.
        assert_eq!(fa2.region(AppPoint::new(1.0, 2.0)), Region::AppExploited);
        // Big app engulfing the box: region 2 (optimal).
        assert_eq!(fa2.region(AppPoint::new(4.0, 8.0)), Region::Optimal);
        // App with many threads but little ILP: region 3 for FA2.
        assert_eq!(
            fa2.region(AppPoint::new(8.0, 1.0)),
            Region::BothUnderUtilized
        );
        // That same app is optimal for SMT2.
        assert_eq!(
            ArchModel::Smt { clusters: 2 }.region(AppPoint::new(8.0, 1.0)),
            Region::Optimal
        );
    }

    #[test]
    fn envelope_follows_hyperbola_until_cap() {
        let smt2 = ArchModel::Smt { clusters: 2 };
        for (x, y) in envelope(smt2, 50) {
            assert!(y <= 4.0 + 1e-12);
            assert!(x * y <= 8.0 + 1e-9);
        }
        let smt1 = ArchModel::Smt { clusters: 1 };
        let pts = envelope(smt1, 50);
        // At x=8, y must be 1 on the pure hyperbola.
        let last = pts.last().unwrap();
        assert!((last.0 - 8.0).abs() < 1e-9 && (last.1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranking_puts_the_adaptive_design_first_for_mixed_apps() {
        let archs = [
            ArchModel::Fa { clusters: 8 },
            ArchModel::Fa { clusters: 2 },
            ArchModel::Fa { clusters: 1 },
            ArchModel::Smt { clusters: 2 },
        ];
        // tomcatv-like: few threads, moderate ILP. SMT2 ties the best
        // (FA2's box matches this shape exactly), never loses.
        let r = ranking(&archs, AppPoint::new(2.0, 4.0));
        let smt2_d = ArchModel::Smt { clusters: 2 }.delivered(AppPoint::new(2.0, 4.0));
        assert!((smt2_d - r[0].1).abs() < 1e-12, "SMT2 must tie the winner");
        // ocean-like: many threads, low ILP — SMT2 strictly wins.
        let r = ranking(&archs, AppPoint::new(7.0, 1.3));
        assert_eq!(r[0].0.name(), "SMT2");
        assert!(r[0].1 > r[1].1);
    }

    #[test]
    #[should_panic]
    fn degenerate_points_rejected() {
        AppPoint::new(0.0, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_point() -> impl Strategy<Value = AppPoint> {
        (0.1f64..8.0, 0.1f64..8.0).prop_map(|(t, i)| AppPoint::new(t, i))
    }

    fn arb_clusters() -> impl Strategy<Value = u32> {
        prop_oneof![Just(1u32), Just(2), Just(4), Just(8)]
    }

    proptest! {
        /// No architecture exceeds the chip peak or the app's potential.
        #[test]
        fn delivered_is_bounded(a in arb_point(), c in arb_clusters()) {
            for m in [ArchModel::Fa { clusters: c }, ArchModel::Smt { clusters: c }] {
                let d = m.delivered(a);
                prop_assert!(d <= CHIP_ISSUE + 1e-9);
                prop_assert!(d <= a.potential() + 1e-9);
                prop_assert!(d >= 0.0);
            }
        }

        /// SMT with fewer clusters (wider) never loses to more clusters.
        #[test]
        fn wider_smt_clusters_dominate(a in arb_point()) {
            let d1 = ArchModel::Smt { clusters: 1 }.delivered(a);
            let d2 = ArchModel::Smt { clusters: 2 }.delivered(a);
            let d4 = ArchModel::Smt { clusters: 4 }.delivered(a);
            let d8 = ArchModel::Smt { clusters: 8 }.delivered(a);
            prop_assert!(d1 >= d2 - 1e-9);
            prop_assert!(d2 >= d4 - 1e-9);
            prop_assert!(d4 >= d8 - 1e-9);
        }

        /// Delivered performance is monotone in the application point.
        #[test]
        fn delivered_is_monotone(a in arb_point(), c in arb_clusters(), dt in 0.0f64..2.0, di in 0.0f64..2.0) {
            let bigger = AppPoint::new(a.threads + dt, a.ilp + di);
            for m in [ArchModel::Fa { clusters: c }, ArchModel::Smt { clusters: c }] {
                prop_assert!(m.delivered(bigger) >= m.delivered(a) - 1e-9);
            }
        }

        /// Every point lands in exactly one region, and saturating apps are
        /// always "optimal".
        #[test]
        fn regions_are_total(a in arb_point(), c in arb_clusters()) {
            let m = ArchModel::Smt { clusters: c };
            let r = m.region(a);
            if m.delivered(a) >= CHIP_ISSUE - 1e-9 {
                prop_assert_eq!(r, Region::Optimal);
            }
        }
    }
}
