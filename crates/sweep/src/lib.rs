//! # csmt-sweep — design-space sweep engine
//!
//! ROADMAP item 1: serve huge (arch × chips × app × seed × knob) sweeps
//! as cheap, cacheable queries. The engine has three parts (DESIGN.md
//! §16):
//!
//! * [`pool`] — a bounded work-stealing job pool with in-order result
//!   streaming (the crate's registered concurrency seam);
//! * [`cache`] — a content-addressed on-disk [`RunResult`] cache keyed
//!   by an FNV-1a digest of everything that determines a cell's result,
//!   doubling as the resume checkpoint;
//! * [`SweepEngine`] — runs a grid of [`SweepCell`]s through both: each
//!   cell is a cache hit (file read) or a simulation-plus-store, and the
//!   assembled output is byte-identical either way, at any worker count.
//!
//! ```
//! use csmt_core::ArchKind;
//! use csmt_sweep::{SweepCell, SweepEngine};
//!
//! let cells = vec![SweepCell {
//!     app: csmt_workloads::by_name("mgrid").unwrap(),
//!     arch: ArchKind::Smt2,
//!     n_chips: 1,
//!     seed: 42,
//!     scale: 0.02,
//!     sched: "static".to_string(),
//! }];
//! let out = SweepEngine::new(1, None).run(&cells);
//! assert_eq!(out.results.len(), 1);
//! assert_eq!(out.hits, 0);
//! ```

pub mod cache;
pub mod pool;

pub use cache::{ResultCache, CACHE_SCHEMA};

use csmt_core::{ArchKind, RunResult};
use csmt_mem::MemConfig;
use csmt_verify::digest::Fnv64;
use csmt_workloads::{simulate_with_sched_name, AppSpec};

/// One sweep grid cell: everything that determines one simulation's
/// result, and therefore everything the cache key digests.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Application to run.
    pub app: AppSpec,
    /// Architecture (Table 2 configuration).
    pub arch: ArchKind,
    /// Machine size in chips.
    pub n_chips: usize,
    /// Deterministic RNG seed.
    pub seed: u64,
    /// Work scale (1.0 = full figure quality).
    pub scale: f64,
    /// Thread-to-cluster scheduling policy name
    /// (`csmt_core::sched::POLICY_NAMES`).
    pub sched: String,
}

impl SweepCell {
    /// The cell's content-addressed cache key: an FNV-1a digest over
    /// the [`CACHE_SCHEMA`] tag and every input the simulation result
    /// depends on — the **full** `ChipConfig` (not just the arch name),
    /// machine size, the Table-3 memory configuration, the full
    /// `AppSpec`, seed, scale (as exact bits), and the scheduling
    /// policy name. Knobs proven result-neutral (`CSMT_FASTFORWARD`,
    /// `CSMT_PARALLEL`, `CSMT_THREADS` — see the differential tests)
    /// are deliberately *excluded*, so they share entries.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.key_with_schema(CACHE_SCHEMA)
    }

    /// [`key`](SweepCell::key) under an explicit schema tag (exposed so
    /// the sensitivity tests can prove a schema bump invalidates
    /// everything).
    #[must_use]
    pub fn key_with_schema(&self, schema: &str) -> u64 {
        let mut h = Fnv64::new();
        for part in [
            schema.to_string(),
            format!("{:?}", self.arch.chip()),
            self.n_chips.to_string(),
            format!("{:?}", MemConfig::table3()),
            format!("{:?}", self.app),
            self.seed.to_string(),
            self.scale.to_bits().to_string(),
            self.sched.clone(),
        ] {
            h.update(part.as_bytes());
            h.update(b";");
        }
        h.finish()
    }

    /// Simulate the cell (ignoring any cache).
    #[must_use]
    pub fn simulate(&self) -> RunResult {
        simulate_with_sched_name(
            &self.app,
            self.arch,
            self.n_chips,
            self.scale,
            self.seed,
            &self.sched,
        )
    }
}

/// What a sweep produced: per-cell results in grid order plus the
/// cache-traffic split. `hits + misses == results.len()`; the split is
/// run-specific bookkeeping and must never be mixed into deterministic
/// aggregate output.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One result per input cell, in input order.
    pub results: Vec<RunResult>,
    /// Cells served from the cache.
    pub hits: usize,
    /// Cells simulated (and stored, when a cache is attached).
    pub misses: usize,
}

/// The batch engine: a worker count and an optional result cache.
#[derive(Debug)]
pub struct SweepEngine {
    threads: usize,
    cache: Option<ResultCache>,
}

impl SweepEngine {
    /// An engine with an explicit worker count (`<= 1` = run inline)
    /// and cache.
    #[must_use]
    pub fn new(threads: usize, cache: Option<ResultCache>) -> Self {
        SweepEngine {
            threads: threads.max(1),
            cache,
        }
    }

    /// The engine the environment asks for: `CSMT_SWEEP_THREADS`
    /// workers (default: host parallelism) and the `CSMT_SWEEP_CACHE`
    /// directory (default: no cache).
    #[must_use]
    pub fn from_env() -> Self {
        let threads = std::env::var("CSMT_SWEEP_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        SweepEngine::new(threads, ResultCache::from_env())
    }

    /// Worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The attached cache, if any.
    #[must_use]
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// Run every cell, streaming `sink(i, &result)` in ascending cell
    /// order as results complete (see [`pool::run_jobs`]). The stream
    /// and the returned results are byte-identical whatever the worker
    /// count and whichever cells were cache hits.
    pub fn run_streaming<S>(&self, cells: &[SweepCell], mut sink: S) -> SweepOutcome
    where
        S: FnMut(usize, &RunResult) + Send,
    {
        let job = |i: usize| {
            let cell = &cells[i];
            if let Some(cache) = &self.cache {
                let key = cell.key();
                if let Some(r) = cache.load(key) {
                    return (r, true);
                }
                let r = cell.simulate();
                cache.store(key, &r);
                return (r, false);
            }
            (cell.simulate(), false)
        };
        let pairs = pool::run_jobs(
            cells.len(),
            self.threads,
            job,
            |i, pair: &(RunResult, bool)| {
                sink(i, &pair.0);
            },
        );
        let hits = pairs.iter().filter(|(_, hit)| *hit).count();
        SweepOutcome {
            misses: pairs.len() - hits,
            hits,
            results: pairs.into_iter().map(|(r, _)| r).collect(),
        }
    }

    /// [`run_streaming`](SweepEngine::run_streaming) without a sink.
    pub fn run(&self, cells: &[SweepCell]) -> SweepOutcome {
        self.run_streaming(cells, |_, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmt_workloads::by_name;

    fn cell(app: &str, arch: ArchKind, seed: u64) -> SweepCell {
        SweepCell {
            app: by_name(app).unwrap(),
            arch,
            n_chips: 1,
            seed,
            scale: 0.02,
            sched: "static".to_string(),
        }
    }

    fn tmp_cache(tag: &str) -> ResultCache {
        let dir =
            std::env::temp_dir().join(format!("csmt_sweep_test_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultCache::new(dir).unwrap()
    }

    #[test]
    fn uncached_engine_matches_direct_simulation() {
        let c = cell("vpenta", ArchKind::Smt2, 42);
        let direct = c.simulate();
        let out = SweepEngine::new(1, None).run(std::slice::from_ref(&c));
        assert_eq!(out.hits, 0);
        assert_eq!(out.misses, 1);
        assert_eq!(
            serde_json::to_string(&out.results[0]).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
    }

    #[test]
    fn warm_run_is_all_hits_and_byte_identical() {
        let cells: Vec<SweepCell> = [ArchKind::Fa2, ArchKind::Smt2]
            .into_iter()
            .map(|a| cell("mgrid", a, 7))
            .collect();
        let cache = tmp_cache("warm");
        let cold = SweepEngine::new(1, Some(cache.clone())).run(&cells);
        assert_eq!((cold.hits, cold.misses), (0, 2));
        let warm = SweepEngine::new(1, Some(cache.clone())).run(&cells);
        assert_eq!((warm.hits, warm.misses), (2, 0));
        for (a, b) in cold.results.iter().zip(&warm.results) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn pooled_run_matches_serial_run_including_stream_order() {
        let cells: Vec<SweepCell> = [ArchKind::Fa8, ArchKind::Fa1, ArchKind::Smt2, ArchKind::Smt1]
            .into_iter()
            .map(|a| cell("swim", a, 3))
            .collect();
        let mut serial_stream = Vec::new();
        let serial = SweepEngine::new(1, None)
            .run_streaming(&cells, |i, r| serial_stream.push((i, r.cycles)));
        // Host may have 1 CPU: force a real pool.
        let mut pooled_stream = Vec::new();
        let pooled = SweepEngine::new(4, None)
            .run_streaming(&cells, |i, r| pooled_stream.push((i, r.cycles)));
        assert_eq!(serial_stream, pooled_stream);
        for (a, b) in serial.results.iter().zip(&pooled.results) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
    }

    #[test]
    fn cached_results_round_trip_bit_for_bit() {
        // f64 fields (useful, wasted, avg_running_threads) survive the
        // JSON round trip exactly: compare full serializations.
        let c = cell("fmm", ArchKind::Smt4, 9);
        let cache = tmp_cache("roundtrip");
        let fresh = c.simulate();
        cache.store(c.key(), &fresh);
        let loaded = cache.load(c.key()).expect("hit");
        assert_eq!(
            serde_json::to_string(&fresh).unwrap(),
            serde_json::to_string(&loaded).unwrap()
        );
        let _ = std::fs::remove_dir_all(cache.dir());
    }

    #[test]
    fn dynamic_policy_results_cache_under_their_own_key() {
        let stat = cell("ocean", ArchKind::Smt2, 5);
        let dyn_cell = SweepCell {
            sched: "barrier".to_string(),
            ..stat.clone()
        };
        assert_ne!(stat.key(), dyn_cell.key());
        // And the sched name reaches the simulation: committed work is
        // conserved but the policies are distinguishable in the key.
        let a = stat.simulate();
        let b = dyn_cell.simulate();
        assert_eq!(a.slots.committed, b.slots.committed);
    }
}
