//! `csmt-sweep` — run a design-space grid through the sweep engine.
//!
//! The grid is the cross product of `--scales × --seeds × --chips ×
//! --apps × --archs` (cells enumerate in exactly that nesting order,
//! innermost last), every cell simulated under one `--sched` policy.
//! Output is a JSONL line per cell (`--out`), an aggregate summary
//! (`--summary`), or both — and both are **deterministic**: byte-for-byte
//! identical across worker counts, cache states, and resumed runs. The
//! run-specific hit/miss/throughput report goes to stdout only.
//!
//! With a cache attached (`--cache` or `CSMT_SWEEP_CACHE`), the cache is
//! also the checkpoint: kill the sweep at any point, rerun the same
//! command, and only the missing cells simulate — the outputs are
//! rewritten in full, byte-identical to an uninterrupted run.

use csmt_core::{sched::POLICY_NAMES, ArchKind};
use csmt_sweep::{ResultCache, SweepCell, SweepEngine, CACHE_SCHEMA};
use csmt_trace::StatsRegistry;
use csmt_workloads::{all_apps, by_name, AppSpec};
use std::io::Write as _;

/// Default seed: the figure seed used by every `fig*` binary.
const DEFAULT_SEED: u64 = 0xC5_317;
/// Default work scale: smoke-grid quality, not figure quality.
const DEFAULT_SCALE: f64 = 0.05;

fn usage() -> String {
    let arch_names: Vec<&str> = ArchKind::ALL.iter().map(|a| a.name()).collect();
    let app_names: Vec<&str> = all_apps().iter().map(|a| a.name).collect();
    format!(
        "usage: csmt-sweep [options]\n\
         \n\
         grid options (comma-separated lists; cells enumerate as\n\
         scales x seeds x chips x apps x archs, innermost last):\n\
         \x20 --archs <list>    architectures (default: all; {arch})\n\
         \x20 --apps <list>     applications (default: all; {app})\n\
         \x20 --chips <list>    machine sizes in chips (default: 1)\n\
         \x20 --seeds <list>    RNG seeds (default: {seed} — the figure seed)\n\
         \x20 --scales <list>   work scales (default: {scale})\n\
         \x20 --sched <name>    scheduling policy for every cell\n\
         \x20                   (default: CSMT_SCHED or static; {pol})\n\
         \n\
         engine options:\n\
         \x20 --threads <n>     worker count (default: CSMT_SWEEP_THREADS\n\
         \x20                   or host parallelism)\n\
         \x20 --cache <dir>     result-cache directory (default:\n\
         \x20                   CSMT_SWEEP_CACHE, or no cache)\n\
         \n\
         output options (all deterministic; run-specific hit/miss and\n\
         throughput stats go to stdout only):\n\
         \x20 --out <path>      write one JSONL line per cell\n\
         \x20 --summary <path>  write the aggregate summary JSON\n\
         \x20 --print-keys      print each cell's cache key, skip simulation\n\
         \x20 --help            this text\n",
        arch = arch_names.join(", "),
        app = app_names.join(", "),
        seed = DEFAULT_SEED,
        scale = DEFAULT_SCALE,
        pol = POLICY_NAMES.join(", "),
    )
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn parse_list<T, F: Fn(&str) -> Option<T>>(raw: &str, what: &str, parse: F) -> Vec<T> {
    let items: Vec<T> = raw
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).unwrap_or_else(|| fail(&format!("bad {what} {s:?}"))))
        .collect();
    if items.is_empty() {
        fail(&format!("empty {what} list"));
    }
    items
}

fn arch_by_name(name: &str) -> Option<ArchKind> {
    ArchKind::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

struct Options {
    archs: Vec<ArchKind>,
    apps: Vec<AppSpec>,
    chips: Vec<usize>,
    seeds: Vec<u64>,
    scales: Vec<f64>,
    sched: String,
    threads: Option<usize>,
    cache: Option<String>,
    out: Option<String>,
    summary: Option<String>,
    print_keys: bool,
}

fn parse_args() -> Options {
    let mut opt = Options {
        archs: ArchKind::ALL.to_vec(),
        apps: all_apps(),
        chips: vec![1],
        seeds: vec![DEFAULT_SEED],
        scales: vec![DEFAULT_SCALE],
        sched: match csmt_core::sched::policy_name_from_env() {
            Ok(name) => name.to_string(),
            Err(e) => fail(&format!("{e} (from CSMT_SCHED)")),
        },
        threads: None,
        cache: None,
        out: None,
        summary: None,
        print_keys: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" {
            print!("{}", usage());
            std::process::exit(0);
        }
        if flag == "--print-keys" {
            opt.print_keys = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| fail(&format!("{flag} needs a value")))
            .clone();
        match flag {
            "--archs" => opt.archs = parse_list(&value, "arch", arch_by_name),
            "--apps" => opt.apps = parse_list(&value, "app", by_name),
            "--chips" => opt.chips = parse_list(&value, "chip count", |s| s.parse().ok()),
            "--seeds" => opt.seeds = parse_list(&value, "seed", |s| s.parse().ok()),
            "--scales" => opt.scales = parse_list(&value, "scale", |s| s.parse().ok()),
            "--sched" => {
                if !POLICY_NAMES.contains(&value.as_str()) {
                    fail(&format!(
                        "unknown policy {value:?}; valid names: {}",
                        POLICY_NAMES.join(", ")
                    ));
                }
                opt.sched = value;
            }
            "--threads" => {
                opt.threads = Some(value.parse().unwrap_or_else(|_| fail("bad --threads")));
            }
            "--cache" => opt.cache = Some(value),
            "--out" => opt.out = Some(value),
            "--summary" => opt.summary = Some(value),
            _ => fail(&format!("unknown flag {flag:?} (see --help)")),
        }
        i += 2;
    }
    opt
}

fn build_cells(opt: &Options) -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for &scale in &opt.scales {
        for &seed in &opt.seeds {
            for &n_chips in &opt.chips {
                for app in &opt.apps {
                    for &arch in &opt.archs {
                        cells.push(SweepCell {
                            app: app.clone(),
                            arch,
                            n_chips,
                            seed,
                            scale,
                            sched: opt.sched.clone(),
                        });
                    }
                }
            }
        }
    }
    cells
}

/// One deterministic JSONL line for a completed cell.
fn jsonl_line(cell: &SweepCell, result: &csmt_core::RunResult) -> String {
    let mut line = StatsRegistry::new();
    line.record("app", cell.app.name);
    line.record("arch", cell.arch.name());
    line.record("chips", &cell.n_chips);
    line.record("seed", &cell.seed);
    line.record("scale", &cell.scale);
    line.record("sched", cell.sched.as_str());
    line.record("key", &format!("{:016x}", cell.key()));
    line.record("result", result);
    line.to_json()
}

/// The deterministic aggregate summary (no hit/miss/timing — those are
/// run-specific and go to stdout only).
fn summary(opt: &Options, cells: &[SweepCell], results: &[csmt_core::RunResult]) -> StatsRegistry {
    let mut reg = StatsRegistry::new();
    reg.record("schema", CACHE_SCHEMA);
    reg.record("cells", &cells.len());
    let arch_names: Vec<&str> = opt.archs.iter().map(|a| a.name()).collect();
    let app_names: Vec<&str> = opt.apps.iter().map(|a| a.name).collect();
    reg.record("archs", &arch_names[..]);
    reg.record("apps", &app_names[..]);
    reg.record("chips", &opt.chips[..]);
    reg.record("seeds", &opt.seeds[..]);
    reg.record("scales", &opt.scales[..]);
    reg.record("sched", opt.sched.as_str());
    reg.record(
        "total_cycles",
        &results.iter().map(|r| r.cycles).sum::<u64>(),
    );
    reg.record(
        "total_committed",
        &results.iter().map(|r| r.slots.committed).sum::<u64>(),
    );
    reg
}

fn main() {
    let opt = parse_args();
    let cells = build_cells(&opt);
    if opt.print_keys {
        for cell in &cells {
            println!(
                "{:016x} {} {} chips={} seed={} scale={:?} sched={}",
                cell.key(),
                cell.app.name,
                cell.arch.name(),
                cell.n_chips,
                cell.seed,
                cell.scale,
                cell.sched,
            );
        }
        return;
    }

    let cache = match &opt.cache {
        Some(dir) => {
            Some(ResultCache::new(dir).unwrap_or_else(|e| fail(&format!("cache dir {dir:?}: {e}"))))
        }
        None => ResultCache::from_env(),
    };
    let threads = opt
        .threads
        .unwrap_or_else(|| SweepEngine::from_env().threads());
    let engine = SweepEngine::new(threads, cache);

    let mut out: Option<std::io::BufWriter<std::fs::File>> = opt.out.as_ref().map(|path| {
        std::io::BufWriter::new(
            std::fs::File::create(path)
                .unwrap_or_else(|e| fail(&format!("cannot create {path:?}: {e}"))),
        )
    });

    let start = std::time::Instant::now();
    let outcome = engine.run_streaming(&cells, |i, result| {
        if let Some(w) = &mut out {
            writeln!(w, "{}", jsonl_line(&cells[i], result)).expect("JSONL write");
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    if let Some(mut w) = out {
        w.flush().expect("JSONL flush");
    }

    if let Some(path) = &opt.summary {
        summary(&opt, &cells, &outcome.results)
            .write_json(path)
            .unwrap_or_else(|e| fail(&format!("cannot write {path:?}: {e}")));
    }

    println!(
        "swept {} cells in {elapsed:.2}s ({:.1} cells/sec) on {} worker(s): {} hits, {} misses",
        cells.len(),
        cells.len() as f64 / elapsed.max(1e-9),
        engine.threads(),
        outcome.hits,
        outcome.misses,
    );
}
