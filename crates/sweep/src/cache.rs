//! Content-addressed on-disk result cache.
//!
//! Every sweep cell's [`RunResult`] is stored as one JSON file named by
//! the cell's content digest (see [`crate::SweepCell::key`]): a cell
//! that was ever computed — by any process, any sweep shape, any worker
//! count — is a file read forever after. Entries self-verify: the file
//! carries a schema tag, its own key, and an FNV-1a digest of the result
//! payload, so corrupt, truncated, or foreign files are silently treated
//! as misses and recomputed, never trusted.
//!
//! Writes are atomic (`<key>.<pid>.tmp` + rename into place) so a killed
//! sweep can never leave a half-written entry behind — which is exactly
//! what makes the cache double as the resume checkpoint: restarting a
//! sweep re-enumerates the grid and only the missing cells simulate.

use csmt_core::RunResult;
use csmt_cpu::SlotStats;
use csmt_mem::MemStats;
use csmt_trace::StatsRegistry;
use csmt_verify::digest::Fnv64;
use serde::{Serialize, Value};
use std::io;
use std::path::PathBuf;

/// Cache schema version tag, part of every cache key **and** stored in
/// every entry. Bump it whenever the simulator's observable behavior
/// changes (anything that would re-capture the golden Table-2 digests)
/// or the entry format changes: old entries then simply stop matching —
/// stale results can never be served.
pub const CACHE_SCHEMA: &str = "csmt-sweep-v1";

/// Directory of content-addressed `RunResult` entries, one JSON file per
/// cache key. See the module docs for the entry format and guarantees.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    /// Propagates the `create_dir_all` failure if `dir` cannot be made.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache selected by the `CSMT_SWEEP_CACHE` environment knob,
    /// or `None` when the knob is unset (caching disabled). An unusable
    /// directory is reported on stderr and treated as disabled rather
    /// than aborting the sweep.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var_os("CSMT_SWEEP_CACHE")?;
        match Self::new(PathBuf::from(dir)) {
            Ok(cache) => Some(cache),
            Err(e) => {
                eprintln!("warning: CSMT_SWEEP_CACHE unusable ({e}); caching disabled");
                None
            }
        }
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Path of the entry for `key`.
    #[must_use]
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Load the entry for `key`, verifying schema, key, and payload
    /// digest. Any mismatch — missing file, bad JSON, truncation,
    /// foreign schema, flipped byte — is a miss (`None`).
    #[must_use]
    pub fn load(&self, key: u64) -> Option<RunResult> {
        let text = std::fs::read_to_string(self.entry_path(key)).ok()?;
        let entry: Value = serde_json::from_str(&text).ok()?;
        if entry.get("schema")?.as_str()? != CACHE_SCHEMA {
            return None;
        }
        if entry.get("key")?.as_str()? != format!("{key:016x}") {
            return None;
        }
        let result = entry.get("result")?;
        if entry.get("payload_digest")?.as_str()? != payload_digest(result) {
            return None;
        }
        result_from_value(result)
    }

    /// Store `result` under `key`, atomically: the entry is rendered to
    /// a process-private temp file in the cache directory and renamed
    /// into place, so readers only ever see complete entries. Best
    /// effort — an I/O failure costs a future recompute, not the sweep.
    pub fn store(&self, key: u64, result: &RunResult) {
        if let Err(e) = self.try_store(key, result) {
            eprintln!("warning: cache store of {key:016x} failed ({e})");
        }
    }

    fn try_store(&self, key: u64, result: &RunResult) -> io::Result<()> {
        let value = result.to_value();
        let mut entry = StatsRegistry::new();
        entry.record("schema", CACHE_SCHEMA);
        entry.record("key", &format!("{key:016x}"));
        entry.record("payload_digest", &payload_digest(&value));
        entry.record_value("result", value);
        let mut body = entry.to_json();
        body.push('\n');
        let tmp = self
            .dir
            .join(format!("{key:016x}.{}.tmp", std::process::id()));
        std::fs::write(&tmp, body)?;
        std::fs::rename(&tmp, self.entry_path(key))
    }
}

/// FNV-1a digest of the compact rendering of a result subtree, as the
/// 16-hex-digit string stored in (and checked against) every entry.
#[must_use]
pub fn payload_digest(result: &Value) -> String {
    let mut body = String::new();
    result.render(&mut body);
    let mut h = Fnv64::new();
    h.update(body.as_bytes());
    format!("{:016x}", h.finish())
}

/// Rebuild a [`RunResult`] from its serialized [`Value`] tree (the
/// vendored serde stand-in only derives `Serialize`, so deserialization
/// is by hand). Returns `None` on any missing or mistyped field. The
/// vendored renderer/parser round-trips `f64` bit-exactly (shortest
/// round-trip `{:?}` out, `str::parse::<f64>` in), so a cached result
/// is bit-for-bit the result of the original simulation.
#[must_use]
pub fn result_from_value(v: &Value) -> Option<RunResult> {
    let slots = v.get("slots")?;
    let mem = v.get("mem")?;
    let wasted_v = slots.get("wasted")?.as_array()?;
    let mut wasted = [0.0f64; 7];
    if wasted_v.len() != wasted.len() {
        return None;
    }
    for (slot, value) in wasted.iter_mut().zip(wasted_v) {
        *slot = value.as_f64()?;
    }
    Some(RunResult {
        arch: v.get("arch")?.as_str()?.to_string(),
        chips: usize::try_from(v.get("chips")?.as_u64()?).ok()?,
        threads: usize::try_from(v.get("threads")?.as_u64()?).ok()?,
        cycles: v.get("cycles")?.as_u64()?,
        slots: SlotStats {
            useful: slots.get("useful")?.as_f64()?,
            wasted,
            cycles: slots.get("cycles")?.as_u64()?,
            slots: slots.get("slots")?.as_u64()?,
            committed: slots.get("committed")?.as_u64()?,
        },
        mem: MemStats {
            l1_hits: mem.get("l1_hits")?.as_u64()?,
            l2_hits: mem.get("l2_hits")?.as_u64()?,
            local_mem: mem.get("local_mem")?.as_u64()?,
            remote_mem: mem.get("remote_mem")?.as_u64()?,
            remote_l2: mem.get("remote_l2")?.as_u64()?,
            mshr_merges: mem.get("mshr_merges")?.as_u64()?,
            tlb_misses: mem.get("tlb_misses")?.as_u64()?,
            accesses: mem.get("accesses")?.as_u64()?,
            writes: mem.get("writes")?.as_u64()?,
            writebacks: mem.get("writebacks")?.as_u64()?,
            invalidations: mem.get("invalidations")?.as_u64()?,
            upgrades: mem.get("upgrades")?.as_u64()?,
            contention_wait: mem.get("contention_wait")?.as_u64()?,
        },
        avg_running_threads: v.get("avg_running_threads")?.as_f64()?,
        branch_lookups: v.get("branch_lookups")?.as_u64()?,
        branch_mispredicts: v.get("branch_mispredicts")?.as_u64()?,
        barrier_episodes: v.get("barrier_episodes")?.as_u64()?,
        lock_acquisitions: v.get("lock_acquisitions")?.as_u64()?,
        // Serialization omits the migration counters when zero (golden
        // JSON stability) — absence means zero, not malformed.
        migrations: v.get("migrations").map_or(Some(0), Value::as_u64)?,
        migration_wait_cycles: v
            .get("migration_wait_cycles")
            .map_or(Some(0), Value::as_u64)?,
    })
}
