//! Bounded work-stealing job pool with in-order streaming emission.
//!
//! The figure sweeps used to fan out one OS thread per grid cell
//! (`thread::scope` in `run_figure`), which is unbounded: a 4-seed ×
//! 8-arch × 6-app grid would spawn 192 threads at once. This pool runs
//! any number of jobs on a fixed worker count, like `par_step.rs`'s
//! cluster pool (rayon is not vendored — see vendor/README.md).
//!
//! Design, mirroring the determinism rules of the parallel cluster step:
//!
//! * every job index is pre-seeded round-robin onto one worker's deque
//!   (`i % nworkers`), so with no stealing the assignment is static;
//! * an idle worker pops its own deque from the *front* and steals from
//!   siblings' *backs*, so stealing grabs the work farthest from where
//!   the owner is currently working;
//! * results land in a slot array indexed by job, and a single shared
//!   cursor drains completed results **in job order** through the
//!   caller's sink — so streaming output is byte-identical regardless
//!   of worker count or steal interleaving.
//!
//! Job *completion order* is scheduling-dependent; everything observable
//! (the returned `Vec`, the sink call order) is not. This file is the
//! crate's registered concurrency seam (csmt-audit.toml `[[seam]]`): all
//! `Mutex`/`thread::scope` use in csmt-sweep lives here.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Shared emission state: the result slots plus the in-order cursor.
/// Destructured under one lock so insert-and-drain is atomic.
struct Emit<T, C> {
    results: Vec<Option<T>>,
    next: usize,
    sink: C,
}

/// Run `n_jobs` jobs (`job(i)` for `i in 0..n_jobs`) on at most
/// `threads` workers, calling `sink(i, &result)` for every job **in
/// ascending job order** as results become ready, and returning all
/// results in job order.
///
/// With `threads <= 1` (or a single job) everything runs inline on the
/// calling thread — the default on single-CPU hosts — and the parallel
/// path produces byte-identical observable behavior.
pub fn run_jobs<T, F, C>(n_jobs: usize, threads: usize, job: F, mut sink: C) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    C: FnMut(usize, &T) + Send,
{
    if threads <= 1 || n_jobs <= 1 {
        return (0..n_jobs)
            .map(|i| {
                let r = job(i);
                sink(i, &r);
                r
            })
            .collect();
    }
    let nworkers = threads.min(n_jobs);
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..nworkers)
        .map(|w| Mutex::new((0..n_jobs).filter(|i| i % nworkers == w).collect()))
        .collect();
    let emit = Mutex::new(Emit {
        results: (0..n_jobs).map(|_| None).collect(),
        next: 0,
        sink,
    });
    std::thread::scope(|s| {
        for w in 0..nworkers {
            let (queues, emit, job) = (&queues, &emit, &job);
            s.spawn(move || {
                while let Some(i) = next_job(queues, w) {
                    let r = job(i);
                    let mut e = emit.lock().expect("emit lock");
                    let Emit {
                        results,
                        next,
                        sink,
                    } = &mut *e;
                    results[i] = Some(r);
                    // Drain every consecutive ready result in job order.
                    while let Some(Some(r)) = results.get(*next) {
                        sink(*next, r);
                        *next += 1;
                    }
                }
            });
        }
    });
    emit.into_inner()
        .expect("emit lock")
        .results
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

/// Claim the next job for worker `w`: own deque front first, then a
/// steal from a sibling's back. `None` means the whole grid is claimed
/// (jobs are only seeded up front, so the worker can retire).
fn next_job(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue lock").pop_front() {
        return Some(i);
    }
    for q in queues.iter().cycle().skip(w + 1).take(queues.len() - 1) {
        if let Some(i) = q.lock().expect("queue lock").pop_back() {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_collecting(n_jobs: usize, threads: usize) -> (Vec<usize>, Vec<usize>) {
        let mut streamed = Vec::new();
        let results = run_jobs(
            n_jobs,
            threads,
            |i| i * 10,
            |i, &r| streamed.push(i * 1000 + r),
        );
        (results, streamed)
    }

    #[test]
    fn serial_and_pooled_agree_in_results_and_sink_order() {
        let (serial_r, serial_s) = run_collecting(23, 1);
        for threads in [2, 4, 7, 32] {
            let (r, s) = run_collecting(23, threads);
            assert_eq!(r, serial_r, "{threads} threads");
            assert_eq!(s, serial_s, "{threads} threads");
        }
    }

    #[test]
    fn sink_sees_every_job_exactly_once_in_order() {
        let (_, streamed) = run_collecting(50, 4);
        let expect: Vec<usize> = (0..50).map(|i| i * 1000 + i * 10).collect();
        assert_eq!(streamed, expect);
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert!(run_jobs(0, 4, |i| i, |_, _| {}).is_empty());
        assert_eq!(run_jobs(1, 4, |i| i + 7, |_, _| {}), vec![7]);
    }

    #[test]
    fn more_workers_than_jobs_is_clamped() {
        let (r, s) = run_collecting(3, 64);
        assert_eq!(r, vec![0, 10, 20]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn uneven_job_cost_still_emits_in_order() {
        // Job 0 is the slowest; its sink call must still come first.
        let mut order = Vec::new();
        run_jobs(
            8,
            4,
            |i| {
                if i == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
                i
            },
            |i, _| order.push(i),
        );
        assert_eq!(order, (0..8).collect::<Vec<_>>());
    }
}
