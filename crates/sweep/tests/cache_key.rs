//! Cache-key sensitivity and entry self-verification.
//!
//! The content-addressed key must be (a) stable across *processes* — a
//! cache written yesterday hits today — and (b) sensitive to every
//! individual knob that can change a result, including the schema tag.
//! Entries must prove their own integrity: corruption, truncation, and
//! foreign schemas are misses, never trusted data.

use csmt_core::ArchKind;
use csmt_sweep::{cache::payload_digest, ResultCache, SweepCell, SweepEngine, CACHE_SCHEMA};
use csmt_workloads::by_name;
use std::process::Command;

fn base_cell() -> SweepCell {
    SweepCell {
        app: by_name("mgrid").unwrap(),
        arch: ArchKind::Smt2,
        n_chips: 1,
        seed: 42,
        scale: 0.02,
        sched: "static".to_string(),
    }
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("csmt_sweep_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `--print-keys` output of a fresh OS process over a fixed small grid.
fn keys_from_fresh_process() -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_csmt-sweep"))
        .args([
            "--archs",
            "FA2,SMT2",
            "--apps",
            "mgrid,fmm",
            "--seeds",
            "42",
            "--scales",
            "0.02",
            "--sched",
            "static",
            "--print-keys",
        ])
        .env_remove("CSMT_SCHED")
        .env_remove("CSMT_SWEEP_CACHE")
        .env_remove("CSMT_SWEEP_THREADS")
        .output()
        .expect("run csmt-sweep");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn keys_are_stable_across_two_processes() {
    let first = keys_from_fresh_process();
    let second = keys_from_fresh_process();
    assert!(!first.is_empty());
    assert_eq!(first, second, "cache keys must not depend on process state");
    // And the in-process computation agrees with the binary's.
    let cell = SweepCell {
        arch: ArchKind::Fa2,
        ..base_cell()
    };
    assert!(
        first.starts_with(&format!("{:016x} ", cell.key())),
        "binary key disagrees with library key:\n{first}"
    );
}

#[test]
fn every_knob_changes_the_key() {
    let base = base_cell();
    let variants = [
        (
            "arch",
            SweepCell {
                arch: ArchKind::Fa4,
                ..base.clone()
            },
        ),
        (
            "chips",
            SweepCell {
                n_chips: 4,
                ..base.clone()
            },
        ),
        (
            "app",
            SweepCell {
                app: by_name("ocean").unwrap(),
                ..base.clone()
            },
        ),
        (
            "seed",
            SweepCell {
                seed: 43,
                ..base.clone()
            },
        ),
        (
            "scale",
            SweepCell {
                scale: 0.021,
                ..base.clone()
            },
        ),
        (
            "sched",
            SweepCell {
                sched: "barrier".to_string(),
                ..base.clone()
            },
        ),
    ];
    let mut keys = vec![("base", base.key())];
    for (knob, cell) in &variants {
        keys.push((knob, cell.key()));
    }
    keys.push(("schema", base.key_with_schema("csmt-sweep-v0-test")));
    for (i, (name_a, key_a)) in keys.iter().enumerate() {
        for (name_b, key_b) in &keys[i + 1..] {
            assert_ne!(key_a, key_b, "{name_a} vs {name_b} collide");
        }
    }
}

#[test]
fn same_shape_different_kind_still_gets_distinct_keys() {
    // FA8 and SMT8 share the hardware shape (8 clusters × width 1), but
    // `ChipConfig.kind` is part of the digested configuration, so the
    // two Table-2 rows never share cache entries.
    let fa8 = SweepCell {
        arch: ArchKind::Fa8,
        ..base_cell()
    };
    let smt8 = SweepCell {
        arch: ArchKind::Smt8,
        ..base_cell()
    };
    assert_ne!(fa8.key(), smt8.key());
}

#[test]
fn corrupt_truncated_and_foreign_entries_are_recomputed() {
    let cell = base_cell();
    let dir = tmp_dir("corrupt");
    let cache = ResultCache::new(&dir).unwrap();
    let key = cell.key();
    let fresh = cell.simulate();
    cache.store(key, &fresh);
    let path = cache.entry_path(key);
    let good = std::fs::read_to_string(&path).unwrap();
    assert!(cache.load(key).is_some(), "pristine entry must hit");

    // Flip one digit inside the result payload: digest check rejects it.
    let cycles_field = format!("\"cycles\":{}", fresh.cycles);
    let corrupted = good.replace(&cycles_field, &format!("\"cycles\":{}", fresh.cycles + 1));
    assert_ne!(good, corrupted, "corruption must actually edit the payload");
    std::fs::write(&path, &corrupted).unwrap();
    assert!(cache.load(key).is_none(), "tampered payload must miss");

    // Truncation: not even JSON.
    std::fs::write(&path, &good[..good.len() / 2]).unwrap();
    assert!(cache.load(key).is_none(), "truncated entry must miss");

    // Foreign schema tag: parseable, self-consistent, still rejected.
    let foreign = good.replace(CACHE_SCHEMA, "some-other-tool-v9");
    std::fs::write(&path, &foreign).unwrap();
    assert!(cache.load(key).is_none(), "foreign schema must miss");

    // The engine recomputes through the bad entry and heals the cache.
    std::fs::write(&path, &corrupted).unwrap();
    let out = SweepEngine::new(1, Some(cache.clone())).run(std::slice::from_ref(&cell));
    assert_eq!((out.hits, out.misses), (0, 1));
    assert_eq!(
        serde_json::to_string(&out.results[0]).unwrap(),
        serde_json::to_string(&fresh).unwrap()
    );
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        good,
        "recompute must rewrite the pristine entry"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn entry_carries_its_own_payload_digest() {
    let cell = base_cell();
    let dir = tmp_dir("digest");
    let cache = ResultCache::new(&dir).unwrap();
    cache.store(cell.key(), &cell.simulate());
    let text = std::fs::read_to_string(cache.entry_path(cell.key())).unwrap();
    let entry: serde::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(entry.get("schema").unwrap().as_str(), Some(CACHE_SCHEMA));
    let stored = entry.get("payload_digest").unwrap().as_str().unwrap();
    assert_eq!(stored, payload_digest(entry.get("result").unwrap()));
    let _ = std::fs::remove_dir_all(&dir);
}
