//! Resume equivalence: the cache *is* the checkpoint.
//!
//! A sweep killed mid-run leaves whatever cache entries its atomic
//! writes completed. Rerunning the same command must (a) simulate only
//! the missing cells and (b) produce aggregate output byte-identical to
//! an uninterrupted run — the JSONL stream and the summary carry no
//! trace of which cells were hits.

use std::path::Path;
use std::process::Command;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("csmt_sweep_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run the binary over the test grid; returns its stdout status line.
fn sweep(cache: Option<&Path>, out: &Path, summary: &Path) -> String {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_csmt-sweep"));
    cmd.args([
        "--archs",
        "FA2,SMT2,SMT4",
        "--apps",
        "vpenta,mgrid",
        "--seeds",
        "11",
        "--scales",
        "0.02",
        "--sched",
        "static",
        "--threads",
        "3",
    ])
    .arg("--out")
    .arg(out)
    .arg("--summary")
    .arg(summary)
    .env_remove("CSMT_SCHED")
    .env_remove("CSMT_SWEEP_CACHE")
    .env_remove("CSMT_SWEEP_THREADS");
    if let Some(dir) = cache {
        cmd.arg("--cache").arg(dir);
    }
    let out = cmd.output().expect("run csmt-sweep");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

#[test]
fn killed_sweep_resumes_to_byte_identical_output() {
    let root = tmp_dir("kill");
    let cache = root.join("cache");
    let (out_a, sum_a) = (root.join("a.jsonl"), root.join("a.json"));
    let (out_b, sum_b) = (root.join("b.jsonl"), root.join("b.json"));
    let (out_c, sum_c) = (root.join("c.jsonl"), root.join("c.json"));

    // Uninterrupted run, populating the cache.
    let cold = sweep(Some(&cache), &out_a, &sum_a);
    assert!(cold.contains("0 hits, 6 misses"), "cold: {cold}");

    // "Kill" mid-sweep: drop every other cache entry (atomic writes mean
    // a real kill leaves exactly some-complete-entries, never partials).
    let mut entries: Vec<_> = std::fs::read_dir(&cache)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), 6);
    for path in entries.iter().step_by(2) {
        std::fs::remove_file(path).unwrap();
    }

    // Resume: half hits, half recomputed…
    let resumed = sweep(Some(&cache), &out_b, &sum_b);
    assert!(resumed.contains("3 hits, 3 misses"), "resumed: {resumed}");
    // …and the aggregate outputs are byte-identical.
    assert_eq!(
        std::fs::read(&out_a).unwrap(),
        std::fs::read(&out_b).unwrap(),
        "resumed JSONL differs from uninterrupted JSONL"
    );
    assert_eq!(
        std::fs::read(&sum_a).unwrap(),
        std::fs::read(&sum_b).unwrap()
    );

    // A cache-free run agrees too: caching is invisible in the output.
    let uncached = sweep(None, &out_c, &sum_c);
    assert!(
        uncached.contains("0 hits, 6 misses"),
        "uncached: {uncached}"
    );
    assert_eq!(
        std::fs::read(&out_a).unwrap(),
        std::fs::read(&out_c).unwrap()
    );
    assert_eq!(
        std::fs::read(&sum_a).unwrap(),
        std::fs::read(&sum_c).unwrap()
    );

    // Fully warm rerun: pure cache traffic, same bytes again.
    let warm = sweep(Some(&cache), &out_b, &sum_b);
    assert!(warm.contains("6 hits, 0 misses"), "warm: {warm}");
    assert_eq!(
        std::fs::read(&out_a).unwrap(),
        std::fs::read(&out_b).unwrap()
    );

    let _ = std::fs::remove_dir_all(&root);
}
