//! JSONL heartbeat sampler: one JSON object every N cycles.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use serde::Value;

use crate::probe::{CycleStats, Probe, HAZARD_LABELS};

/// Emits a machine heartbeat as one JSON object per line, every
/// `interval` cycles, by differencing consecutive [`CycleStats`]
/// snapshots. Each record carries the interval's IPC, the §4.1 slot
/// breakdown both as raw slot counts and as fractions in the paper's
/// legend order, cache miss rates, and the running-thread count at the
/// interval boundary.
///
/// Because `SlotStats::record_cycle` conserves slots
/// (`useful + Σ wasted == issue_width × cycles` every cycle), the
/// emitted `useful_frac + Σ wasted_frac` sums to 1 for every interval,
/// and the raw slot counts across all records telescope to the final
/// `SlotStats` of the run.
///
/// A final partial interval (if any cycles ran past the last boundary)
/// is emitted by [`finish`](IntervalSampler::finish). I/O errors are
/// sticky: the first one stops further output and is returned by
/// `finish`. Call `finish` explicitly to handle that error yourself —
/// if the sampler is instead dropped with a failed or unflushed final
/// interval, [`Drop`] **panics** with the underlying error rather than
/// silently truncating the heartbeat stream (unless the thread is
/// already panicking, in which case the error goes to stderr).
pub struct IntervalSampler<W: Write = BufWriter<File>> {
    out: W,
    interval: u64,
    /// Snapshot at the last emitted boundary.
    prev: CycleStats,
    /// Most recent snapshot seen.
    last: CycleStats,
    last_cycle: u64,
    /// Snapshots arrived since the last emission.
    pending: bool,
    error: Option<io::Error>,
}

impl IntervalSampler<BufWriter<File>> {
    /// Create a sampler writing JSONL to the file at `path`.
    pub fn create(path: impl AsRef<Path>, interval: u64) -> io::Result<Self> {
        let path = path.as_ref();
        let file = File::create(path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("creating heartbeat file {}: {e}", path.display()),
            )
        })?;
        Ok(Self::new(BufWriter::new(file), interval))
    }
}

impl<W: Write> IntervalSampler<W> {
    /// Create a sampler over any writer. `interval` must be non-zero.
    pub fn new(out: W, interval: u64) -> Self {
        assert!(interval > 0, "heartbeat interval must be non-zero");
        IntervalSampler {
            out,
            interval,
            prev: CycleStats::default(),
            last: CycleStats::default(),
            last_cycle: 0,
            pending: false,
            error: None,
        }
    }

    /// Emit the trailing partial interval (if any) and flush. Returns
    /// the first I/O error encountered over the sampler's lifetime.
    pub fn finish(&mut self) -> io::Result<()> {
        if self.pending && self.last.cycles > self.prev.cycles {
            self.emit(self.last_cycle);
        }
        self.pending = false;
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }

    fn emit(&mut self, cycle: u64) {
        if self.error.is_some() {
            return;
        }
        let rec = heartbeat_record(&self.prev, &self.last, cycle);
        let mut line = String::new();
        rec.render(&mut line);
        line.push('\n');
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
        self.prev = self.last;
        self.pending = false;
    }
}

impl<W: Write> Probe for IntervalSampler<W> {
    const WANTS_INST_EVENTS: bool = false;
    const WANTS_CACHE_EVENTS: bool = false;
    const WANTS_CYCLE_STATS: bool = true;

    fn cycle_end(&mut self, cycle: u64, stats: Option<&CycleStats>) {
        let Some(stats) = stats else { return };
        self.last = *stats;
        self.last_cycle = cycle;
        self.pending = true;
        if (cycle + 1).is_multiple_of(self.interval) {
            self.emit(cycle);
        }
    }
}

impl<W: Write> Drop for IntervalSampler<W> {
    fn drop(&mut self) {
        if let Err(e) = self.finish() {
            // Losing the final interval silently would make the stream
            // stop telescoping to the run's totals; fail loudly instead.
            // During an unwind a second panic would abort the process,
            // so degrade to stderr there.
            if std::thread::panicking() {
                eprintln!("heartbeat sampler: flushing final interval failed during panic: {e}");
            } else {
                panic!("heartbeat sampler: flushing final interval failed: {e}");
            }
        }
    }
}

/// Build one heartbeat record from two cumulative snapshots.
/// `cycle` is the last cycle index covered by the interval.
fn heartbeat_record(prev: &CycleStats, cur: &CycleStats, cycle: u64) -> Value {
    let d_cycles = cur.cycles - prev.cycles;
    let d_slots = cur.slots - prev.slots;
    let d_committed = cur.committed - prev.committed;
    let d_useful = cur.useful - prev.useful;
    let d_accesses = cur.accesses - prev.accesses;
    let frac = |x: f64| if d_slots > 0 { x / d_slots as f64 } else { 0.0 };
    let rate = |n: u64| {
        if d_accesses > 0 {
            n as f64 / d_accesses as f64
        } else {
            0.0
        }
    };

    let mut wasted_slots = Vec::with_capacity(7);
    let mut wasted_frac = Vec::with_capacity(7);
    for (i, label) in HAZARD_LABELS.iter().enumerate() {
        let d = cur.wasted[i] - prev.wasted[i];
        wasted_slots.push((label.to_string(), Value::F64(d)));
        wasted_frac.push((label.to_string(), Value::F64(frac(d))));
    }

    Value::Object(vec![
        ("cycle".into(), Value::U64(cycle)),
        ("cycles".into(), Value::U64(d_cycles)),
        ("committed".into(), Value::U64(d_committed)),
        (
            "ipc".into(),
            Value::F64(if d_cycles > 0 {
                d_committed as f64 / d_cycles as f64
            } else {
                0.0
            }),
        ),
        ("slots".into(), Value::U64(d_slots)),
        ("useful_frac".into(), Value::F64(frac(d_useful))),
        ("wasted_frac".into(), Value::Object(wasted_frac)),
        ("useful_slots".into(), Value::F64(d_useful)),
        ("wasted_slots".into(), Value::Object(wasted_slots)),
        ("accesses".into(), Value::U64(d_accesses)),
        (
            "l1_miss_rate".into(),
            Value::F64(rate(d_accesses - (cur.l1_hits - prev.l1_hits))),
        ),
        ("l2_hits".into(), Value::U64(cur.l2_hits - prev.l2_hits)),
        (
            "tlb_miss_rate".into(),
            Value::F64(rate(cur.tlb_misses - prev.tlb_misses)),
        ),
        (
            "running_threads".into(),
            Value::U64(u64::from(cur.running_threads)),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cumulative snapshot after `cycles` cycles of a 4-wide machine
    /// that spends 50% useful, 25% data, 25% memory.
    fn snap(cycles: u64) -> CycleStats {
        let slots = cycles * 4;
        let mut wasted = [0.0; 7];
        wasted[2] = slots as f64 * 0.25; // memory
        wasted[3] = slots as f64 * 0.25; // data
        CycleStats {
            useful: slots as f64 * 0.5,
            wasted,
            slots,
            cycles,
            committed: cycles * 2,
            running_threads: 3,
            accesses: cycles,
            l1_hits: cycles / 2,
            l2_hits: cycles / 4,
            tlb_misses: 0,
        }
    }

    fn run_sampler(interval: u64, total_cycles: u64) -> Vec<serde::Value> {
        let mut buf = Vec::new();
        {
            let mut s = IntervalSampler::new(&mut buf, interval);
            for c in 0..total_cycles {
                let st = snap(c + 1);
                s.cycle_end(c, Some(&st));
            }
            s.finish().expect("in-memory sampler cannot hit I/O errors");
        }
        String::from_utf8(buf)
            .expect("sampler output is UTF-8 JSONL")
            .lines()
            .map(|l| serde_json::from_str(l).expect("each heartbeat line parses as JSON"))
            .collect()
    }

    #[test]
    fn emits_one_record_per_full_interval() {
        let recs = run_sampler(100, 300);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0]["cycle"].as_u64(), Some(99));
        assert_eq!(recs[2]["cycle"].as_u64(), Some(299));
        for r in &recs {
            assert_eq!(r["cycles"].as_u64(), Some(100));
            assert_eq!(r["slots"].as_u64(), Some(400));
        }
    }

    #[test]
    fn trailing_partial_interval_is_flushed_by_finish() {
        let recs = run_sampler(100, 250);
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2]["cycle"].as_u64(), Some(249));
        assert_eq!(recs[2]["cycles"].as_u64(), Some(50));
    }

    #[test]
    fn fractions_sum_to_one_per_interval() {
        for r in run_sampler(64, 200) {
            let mut sum = r["useful_frac"].as_f64().expect("useful_frac is a float");
            for label in HAZARD_LABELS {
                sum += r["wasted_frac"][label]
                    .as_f64()
                    .expect("every hazard label has a float fraction");
            }
            assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
        }
    }

    #[test]
    fn raw_slot_counts_telescope_to_final_totals() {
        let recs = run_sampler(77, 500);
        let useful: f64 = recs
            .iter()
            .map(|r| r["useful_slots"].as_f64().expect("useful_slots is a float"))
            .sum();
        let slots: u64 = recs
            .iter()
            .map(|r| r["slots"].as_u64().expect("slots is an integer"))
            .sum();
        let fin = snap(500);
        assert!((useful - fin.useful).abs() < 1e-6);
        assert_eq!(slots, fin.slots);
    }

    /// A writer whose writes always fail, for exercising the error path.
    struct FailWriter;

    impl Write for FailWriter {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::other("disk full"))
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn finish_reports_write_errors() {
        let mut s = IntervalSampler::new(FailWriter, 10);
        for c in 0..10 {
            let st = snap(c + 1);
            s.cycle_end(c, Some(&st));
        }
        let err = s.finish().expect_err("failed write must surface");
        assert_eq!(err.to_string(), "disk full");
        // The error was consumed; a clean drop follows.
    }

    #[test]
    fn drop_panics_instead_of_silently_dropping_the_final_interval() {
        let result = std::panic::catch_unwind(|| {
            let mut s = IntervalSampler::new(FailWriter, 100);
            // One snapshot short of a boundary: the record is pending
            // and only the drop-path flush can emit (and fail) it.
            let st = snap(1);
            s.cycle_end(0, Some(&st));
        });
        let payload = result.expect_err("drop must panic when the final flush fails");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is the formatted message");
        assert!(
            msg.contains("flushing final interval failed") && msg.contains("disk full"),
            "unexpected panic message: {msg}"
        );
    }

    #[test]
    fn ipc_and_miss_rates_are_interval_local() {
        let recs = run_sampler(100, 100);
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        let ipc = r["ipc"].as_f64().expect("ipc is a float");
        assert!((ipc - 2.0).abs() < 1e-9);
        let miss = r["l1_miss_rate"].as_f64().expect("l1_miss_rate is a float");
        assert!((miss - 0.5).abs() < 1e-9);
        assert_eq!(r["running_threads"].as_u64(), Some(3));
    }
}
