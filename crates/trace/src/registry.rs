//! Named, serializable stat sections assembled into one JSON document.

use std::io;
use std::path::Path;

use serde::{Serialize, Value};

/// Collects named stat sections — anything [`Serialize`] — and renders
/// them as a single insertion-ordered JSON object. This is the
/// machine-readable counterpart to the text tables the figure binaries
/// print: a binary records each run's `RunResult` (now fully
/// serializable, slot and memory statistics included) plus any summary
/// rows, then writes the whole registry once.
///
/// ```
/// use csmt_trace::StatsRegistry;
///
/// let mut reg = StatsRegistry::new();
/// reg.record("cycles", &1234u64);
/// reg.record("arch", "SMT2");
/// assert_eq!(reg.to_json(), r#"{"cycles":1234,"arch":"SMT2"}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StatsRegistry {
    sections: Vec<(String, Value)>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Number of sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// Record `value` under `name`, replacing any previous section with
    /// the same name (in place, keeping its position).
    pub fn record<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
        self.record_value(name, value.to_value());
    }

    /// Record an already-built [`Value`].
    pub fn record_value(&mut self, name: &str, value: Value) {
        match self.sections.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v = value,
            None => self.sections.push((name.to_string(), value)),
        }
    }

    /// Merge every section of `other` into this registry, with
    /// [`record_value`](StatsRegistry::record_value) semantics per
    /// section: a name already present is replaced in place (keeping its
    /// position); new names append in `other`'s order. Merging an empty
    /// registry is a no-op.
    pub fn merge(&mut self, other: &StatsRegistry) {
        for (name, value) in &other.sections {
            self.record_value(name, value.clone());
        }
    }

    /// The section recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// The registry as one JSON object value.
    pub fn to_value(&self) -> Value {
        Value::Object(self.sections.clone())
    }

    /// Compact JSON rendering.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.to_value().render(&mut out);
        out
    }

    /// Pretty (2-space indented) JSON rendering.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.to_value().render_pretty(&mut out);
        out
    }

    /// Write the pretty rendering to `path`.
    pub fn write_json(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut body = self.to_json_pretty();
        body.push('\n');
        std::fs::write(path, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keep_insertion_order() {
        let mut reg = StatsRegistry::new();
        reg.record("z_last_alphabetically_first_inserted", &1u32);
        reg.record("a", &2u32);
        let json = reg.to_json();
        assert!(json.find("z_last").unwrap() < json.find("\"a\"").unwrap());
    }

    #[test]
    fn record_replaces_in_place() {
        let mut reg = StatsRegistry::new();
        reg.record("x", &1u32);
        reg.record("y", &2u32);
        reg.record("x", &9u32);
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("x").and_then(Value::as_u64), Some(9));
        assert!(reg.to_json().starts_with(r#"{"x":9"#));
    }

    #[test]
    fn roundtrips_through_serde_json() {
        let mut reg = StatsRegistry::new();
        reg.record("nums", &[1.5f64, 2.0][..]);
        reg.record("name", "FA8");
        let parsed: Value = serde_json::from_str(&reg.to_json_pretty()).unwrap();
        assert_eq!(parsed["nums"][1].as_f64(), Some(2.0));
        assert_eq!(parsed["name"], "FA8");
    }

    #[test]
    fn empty_registry_renders_empty_object() {
        let reg = StatsRegistry::new();
        assert!(reg.is_empty());
        assert_eq!(reg.to_json(), "{}");
    }

    #[test]
    fn merge_with_empty_registry_is_a_noop_in_both_directions() {
        let mut full = StatsRegistry::new();
        full.record("cycles", &42u64);
        let before = full.to_json();

        // empty ← full picks up everything; full ← empty changes nothing.
        let mut empty = StatsRegistry::new();
        empty.merge(&full);
        assert_eq!(empty.to_json(), before);

        full.merge(&StatsRegistry::new());
        assert_eq!(full.to_json(), before);
    }

    #[test]
    fn merge_replaces_duplicate_names_in_place_and_appends_new_ones() {
        let mut base = StatsRegistry::new();
        base.record("arch", "SMT2");
        base.record("cycles", &100u64);

        let mut update = StatsRegistry::new();
        update.record("cycles", &250u64); // duplicate: replace in place
        update.record("ipc", &2.5f64); // new: append

        base.merge(&update);
        assert_eq!(base.len(), 3);
        assert_eq!(base.get("cycles").and_then(Value::as_u64), Some(250));
        // "cycles" kept its original position (before the appended "ipc").
        assert_eq!(base.to_json(), r#"{"arch":"SMT2","cycles":250,"ipc":2.5}"#);
    }

    #[test]
    fn non_finite_floats_render_as_null_and_stay_valid_json() {
        let mut reg = StatsRegistry::new();
        reg.record("nan", &f64::NAN);
        reg.record("inf", &f64::INFINITY);
        reg.record("neg_inf", &f64::NEG_INFINITY);
        reg.record("finite", &1.5f64);
        // JSON has no NaN/Infinity literals; the renderer degrades them
        // to null so the document always parses.
        assert_eq!(
            reg.to_json(),
            r#"{"nan":null,"inf":null,"neg_inf":null,"finite":1.5}"#
        );
        let parsed: Value = serde_json::from_str(&reg.to_json()).unwrap();
        assert!(parsed["nan"].is_null());
        assert_eq!(parsed["finite"].as_f64(), Some(1.5));
    }

    #[test]
    fn non_finite_values_survive_a_merge_unchanged() {
        let mut src = StatsRegistry::new();
        src.record("rate", &f64::NAN);
        let mut dst = StatsRegistry::new();
        dst.record("rate", &0.5f64);
        dst.merge(&src);
        assert_eq!(dst.to_json(), r#"{"rate":null}"#);
    }
}
