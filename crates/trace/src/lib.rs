//! # csmt-trace — zero-cost simulation observability
//!
//! Pipeline event probes for the clustered-SMT simulator. The pipeline,
//! machine, and memory hierarchy are generic over a [`Probe`]; every probe
//! call sits behind an associated `const` flag, so when the simulator is
//! instantiated with [`NullProbe`] (the default, used by every figure
//! binary and test) the instrumented code monomorphizes to exactly the
//! uninstrumented pipeline — zero branches, zero stores, zero allocation.
//!
//! Three concrete probes ship with the crate:
//!
//! * [`IntervalSampler`] — JSONL heartbeats every N cycles: interval IPC,
//!   the §4.1 wasted-slot breakdown as fractions (legend order), cache
//!   miss rates, and running-thread count. One JSON object per line.
//! * [`PipeviewProbe`] — per-instruction pipeline traces in gem5's
//!   O3PipeView format, viewable in [Konata](https://github.com/shioyadan/Konata).
//! * [`StatsRegistry`] — not a probe but a sink: named, serializable
//!   stat sections assembled into one machine-readable JSON document.
//!
//! Probes compose structurally: `(A, B)` is a probe that forwards to both,
//! `Option<P>` forwards when `Some`, and `&mut P` forwards through the
//! reference. Wants-flags OR together, so a disabled member of a pair
//! still costs nothing.

mod pipeview;
mod probe;
mod registry;
mod sampler;

pub use pipeview::PipeviewProbe;
pub use probe::{
    CacheEvent, CycleStats, FetchEvent, HostPhase, MigrationEvent, MigrationEventKind, NullProbe,
    Probe, RenamePoolEvent, ServiceLevel, StageEvent, SyncEvent, SyncEventKind, WindowOccEvent,
    HAZARD_LABELS,
};
pub use registry::StatsRegistry;
pub use sampler::IntervalSampler;
