//! Per-instruction pipeline traces in gem5's O3PipeView format.

use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use csmt_isa::OpClass;

use crate::probe::{FetchEvent, Probe, StageEvent};

/// Simulated ticks per machine cycle in the emitted trace. gem5 runs its
/// O3 model at 500 ticks/cycle (1 ps ticks, 2 GHz), and Konata's format
/// detection is happiest with the same granularity.
pub const TICKS_PER_CYCLE: u64 = 500;

/// An instruction in flight between fetch and commit/squash.
#[derive(Debug, Clone, Copy)]
struct Inflight {
    fetch: u64,
    issue: Option<u64>,
    writeback: Option<u64>,
    thread: u32,
    pc: u64,
    op: OpClass,
    wrong_path: bool,
}

/// Streams instruction lifetimes in gem5's `O3PipeView` trace format,
/// loadable by Konata and gem5's `util/o3-pipeview.py`:
///
/// ```text
/// O3PipeView:fetch:42000:0x00001234:0:7:IntAlu t0 c0
/// O3PipeView:decode:42000
/// O3PipeView:rename:42000
/// O3PipeView:dispatch:42000
/// O3PipeView:issue:42500
/// O3PipeView:complete:43500
/// O3PipeView:retire:44000:store:0
/// ```
///
/// The front end is single-cycle, so decode/rename/dispatch share the
/// fetch tick. A squashed instruction is emitted with retire tick 0
/// (gem5's convention for "never retired"); its missing stage ticks are
/// clamped to the last stage it reached, keeping timestamps
/// monotonically non-decreasing in every record. Records are written
/// when the instruction leaves the pipeline (commit or squash), so
/// memory stays bounded by the number of instructions in flight.
///
/// `max_records` (see [`with_limit`](PipeviewProbe::with_limit)) caps
/// the number of records written — traces grow by roughly 200 bytes per
/// instruction, so an uncapped billion-instruction run is a 200 GB file.
pub struct PipeviewProbe<W: Write = BufWriter<File>> {
    out: W,
    inflight: HashMap<(u32, u64), Inflight>,
    written: u64,
    max_records: u64,
    error: Option<io::Error>,
}

impl PipeviewProbe<BufWriter<File>> {
    /// Create a probe writing to the file at `path`, unlimited records.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        let file = File::create(path).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("creating pipeview trace {}: {e}", path.display()),
            )
        })?;
        Ok(Self::new(BufWriter::new(file)))
    }
}

impl<W: Write> PipeviewProbe<W> {
    /// Create a probe over any writer, with no record limit.
    pub fn new(out: W) -> Self {
        Self::with_limit(out, u64::MAX)
    }

    /// Create a probe that stops writing after `max_records` instruction
    /// records (instructions beyond the cap are still tracked and
    /// dropped silently, keeping memory bounded).
    pub fn with_limit(out: W, max_records: u64) -> Self {
        PipeviewProbe {
            out,
            inflight: HashMap::new(),
            written: 0,
            max_records,
            error: None,
        }
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Flush buffered output, returning the first I/O error seen.
    pub fn finish(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }

    fn retire(&mut self, e: StageEvent, committed: bool) {
        let Some(inst) = self.inflight.remove(&(e.cluster, e.uid)) else {
            return;
        };
        if self.written >= self.max_records || self.error.is_some() {
            return;
        }
        self.written += 1;

        // Clamp missing/out-of-order stages so ticks never decrease.
        let issue_c = inst.issue.unwrap_or(inst.fetch).max(inst.fetch);
        let complete_c = inst.writeback.unwrap_or(issue_c).max(issue_c);
        let retire_c = e.cycle.max(complete_c);

        let t = TICKS_PER_CYCLE;
        // A machine-unique display sequence number: cluster in the high
        // bits, cluster-local uid in the low 40.
        let sn = (u64::from(e.cluster) << 40) | (e.uid & ((1 << 40) - 1));
        let wp = if inst.wrong_path { " WP" } else { "" };
        let line = format!(
            "O3PipeView:fetch:{ft}:{pc:#010x}:0:{sn}:{op:?} t{tid} c{cl}{wp}\n\
             O3PipeView:decode:{ft}\n\
             O3PipeView:rename:{ft}\n\
             O3PipeView:dispatch:{ft}\n\
             O3PipeView:issue:{it}\n\
             O3PipeView:complete:{ct}\n\
             O3PipeView:retire:{rt}:store:0\n",
            ft = inst.fetch * t,
            pc = inst.pc,
            op = inst.op,
            tid = inst.thread,
            cl = e.cluster,
            it = issue_c * t,
            ct = complete_c * t,
            rt = if committed { retire_c * t } else { 0 },
        );
        if let Err(err) = self.out.write_all(line.as_bytes()) {
            self.error = Some(err);
        }
    }
}

impl<W: Write> Probe for PipeviewProbe<W> {
    const WANTS_INST_EVENTS: bool = true;
    const WANTS_CACHE_EVENTS: bool = false;
    const WANTS_CYCLE_STATS: bool = false;

    fn fetch(&mut self, e: FetchEvent) {
        self.inflight.insert(
            (e.cluster, e.uid),
            Inflight {
                fetch: e.cycle,
                issue: None,
                writeback: None,
                thread: e.thread,
                pc: e.pc,
                op: e.op,
                wrong_path: e.wrong_path,
            },
        );
    }

    fn issue(&mut self, e: StageEvent) {
        if let Some(i) = self.inflight.get_mut(&(e.cluster, e.uid)) {
            i.issue = Some(e.cycle);
        }
    }

    fn writeback(&mut self, e: StageEvent) {
        if let Some(i) = self.inflight.get_mut(&(e.cluster, e.uid)) {
            i.writeback = Some(e.cycle);
        }
    }

    fn commit(&mut self, e: StageEvent) {
        self.retire(e, true);
    }

    fn squash(&mut self, e: StageEvent) {
        self.retire(e, false);
    }
}

impl<W: Write> Drop for PipeviewProbe<W> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch(cluster: u32, uid: u64, cycle: u64) -> FetchEvent {
        FetchEvent {
            cycle,
            cluster,
            thread: 1,
            uid,
            pc: 0x400 + uid * 4,
            op: OpClass::IntAlu,
            wrong_path: false,
        }
    }

    fn stage(cluster: u32, uid: u64, cycle: u64) -> StageEvent {
        StageEvent {
            cycle,
            cluster,
            uid,
        }
    }

    fn lines(buf: Vec<u8>) -> Vec<String> {
        String::from_utf8(buf)
            .expect("trace output is UTF-8")
            .lines()
            .map(String::from)
            .collect()
    }

    #[test]
    fn committed_instruction_emits_full_record() {
        let mut buf = Vec::new();
        {
            let mut p = PipeviewProbe::new(&mut buf);
            p.fetch(fetch(0, 7, 10));
            p.issue(stage(0, 7, 12));
            p.writeback(stage(0, 7, 14));
            p.commit(stage(0, 7, 15));
            p.finish().expect("in-memory trace cannot hit I/O errors");
        }
        let ls = lines(buf);
        assert_eq!(ls.len(), 7);
        assert_eq!(ls[0], "O3PipeView:fetch:5000:0x0000041c:0:7:IntAlu t1 c0");
        assert_eq!(ls[1], "O3PipeView:decode:5000");
        assert_eq!(ls[4], "O3PipeView:issue:6000");
        assert_eq!(ls[5], "O3PipeView:complete:7000");
        assert_eq!(ls[6], "O3PipeView:retire:7500:store:0");
    }

    #[test]
    fn squashed_instruction_retires_at_tick_zero_with_clamped_stages() {
        let mut buf = Vec::new();
        {
            let mut p = PipeviewProbe::new(&mut buf);
            p.fetch(fetch(2, 3, 5));
            p.squash(stage(2, 3, 6)); // never issued
            p.finish().expect("in-memory trace cannot hit I/O errors");
        }
        let ls = lines(buf);
        // issue/complete clamp to the fetch tick; retire tick 0 marks
        // the squash.
        assert_eq!(ls[4], "O3PipeView:issue:2500");
        assert_eq!(ls[5], "O3PipeView:complete:2500");
        assert_eq!(ls[6], "O3PipeView:retire:0:store:0");
    }

    #[test]
    fn stage_ticks_never_decrease_within_a_record() {
        let mut buf = Vec::new();
        {
            let mut p = PipeviewProbe::new(&mut buf);
            for uid in 0..20u64 {
                p.fetch(fetch(0, uid, uid));
                if uid % 3 != 0 {
                    p.issue(stage(0, uid, uid + 2));
                }
                if uid % 4 != 0 {
                    p.writeback(stage(0, uid, uid + 5));
                }
                if uid % 5 == 0 {
                    p.squash(stage(0, uid, uid + 6));
                } else {
                    p.commit(stage(0, uid, uid + 6));
                }
            }
            p.finish().expect("in-memory trace cannot hit I/O errors");
        }
        let ls = lines(buf);
        for rec in ls.chunks(7) {
            let tick = |l: &str| {
                let field = l.split(':').nth(2).expect("records have a tick field");
                field.parse::<u64>().expect("tick fields are integers")
            };
            let seq = [tick(&rec[0]), tick(&rec[2]), tick(&rec[4]), tick(&rec[5])];
            assert!(
                seq.windows(2).all(|w| w[0] <= w[1]),
                "non-monotonic: {seq:?}"
            );
            let retire = tick(&rec[6]);
            assert!(retire == 0 || retire >= seq[3]);
        }
    }

    /// Golden output: a scripted three-instruction sequence (a committed
    /// load, a wrong-path squash, and a second-cluster ALU op) must
    /// reproduce this exact trace, byte for byte. Guards the whole
    /// format — field order, tick scaling, WP marker, sequence-number
    /// packing — against accidental drift that Konata would reject.
    #[test]
    fn golden_trace_for_a_scripted_sequence() {
        let mut buf = Vec::new();
        {
            let mut p = PipeviewProbe::new(&mut buf);
            // Committed load on cluster 0, thread 1.
            p.fetch(FetchEvent {
                cycle: 10,
                cluster: 0,
                thread: 1,
                uid: 7,
                pc: 0x41c,
                op: OpClass::Load,
                wrong_path: true,
            });
            p.issue(stage(0, 7, 12));
            p.writeback(stage(0, 7, 20));
            // Wrong-path instruction fetched and squashed before issue.
            p.fetch(FetchEvent {
                cycle: 11,
                cluster: 0,
                thread: 0,
                uid: 8,
                pc: 0x1000,
                op: OpClass::Branch,
                wrong_path: true,
            });
            p.squash(stage(0, 8, 13));
            p.commit(stage(0, 7, 21));
            // A second cluster exercises the sequence-number packing.
            p.fetch(fetch(3, 2, 30));
            p.issue(stage(3, 2, 31));
            p.writeback(stage(3, 2, 32));
            p.commit(stage(3, 2, 33));
            p.finish().expect("in-memory trace cannot hit I/O errors");
        }
        let golden = "\
O3PipeView:fetch:5500:0x00001000:0:8:Branch t0 c0 WP\n\
O3PipeView:decode:5500\n\
O3PipeView:rename:5500\n\
O3PipeView:dispatch:5500\n\
O3PipeView:issue:5500\n\
O3PipeView:complete:5500\n\
O3PipeView:retire:0:store:0\n\
O3PipeView:fetch:5000:0x0000041c:0:7:Load t1 c0 WP\n\
O3PipeView:decode:5000\n\
O3PipeView:rename:5000\n\
O3PipeView:dispatch:5000\n\
O3PipeView:issue:6000\n\
O3PipeView:complete:10000\n\
O3PipeView:retire:10500:store:0\n\
O3PipeView:fetch:15000:0x00000408:0:3298534883330:IntAlu t1 c3\n\
O3PipeView:decode:15000\n\
O3PipeView:rename:15000\n\
O3PipeView:dispatch:15000\n\
O3PipeView:issue:15500\n\
O3PipeView:complete:16000\n\
O3PipeView:retire:16500:store:0\n";
        assert_eq!(String::from_utf8(buf).unwrap(), golden);
    }

    #[test]
    fn record_limit_caps_output_but_keeps_draining() {
        let mut buf = Vec::new();
        {
            let mut p = PipeviewProbe::with_limit(&mut buf, 2);
            for uid in 0..5u64 {
                p.fetch(fetch(0, uid, uid));
                p.commit(stage(0, uid, uid + 3));
            }
            assert_eq!(p.records_written(), 2);
            assert!(p.inflight.is_empty());
            p.finish().expect("in-memory trace cannot hit I/O errors");
        }
        assert_eq!(lines(buf).len(), 14);
    }

    #[test]
    fn clusters_do_not_collide_on_uid() {
        let mut buf = Vec::new();
        {
            let mut p = PipeviewProbe::new(&mut buf);
            p.fetch(fetch(0, 9, 1));
            p.fetch(fetch(1, 9, 2));
            p.commit(stage(1, 9, 4));
            p.commit(stage(0, 9, 5));
            p.finish().expect("in-memory trace cannot hit I/O errors");
        }
        let ls = lines(buf);
        assert_eq!(ls.len(), 14);
        // First record out is cluster 1's instruction (fetched cycle 2).
        assert!(ls[0].contains(":1000:"));
        assert!(ls[0].ends_with("c1"));
        assert!(ls[7].ends_with("c0"));
    }
}
