//! The [`Probe`] trait, its event payloads, and structural composition.

use csmt_isa::{OpClass, SyncOp};

/// Hazard labels in the paper's legend order (§4.1), matching
/// `csmt_cpu::Hazard::ALL` / `Hazard::index()`. Kept here (rather than
/// imported) because the dependency arrow points the other way: the CPU
/// crate depends on this one. `csmt-cpu` has a test pinning the two lists
/// to each other.
pub const HAZARD_LABELS: [&str; 7] = [
    "other",
    "structural",
    "memory",
    "data",
    "control",
    "sync",
    "fetch",
];

/// Which level of the hierarchy serviced a memory access. Mirrors
/// `csmt_mem::ServicedBy` (same variants, same meaning); duplicated here
/// because `csmt-mem` depends on this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceLevel {
    /// Hit in the node's L1 bank.
    L1,
    /// Hit in the shared L2 (or merged into an in-flight MSHR).
    L2,
    /// Serviced by the node's local memory.
    LocalMem,
    /// Serviced by a remote node's memory across the interconnect.
    RemoteMem,
    /// Dirty line forwarded from a remote L2.
    RemoteL2,
}

impl ServiceLevel {
    /// Short lowercase name for trace output.
    pub fn label(self) -> &'static str {
        match self {
            ServiceLevel::L1 => "l1",
            ServiceLevel::L2 => "l2",
            ServiceLevel::LocalMem => "local_mem",
            ServiceLevel::RemoteMem => "remote_mem",
            ServiceLevel::RemoteL2 => "remote_l2",
        }
    }
}

/// An instruction entering the pipeline (fetched, then renamed the same
/// cycle — the front end is single-cycle, see `ClusterConfig`).
#[derive(Debug, Clone, Copy)]
pub struct FetchEvent {
    /// Cycle the instruction was fetched.
    pub cycle: u64,
    /// Machine-global cluster index (chip-major).
    pub cluster: u32,
    /// Hardware context within the cluster.
    pub thread: u32,
    /// Cluster-local instruction sequence number; unique per cluster for
    /// the lifetime of the run. `(cluster, uid)` is machine-unique.
    pub uid: u64,
    /// Program counter.
    pub pc: u64,
    /// Operation class (carries latency/FU info via `csmt_isa`).
    pub op: OpClass,
    /// True if fetched down a mispredicted path (will be squashed).
    pub wrong_path: bool,
}

/// An already-fetched instruction advancing one pipeline stage (issue,
/// writeback, commit) or being squashed. `(cluster, uid)` keys back to
/// the [`FetchEvent`] that introduced it.
#[derive(Debug, Clone, Copy)]
pub struct StageEvent {
    /// Cycle the stage happened.
    pub cycle: u64,
    /// Machine-global cluster index.
    pub cluster: u32,
    /// Cluster-local sequence number from the fetch event.
    pub uid: u64,
}

/// One memory-hierarchy access (load issue or store commit).
#[derive(Debug, Clone, Copy)]
pub struct CacheEvent {
    /// Cycle the access entered the hierarchy.
    pub cycle: u64,
    /// NUMA node (chip) performing the access.
    pub node: u32,
    /// Physical address.
    pub addr: u64,
    /// True for stores.
    pub write: bool,
    /// Level that serviced the access.
    pub level: ServiceLevel,
    /// True if the access also missed the TLB.
    pub tlb_miss: bool,
    /// Cycle the data becomes available.
    pub complete_at: u64,
}

/// What a software thread did at a synchronization point.
#[derive(Debug, Clone, Copy)]
pub enum SyncEventKind {
    /// Thread reached a synchronization operation and parked.
    Reached(SyncOp),
    /// Thread ran its stream to completion.
    Done,
    /// Runtime resumed the thread (barrier released / lock granted).
    Resumed,
}

/// A runtime-level synchronization event (§3.3 fork-join runtime).
#[derive(Debug, Clone, Copy)]
pub struct SyncEvent {
    /// Cycle the event was processed by the runtime.
    pub cycle: u64,
    /// Software thread id (machine-global).
    pub thread: u32,
    /// What happened.
    pub kind: SyncEventKind,
}

/// End-of-cycle snapshot of one cluster's renaming-register pools (Table 2
/// budgets), emitted only when [`Probe::WANTS_POOL_STATS`] is set.
///
/// `free` counts registers in the free pool; `held` counts registers bound
/// to destinations of valid instruction-window entries. Register
/// conservation (`free + held == capacity`, per file) holds at every
/// snapshot — `csmt-verify`'s `InvariantProbe` checks exactly that.
/// Building the snapshot costs a pass over the window, which is why it
/// sits behind its own wants-flag (default **off**, unlike the others).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RenamePoolEvent {
    /// Cycle the snapshot was taken (end of this cycle's pipeline phases).
    pub cycle: u64,
    /// Machine-global cluster index.
    pub cluster: u32,
    /// Integer renaming registers currently free.
    pub int_free: u32,
    /// FP renaming registers currently free.
    pub fp_free: u32,
    /// Integer registers held by valid window entries.
    pub int_held: u32,
    /// FP registers held by valid window entries.
    pub fp_held: u32,
}

/// End-of-cycle snapshot of one cluster's instruction-window occupancy,
/// emitted only when [`Probe::WANTS_OCC_STATS`] is set.
///
/// `occupied` counts valid window entries (the window doubles as the
/// reorder buffer, so this is also ROB occupancy); `ready` counts entries
/// with every operand available that are awaiting an issue slot. Both are
/// instantaneous values sampled after the cycle's pipeline phases, which
/// is what the occupancy histograms in `csmt-metrics` consume. Reading
/// them is cheap, but the event is still gated behind its own default-off
/// wants-flag so every existing probe keeps its event stream bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowOccEvent {
    /// Cycle the snapshot was taken (end of this cycle's pipeline phases).
    pub cycle: u64,
    /// Machine-global cluster index.
    pub cluster: u32,
    /// Valid instruction-window / reorder-buffer entries.
    pub occupied: u32,
    /// Entries ready to issue (all operands available, not yet selected).
    pub ready: u32,
}

/// What a [`MigrationEvent`] reports about a thread's placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationEventKind {
    /// Thread bound to its initial context (emitted once per thread at the
    /// start of the run, so observers learn the placement map).
    Attach,
    /// Thread's context fully drained; the thread left the cluster and is
    /// in transit.
    Depart,
    /// Thread arrived at its destination context after the modeled
    /// migration latency.
    Arrive,
}

/// A thread-scheduler placement event (attach or migration), emitted only
/// when [`Probe::WANTS_SCHED_EVENTS`] is set. Default **off** so every
/// pre-existing probe — and the golden determinism digests — keeps its
/// event stream bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationEvent {
    /// Cycle the event was processed by the machine loop.
    pub cycle: u64,
    /// Software thread id (machine-global).
    pub thread: u32,
    /// Machine-global cluster index the thread is bound to (for `Depart`,
    /// the cluster being left; for `Attach`/`Arrive`, the new home).
    pub cluster: u32,
    /// Hardware context within that cluster.
    pub ctx: u32,
    /// What happened.
    pub kind: MigrationEventKind,
    /// Cycles spent between leaving the old context and this event
    /// (non-zero only for `Arrive`: the modeled migration latency plus any
    /// wait for the destination context to free up).
    pub wait: u64,
}

/// A host-side simulator phase, for self-profiling where the *simulator*
/// (not the simulated machine) spends its wall-clock time. Reported via
/// [`Probe::host_phase`] when [`Probe::WANTS_HOST_PHASES`] is set.
///
/// `Memory` time is nested inside `Issue` (loads) and `Commit` (stores):
/// the memory hierarchy is entered from those two pipeline phases, so a
/// profiler summing all phases counts memory time twice unless it
/// subtracts the nested share.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPhase {
    /// Completion: popping the wheel, wakeup, branch resolution.
    Complete,
    /// Per-thread in-order commit (includes store cache accesses).
    Commit,
    /// Oldest-first select + functional-unit issue (includes load
    /// cache accesses).
    Issue,
    /// Fetch/rename/dispatch.
    Fetch,
    /// §4.1 issue-slot accounting scan.
    Account,
    /// One memory-hierarchy access (nested inside `Issue` or `Commit`).
    Memory,
    /// End-of-cycle [`CycleStats`] snapshot assembly in the machine loop.
    CycleEnd,
}

impl HostPhase {
    /// All phases, in pipeline order (with the nested/epilogue phases
    /// last).
    pub const ALL: [HostPhase; 7] = [
        HostPhase::Complete,
        HostPhase::Commit,
        HostPhase::Issue,
        HostPhase::Fetch,
        HostPhase::Account,
        HostPhase::Memory,
        HostPhase::CycleEnd,
    ];

    /// Dense index for array-backed accumulators.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            HostPhase::Complete => 0,
            HostPhase::Commit => 1,
            HostPhase::Issue => 2,
            HostPhase::Fetch => 3,
            HostPhase::Account => 4,
            HostPhase::Memory => 5,
            HostPhase::CycleEnd => 6,
        }
    }

    /// Short lowercase name for report output.
    pub fn label(self) -> &'static str {
        match self {
            HostPhase::Complete => "complete",
            HostPhase::Commit => "commit",
            HostPhase::Issue => "issue",
            HostPhase::Fetch => "fetch",
            HostPhase::Account => "account",
            HostPhase::Memory => "memory",
            HostPhase::CycleEnd => "cycle_end",
        }
    }
}

/// Cumulative machine-level counters snapshotted at the end of a cycle.
///
/// All fields are running totals since cycle 0 (except
/// [`running_threads`](CycleStats::running_threads), which is
/// instantaneous); consumers that want per-interval figures difference
/// two snapshots, as [`IntervalSampler`](crate::IntervalSampler) does.
/// Slot conservation holds at every snapshot:
/// `useful + wasted.iter().sum() == slots` (up to float rounding),
/// which is what makes differenced hazard fractions sum to 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CycleStats {
    /// Issue slots that did useful (eventually committed) work.
    pub useful: f64,
    /// Wasted slots by hazard, legend order ([`HAZARD_LABELS`]).
    pub wasted: [f64; 7],
    /// Total issue slots offered (`issue_width × cycles`, summed over
    /// clusters).
    pub slots: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Software threads currently running (instantaneous).
    pub running_threads: u32,
    /// Memory accesses entering the hierarchy.
    pub accesses: u64,
    /// Accesses serviced by L1.
    pub l1_hits: u64,
    /// Accesses serviced by L2 (incl. MSHR merges).
    pub l2_hits: u64,
    /// Accesses that missed the TLB.
    pub tlb_misses: u64,
}

/// Observer of per-cycle pipeline events.
///
/// Every method has an empty default body and sits behind one of the
/// three `WANTS_*` associated consts. Call sites in the simulator are
/// written as
///
/// ```ignore
/// if P::WANTS_INST_EVENTS {
///     probe.commit(StageEvent { cycle, cluster, uid });
/// }
/// ```
///
/// so for [`NullProbe`] (all flags `false`) the event construction and
/// the call are both statically eliminated. Implementors opt in by
/// overriding the relevant flag(s) and method(s).
pub trait Probe {
    /// Wants per-instruction events: [`fetch`](Probe::fetch),
    /// [`rename`](Probe::rename), [`issue`](Probe::issue),
    /// [`writeback`](Probe::writeback), [`commit`](Probe::commit),
    /// [`squash`](Probe::squash), and [`sync_event`](Probe::sync_event).
    const WANTS_INST_EVENTS: bool = true;
    /// Wants [`cache_access`](Probe::cache_access) events.
    const WANTS_CACHE_EVENTS: bool = true;
    /// Wants a [`CycleStats`] snapshot with each
    /// [`cycle_end`](Probe::cycle_end). Building the snapshot costs a
    /// pass over the clusters' stats, so it is gated separately.
    const WANTS_CYCLE_STATS: bool = true;
    /// Wants per-cluster [`RenamePoolEvent`] snapshots each cycle.
    /// Defaults to `false` (unlike the other flags): the snapshot needs a
    /// pass over the instruction window, and only invariant checkers
    /// care. Existing probes keep their event streams bit-for-bit.
    const WANTS_POOL_STATS: bool = false;
    /// Wants per-cluster [`WindowOccEvent`] snapshots each cycle.
    /// Defaults to `false` so existing probes (and the golden digests)
    /// keep their event streams bit-for-bit; `csmt-metrics` opts in for
    /// its occupancy histograms.
    const WANTS_OCC_STATS: bool = false;
    /// Wants [`host_phase`](Probe::host_phase) wall-clock reports around
    /// the simulator's own pipeline phases. Defaults to `false`: the
    /// timers cost two `Instant` reads per phase per cluster-cycle, which
    /// only the host self-profiler should pay.
    const WANTS_HOST_PHASES: bool = false;
    /// Wants [`migration`](Probe::migration) thread-placement events
    /// (initial attaches plus scheduler-driven migrations). Defaults to
    /// `false` so existing probes and the golden digests keep their event
    /// streams bit-for-bit; invariant checkers and the metrics collector
    /// opt in.
    const WANTS_SCHED_EVENTS: bool = false;

    /// Instruction fetched into a cluster's instruction window.
    #[inline]
    fn fetch(&mut self, _e: FetchEvent) {}
    /// Instruction renamed (same cycle as fetch in this pipeline).
    #[inline]
    fn rename(&mut self, _e: StageEvent) {}
    /// Instruction issued to a functional unit.
    #[inline]
    fn issue(&mut self, _e: StageEvent) {}
    /// Instruction finished execution and wrote back.
    #[inline]
    fn writeback(&mut self, _e: StageEvent) {}
    /// Instruction retired.
    #[inline]
    fn commit(&mut self, _e: StageEvent) {}
    /// Instruction squashed by a branch misprediction.
    #[inline]
    fn squash(&mut self, _e: StageEvent) {}
    /// Memory access classified by the hierarchy.
    #[inline]
    fn cache_access(&mut self, _e: CacheEvent) {}
    /// Runtime synchronization event.
    #[inline]
    fn sync_event(&mut self, _e: SyncEvent) {}
    /// Per-cluster rename-pool snapshot at the end of a cycle. Emitted
    /// only when [`WANTS_POOL_STATS`](Probe::WANTS_POOL_STATS) is set.
    #[inline]
    fn rename_pools(&mut self, _e: RenamePoolEvent) {}
    /// Per-cluster window-occupancy snapshot at the end of a cycle.
    /// Emitted only when [`WANTS_OCC_STATS`](Probe::WANTS_OCC_STATS) is
    /// set.
    #[inline]
    fn window_occ(&mut self, _e: WindowOccEvent) {}
    /// `nanos` of host wall-clock spent in one execution of `phase`.
    /// Emitted only when
    /// [`WANTS_HOST_PHASES`](Probe::WANTS_HOST_PHASES) is set. This is
    /// simulator self-profiling — it reports nothing about the simulated
    /// machine and is inherently non-deterministic across runs.
    #[inline]
    fn host_phase(&mut self, _phase: HostPhase, _nanos: u64) {}
    /// Thread attached to or migrated between hardware contexts. Emitted
    /// only when [`WANTS_SCHED_EVENTS`](Probe::WANTS_SCHED_EVENTS) is set.
    #[inline]
    fn migration(&mut self, _e: MigrationEvent) {}
    /// End of a machine cycle. `stats` is `Some` iff
    /// [`WANTS_CYCLE_STATS`](Probe::WANTS_CYCLE_STATS).
    #[inline]
    fn cycle_end(&mut self, _cycle: u64, _stats: Option<&CycleStats>) {}
}

/// The probe that observes nothing. All wants-flags are `false`, so
/// simulator code instantiated with `NullProbe` compiles to the
/// uninstrumented pipeline (verified by the `probe_overhead` bench in
/// `csmt-bench`).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {
    const WANTS_INST_EVENTS: bool = false;
    const WANTS_CACHE_EVENTS: bool = false;
    const WANTS_CYCLE_STATS: bool = false;
    const WANTS_POOL_STATS: bool = false;
    const WANTS_OCC_STATS: bool = false;
    const WANTS_HOST_PHASES: bool = false;
    const WANTS_SCHED_EVENTS: bool = false;
}

impl<P: Probe + ?Sized> Probe for &mut P {
    const WANTS_INST_EVENTS: bool = P::WANTS_INST_EVENTS;
    const WANTS_CACHE_EVENTS: bool = P::WANTS_CACHE_EVENTS;
    const WANTS_CYCLE_STATS: bool = P::WANTS_CYCLE_STATS;
    const WANTS_POOL_STATS: bool = P::WANTS_POOL_STATS;
    const WANTS_OCC_STATS: bool = P::WANTS_OCC_STATS;
    const WANTS_HOST_PHASES: bool = P::WANTS_HOST_PHASES;
    const WANTS_SCHED_EVENTS: bool = P::WANTS_SCHED_EVENTS;

    #[inline]
    fn fetch(&mut self, e: FetchEvent) {
        (**self).fetch(e);
    }
    #[inline]
    fn rename(&mut self, e: StageEvent) {
        (**self).rename(e);
    }
    #[inline]
    fn issue(&mut self, e: StageEvent) {
        (**self).issue(e);
    }
    #[inline]
    fn writeback(&mut self, e: StageEvent) {
        (**self).writeback(e);
    }
    #[inline]
    fn commit(&mut self, e: StageEvent) {
        (**self).commit(e);
    }
    #[inline]
    fn squash(&mut self, e: StageEvent) {
        (**self).squash(e);
    }
    #[inline]
    fn cache_access(&mut self, e: CacheEvent) {
        (**self).cache_access(e);
    }
    #[inline]
    fn sync_event(&mut self, e: SyncEvent) {
        (**self).sync_event(e);
    }
    #[inline]
    fn rename_pools(&mut self, e: RenamePoolEvent) {
        (**self).rename_pools(e);
    }
    #[inline]
    fn window_occ(&mut self, e: WindowOccEvent) {
        (**self).window_occ(e);
    }
    #[inline]
    fn host_phase(&mut self, phase: HostPhase, nanos: u64) {
        (**self).host_phase(phase, nanos);
    }
    #[inline]
    fn migration(&mut self, e: MigrationEvent) {
        (**self).migration(e);
    }
    #[inline]
    fn cycle_end(&mut self, cycle: u64, stats: Option<&CycleStats>) {
        (**self).cycle_end(cycle, stats);
    }
}

/// `Option<P>` is a probe that forwards when `Some`. The wants-flags are
/// those of `P` (statically — a `None` still pays the flag's cost in the
/// simulator, but not the probe's own work).
impl<P: Probe> Probe for Option<P> {
    const WANTS_INST_EVENTS: bool = P::WANTS_INST_EVENTS;
    const WANTS_CACHE_EVENTS: bool = P::WANTS_CACHE_EVENTS;
    const WANTS_CYCLE_STATS: bool = P::WANTS_CYCLE_STATS;
    const WANTS_POOL_STATS: bool = P::WANTS_POOL_STATS;
    const WANTS_OCC_STATS: bool = P::WANTS_OCC_STATS;
    const WANTS_HOST_PHASES: bool = P::WANTS_HOST_PHASES;
    const WANTS_SCHED_EVENTS: bool = P::WANTS_SCHED_EVENTS;

    #[inline]
    fn fetch(&mut self, e: FetchEvent) {
        if let Some(p) = self {
            p.fetch(e);
        }
    }
    #[inline]
    fn rename(&mut self, e: StageEvent) {
        if let Some(p) = self {
            p.rename(e);
        }
    }
    #[inline]
    fn issue(&mut self, e: StageEvent) {
        if let Some(p) = self {
            p.issue(e);
        }
    }
    #[inline]
    fn writeback(&mut self, e: StageEvent) {
        if let Some(p) = self {
            p.writeback(e);
        }
    }
    #[inline]
    fn commit(&mut self, e: StageEvent) {
        if let Some(p) = self {
            p.commit(e);
        }
    }
    #[inline]
    fn squash(&mut self, e: StageEvent) {
        if let Some(p) = self {
            p.squash(e);
        }
    }
    #[inline]
    fn cache_access(&mut self, e: CacheEvent) {
        if let Some(p) = self {
            p.cache_access(e);
        }
    }
    #[inline]
    fn sync_event(&mut self, e: SyncEvent) {
        if let Some(p) = self {
            p.sync_event(e);
        }
    }
    #[inline]
    fn rename_pools(&mut self, e: RenamePoolEvent) {
        if let Some(p) = self {
            p.rename_pools(e);
        }
    }
    #[inline]
    fn window_occ(&mut self, e: WindowOccEvent) {
        if let Some(p) = self {
            p.window_occ(e);
        }
    }
    #[inline]
    fn host_phase(&mut self, phase: HostPhase, nanos: u64) {
        if let Some(p) = self {
            p.host_phase(phase, nanos);
        }
    }
    #[inline]
    fn migration(&mut self, e: MigrationEvent) {
        if let Some(p) = self {
            p.migration(e);
        }
    }
    #[inline]
    fn cycle_end(&mut self, cycle: u64, stats: Option<&CycleStats>) {
        if let Some(p) = self {
            p.cycle_end(cycle, stats);
        }
    }
}

/// A pair of probes forwards every event to both; wants-flags OR.
impl<A: Probe, B: Probe> Probe for (A, B) {
    const WANTS_INST_EVENTS: bool = A::WANTS_INST_EVENTS || B::WANTS_INST_EVENTS;
    const WANTS_CACHE_EVENTS: bool = A::WANTS_CACHE_EVENTS || B::WANTS_CACHE_EVENTS;
    const WANTS_CYCLE_STATS: bool = A::WANTS_CYCLE_STATS || B::WANTS_CYCLE_STATS;
    const WANTS_POOL_STATS: bool = A::WANTS_POOL_STATS || B::WANTS_POOL_STATS;
    const WANTS_OCC_STATS: bool = A::WANTS_OCC_STATS || B::WANTS_OCC_STATS;
    const WANTS_HOST_PHASES: bool = A::WANTS_HOST_PHASES || B::WANTS_HOST_PHASES;
    const WANTS_SCHED_EVENTS: bool = A::WANTS_SCHED_EVENTS || B::WANTS_SCHED_EVENTS;

    #[inline]
    fn fetch(&mut self, e: FetchEvent) {
        self.0.fetch(e);
        self.1.fetch(e);
    }
    #[inline]
    fn rename(&mut self, e: StageEvent) {
        self.0.rename(e);
        self.1.rename(e);
    }
    #[inline]
    fn issue(&mut self, e: StageEvent) {
        self.0.issue(e);
        self.1.issue(e);
    }
    #[inline]
    fn writeback(&mut self, e: StageEvent) {
        self.0.writeback(e);
        self.1.writeback(e);
    }
    #[inline]
    fn commit(&mut self, e: StageEvent) {
        self.0.commit(e);
        self.1.commit(e);
    }
    #[inline]
    fn squash(&mut self, e: StageEvent) {
        self.0.squash(e);
        self.1.squash(e);
    }
    #[inline]
    fn cache_access(&mut self, e: CacheEvent) {
        self.0.cache_access(e);
        self.1.cache_access(e);
    }
    #[inline]
    fn sync_event(&mut self, e: SyncEvent) {
        self.0.sync_event(e);
        self.1.sync_event(e);
    }
    #[inline]
    fn rename_pools(&mut self, e: RenamePoolEvent) {
        self.0.rename_pools(e);
        self.1.rename_pools(e);
    }
    #[inline]
    fn window_occ(&mut self, e: WindowOccEvent) {
        self.0.window_occ(e);
        self.1.window_occ(e);
    }
    #[inline]
    fn host_phase(&mut self, phase: HostPhase, nanos: u64) {
        self.0.host_phase(phase, nanos);
        self.1.host_phase(phase, nanos);
    }
    #[inline]
    fn migration(&mut self, e: MigrationEvent) {
        self.0.migration(e);
        self.1.migration(e);
    }
    #[inline]
    fn cycle_end(&mut self, cycle: u64, stats: Option<&CycleStats>) {
        self.0.cycle_end(cycle, stats);
        self.1.cycle_end(cycle, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Records how many events of each kind it saw.
    #[derive(Default)]
    struct Counter {
        fetches: u32,
        commits: u32,
        cycles: u32,
    }

    impl Probe for Counter {
        fn fetch(&mut self, _e: FetchEvent) {
            self.fetches += 1;
        }
        fn commit(&mut self, _e: StageEvent) {
            self.commits += 1;
        }
        fn cycle_end(&mut self, _cycle: u64, _stats: Option<&CycleStats>) {
            self.cycles += 1;
        }
    }

    fn stage(cycle: u64) -> StageEvent {
        StageEvent {
            cycle,
            cluster: 0,
            uid: 1,
        }
    }

    /// The wants-flags of `P`, materialized as runtime values.
    fn wants<P: Probe>() -> [bool; 3] {
        [
            P::WANTS_INST_EVENTS,
            P::WANTS_CACHE_EVENTS,
            P::WANTS_CYCLE_STATS,
        ]
    }

    /// The pool-stats flag of `P`, materialized as a runtime value.
    fn wants_pool<P: Probe>() -> bool {
        P::WANTS_POOL_STATS
    }

    #[test]
    fn null_probe_wants_nothing() {
        assert_eq!(wants::<NullProbe>(), [false; 3]);
        assert!(!wants_pool::<NullProbe>());
    }

    #[test]
    fn pool_stats_flag_defaults_off_and_propagates() {
        // `Counter` does not override the flag, so the default (`false`)
        // applies — existing probes keep their event streams unchanged.
        assert!(!wants_pool::<Counter>());
        assert!(!wants_pool::<(Counter, NullProbe)>());

        struct PoolWatcher(u32);
        impl Probe for PoolWatcher {
            const WANTS_POOL_STATS: bool = true;
            fn rename_pools(&mut self, _e: RenamePoolEvent) {
                self.0 += 1;
            }
        }
        assert!(wants_pool::<(NullProbe, PoolWatcher)>());
        assert!(wants_pool::<&mut PoolWatcher>());
        assert!(wants_pool::<Option<PoolWatcher>>());
        let mut pair = (NullProbe, PoolWatcher(0));
        pair.rename_pools(RenamePoolEvent {
            cycle: 1,
            cluster: 0,
            int_free: 10,
            fp_free: 12,
            int_held: 6,
            fp_held: 4,
        });
        assert_eq!(pair.1 .0, 1);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the consts ARE the contract under test
    fn sched_events_flag_defaults_off_and_propagates() {
        // Probes that predate the channel never see it — the golden
        // digests' EventDigest stays migration-blind by construction.
        assert!(!<Counter as Probe>::WANTS_SCHED_EVENTS);
        assert!(!<NullProbe as Probe>::WANTS_SCHED_EVENTS);
        assert!(!<(Counter, NullProbe) as Probe>::WANTS_SCHED_EVENTS);

        struct SchedWatcher(u32, u64);
        impl Probe for SchedWatcher {
            const WANTS_SCHED_EVENTS: bool = true;
            fn migration(&mut self, e: MigrationEvent) {
                self.0 += 1;
                self.1 += e.wait;
            }
        }
        assert!(<(NullProbe, SchedWatcher) as Probe>::WANTS_SCHED_EVENTS);
        assert!(<&mut SchedWatcher as Probe>::WANTS_SCHED_EVENTS);
        assert!(<Option<SchedWatcher> as Probe>::WANTS_SCHED_EVENTS);
        let mut pair = (NullProbe, SchedWatcher(0, 0));
        pair.migration(MigrationEvent {
            cycle: 10,
            thread: 2,
            cluster: 1,
            ctx: 0,
            kind: MigrationEventKind::Arrive,
            wait: 100,
        });
        assert_eq!(pair.1 .0, 1);
        assert_eq!(pair.1 .1, 100);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the consts ARE the contract under test
    fn occ_and_host_phase_flags_default_off_and_propagate() {
        // Probes that predate the channels never see them.
        assert!(!<Counter as Probe>::WANTS_OCC_STATS);
        assert!(!<Counter as Probe>::WANTS_HOST_PHASES);
        assert!(!<(Counter, NullProbe) as Probe>::WANTS_OCC_STATS);
        assert!(!<(Counter, NullProbe) as Probe>::WANTS_HOST_PHASES);

        struct OccWatcher(u32, u64);
        impl Probe for OccWatcher {
            const WANTS_OCC_STATS: bool = true;
            const WANTS_HOST_PHASES: bool = true;
            fn window_occ(&mut self, e: WindowOccEvent) {
                self.0 += e.occupied;
            }
            fn host_phase(&mut self, _phase: HostPhase, nanos: u64) {
                self.1 += nanos;
            }
        }
        assert!(<(NullProbe, OccWatcher) as Probe>::WANTS_OCC_STATS);
        assert!(<&mut OccWatcher as Probe>::WANTS_HOST_PHASES);
        assert!(<Option<OccWatcher> as Probe>::WANTS_OCC_STATS);
        let mut pair = (NullProbe, OccWatcher(0, 0));
        pair.window_occ(WindowOccEvent {
            cycle: 1,
            cluster: 0,
            occupied: 12,
            ready: 3,
        });
        pair.host_phase(HostPhase::Issue, 250);
        assert_eq!(pair.1 .0, 12);
        assert_eq!(pair.1 .1, 250);
    }

    #[test]
    fn host_phase_index_matches_all_order() {
        for (i, phase) in HostPhase::ALL.into_iter().enumerate() {
            assert_eq!(phase.index(), i, "{}", phase.label());
        }
        // Labels are unique (they key report tables and JSON objects).
        for (i, a) in HostPhase::ALL.iter().enumerate() {
            for b in HostPhase::ALL.iter().skip(i + 1) {
                assert_ne!(a.label(), b.label());
            }
        }
    }

    #[test]
    fn pair_flags_or_together() {
        assert_eq!(wants::<(Counter, NullProbe)>(), [true; 3]);
        assert_eq!(wants::<(NullProbe, NullProbe)>(), [false; 3]);
        assert_eq!(wants::<(NullProbe, Counter)>(), [true; 3]);
    }

    #[test]
    fn pair_forwards_to_both_members() {
        let mut pair = (Counter::default(), Counter::default());
        pair.commit(stage(3));
        pair.commit(stage(4));
        pair.cycle_end(4, None);
        assert_eq!(pair.0.commits, 2);
        assert_eq!(pair.1.commits, 2);
        assert_eq!(pair.0.cycles, 1);
    }

    #[test]
    fn option_forwards_only_when_some() {
        let mut none: Option<Counter> = None;
        none.commit(stage(0));
        let mut some = Some(Counter::default());
        some.commit(stage(0));
        assert_eq!(some.unwrap().commits, 1);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Counter::default();
        {
            let r = &mut c;
            r.fetch(FetchEvent {
                cycle: 0,
                cluster: 0,
                thread: 0,
                uid: 0,
                pc: 0,
                op: csmt_isa::OpClass::IntAlu,
                wrong_path: false,
            });
        }
        assert_eq!(c.fetches, 1);
        assert_eq!(wants::<&mut Counter>(), [true; 3]);
    }

    #[test]
    fn hazard_labels_are_unique() {
        for (i, a) in HAZARD_LABELS.iter().enumerate() {
            for b in HAZARD_LABELS.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
