//! Seeded `wall-clock` violation for the csmt-audit self-test.
//!
//! Scanned as `crates/cpu/src/fixture.rs`; the audit must flag the
//! `Instant::now()` read on line 8 and nothing else.

/// Reads the host clock — results stop being a function of the seed.
pub fn stamp_ns() -> u128 {
    std::time::Instant::now().elapsed().as_nanos()
}
