//! Seeded `probe-gate` violation for the csmt-audit self-test.
//!
//! Scanned as `crates/core/src/fixture.rs`; `migration(…)` is gated by
//! the `WANTS_SCHED_EVENTS` channel, but the enclosing function never
//! checks the flag — the audit must flag line 9 and nothing else.

/// Ungated emission: would perturb default event streams.
pub fn emit_ungated<P: Probe>(probe: &mut P, e: MigrationEvent) {
    probe.migration(e);
}
