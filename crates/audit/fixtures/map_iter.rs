//! Seeded `map-iter` violation for the csmt-audit self-test.
//!
//! Scanned as `crates/core/src/fixture.rs`; the audit must flag the
//! `.keys()` iteration on line 10 and nothing else.

use std::collections::HashMap;

/// Key order here is whatever the hasher picked this run.
pub fn keys_unordered(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect()
}
