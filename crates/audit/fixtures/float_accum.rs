//! Seeded `float-accum` violation for the csmt-audit self-test.
//!
//! Scanned as `crates/workloads/src/fixture.rs`; the audit must warn
//! about the order-sensitive reduction on line 10 and nothing else.

use csmt_isa::fxhash::FxHashMap;

/// f64 addition is not associative: this sum depends on hasher order.
pub fn total(weights: &FxHashMap<u64, f64>) -> f64 {
    weights.values().sum::<f64>()
}
