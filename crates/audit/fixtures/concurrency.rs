//! Seeded `concurrency` violation for the csmt-audit self-test.
//!
//! Scanned as `crates/core/src/fixture.rs` with no [[seam]] covering
//! it; the audit must flag the `Mutex` on line 9 and nothing else.

/// A shared-state primitive in a sim crate: event order would depend
/// on the host scheduler, not on (config, workload, seed).
pub fn shared_counter() -> impl Sized {
    std::sync::Mutex::new(0u64)
}
