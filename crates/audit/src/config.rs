//! `csmt-audit.toml` — the audit's one configuration file.
//!
//! Three kinds of entries, all arrays of tables:
//!
//! * `[[allow]]` — suppress one rule in one file. `rule` and `path` are
//!   required, and so is a non-empty `justification`: a suppression
//!   without a written reason is itself a configuration error. Every
//!   entry must suppress at least one live finding — stale entries fail
//!   the run, so the allowlist can only shrink as code gets fixed.
//! * `[[seam]]` — a module registered as a *parallel seam*: the one
//!   place the concurrency rule permits `rayon`/`thread::spawn`/atomics
//!   inside sim crates. Empty today; ROADMAP item 3's parallel cluster
//!   phase registers its module here (with a justification) instead of
//!   weakening the rule. A seam that covers no concurrency use is stale.
//! * `[[channel]]` — a probe channel: the `WANTS_*` const on
//!   `csmt_trace::Probe` plus the emission methods it gates. The audit
//!   cross-checks this registry against the trait definition in both
//!   directions, so adding a channel without registering how it must be
//!   gated is a violation.
//!
//! The parser is a deliberately small TOML subset (comments, `[[table]]`
//! headers, `key = "string"` and `key = ["a", "b"]`), hand-rolled
//! because the vendor tree carries no TOML crate.

/// One `[[allow]]` suppression.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule identifier the entry suppresses (e.g. `wall-clock`).
    pub rule: String,
    /// Workspace-relative file the suppression applies to.
    pub path: String,
    /// Written reason — required, non-empty.
    pub justification: String,
}

/// One `[[seam]]` parallel-seam registration.
#[derive(Debug, Clone)]
pub struct Seam {
    /// Workspace-relative file (or directory prefix) of the seam module.
    pub path: String,
    /// Written reason — required, non-empty.
    pub justification: String,
}

/// One `[[channel]]` probe-channel registration.
#[derive(Debug, Clone)]
pub struct Channel {
    /// The gating const on `csmt_trace::Probe` (e.g. `WANTS_SCHED_EVENTS`).
    pub flag: String,
    /// Emission methods the flag gates (`probe.<method>(…)` call sites
    /// must sit in a function that checks the flag). Empty means the
    /// channel is registered but has no per-call gating contract (e.g.
    /// `WANTS_CYCLE_STATS`, which gates an argument, not the call).
    pub methods: Vec<String>,
}

/// Parsed contents of `csmt-audit.toml`.
#[derive(Debug, Clone, Default)]
pub struct AuditConfig {
    /// All `[[allow]]` suppressions, in file order.
    pub allows: Vec<Allow>,
    /// All `[[seam]]` registrations, in file order.
    pub seams: Vec<Seam>,
    /// All `[[channel]]` registrations, in file order.
    pub channels: Vec<Channel>,
}

/// A malformed configuration file (message includes the line number).
#[derive(Debug)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "csmt-audit.toml: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Key/value pairs of one table under construction.
#[derive(Default)]
struct RawTable {
    kind: String,
    line: usize,
    strings: Vec<(String, String)>,
    lists: Vec<(String, Vec<String>)>,
}

impl RawTable {
    fn string(&self, key: &str) -> Option<&str> {
        self.strings
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn required(&self, key: &str) -> Result<String, ConfigError> {
        match self.string(key) {
            Some(v) if !v.trim().is_empty() => Ok(v.to_owned()),
            Some(_) => Err(ConfigError(format!(
                "line {}: [[{}]] key `{key}` must not be empty",
                self.line, self.kind
            ))),
            None => Err(ConfigError(format!(
                "line {}: [[{}]] is missing required key `{key}`",
                self.line, self.kind
            ))),
        }
    }

    fn list(&self, key: &str) -> Vec<String> {
        self.lists
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    }
}

impl AuditConfig {
    /// Parse the configuration text.
    ///
    /// # Errors
    /// Returns [`ConfigError`] on syntax the subset does not accept, on
    /// unknown table names, and on entries missing required keys (every
    /// `allow`/`seam` must carry a non-empty `justification`).
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut tables: Vec<RawTable> = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_toml_comment(raw_line).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
                tables.push(RawTable {
                    kind: name.trim().to_owned(),
                    line: lineno,
                    ..RawTable::default()
                });
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError(format!(
                    "line {lineno}: expected `[[table]]` or `key = value`, got `{line}`"
                )));
            };
            let Some(table) = tables.last_mut() else {
                return Err(ConfigError(format!(
                    "line {lineno}: `key = value` before any [[table]] header"
                )));
            };
            let key = key.trim().to_owned();
            let value = value.trim();
            if let Some(items) = parse_list(value) {
                table.lists.push((key, items));
            } else if let Some(s) = parse_string(value) {
                table.strings.push((key, s));
            } else {
                return Err(ConfigError(format!(
                    "line {lineno}: value for `{key}` must be a \"string\" or a [\"list\"]"
                )));
            }
        }

        let mut cfg = AuditConfig::default();
        for t in &tables {
            match t.kind.as_str() {
                "allow" => cfg.allows.push(Allow {
                    rule: t.required("rule")?,
                    path: t.required("path")?,
                    justification: t.required("justification")?,
                }),
                "seam" => cfg.seams.push(Seam {
                    path: t.required("path")?,
                    justification: t.required("justification")?,
                }),
                "channel" => cfg.channels.push(Channel {
                    flag: t.required("flag")?,
                    methods: t.list("methods"),
                }),
                other => {
                    return Err(ConfigError(format!(
                        "line {}: unknown table [[{other}]] (expected allow, seam, or channel)",
                        t.line
                    )))
                }
            }
        }
        Ok(cfg)
    }
}

/// Drop a trailing `# comment`, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `"text"` (no escapes needed in this config).
fn parse_string(value: &str) -> Option<String> {
    value
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .map(str::to_owned)
}

/// Parse `["a", "b"]`.
fn parse_list(value: &str) -> Option<Vec<String>> {
    let inner = value.strip_prefix('[')?.strip_suffix(']')?;
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        items.push(parse_string(part)?);
    }
    Some(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_table_kinds() {
        let cfg = AuditConfig::parse(
            r#"
# comment
[[allow]]
rule = "wall-clock"          # inline comment
path = "crates/cpu/src/cluster.rs"
justification = "gated behind WANTS_HOST_PHASES"

[[seam]]
path = "crates/core/src/par.rs"
justification = "future rayon phase"

[[channel]]
flag = "WANTS_SCHED_EVENTS"
methods = ["migration"]
"#,
        )
        .expect("parses");
        assert_eq!(cfg.allows.len(), 1);
        assert_eq!(cfg.allows[0].rule, "wall-clock");
        assert_eq!(cfg.seams.len(), 1);
        assert_eq!(cfg.channels.len(), 1);
        assert_eq!(cfg.channels[0].methods, ["migration"]);
    }

    #[test]
    fn missing_justification_is_an_error() {
        let err =
            AuditConfig::parse("[[allow]]\nrule = \"x\"\npath = \"y\"\n").expect_err("must fail");
        assert!(err.0.contains("justification"), "{err:?}");
    }

    #[test]
    fn empty_justification_is_an_error() {
        let err =
            AuditConfig::parse("[[allow]]\nrule = \"x\"\npath = \"y\"\njustification = \"  \"\n")
                .expect_err("must fail");
        assert!(err.0.contains("must not be empty"), "{err:?}");
    }

    #[test]
    fn unknown_table_is_an_error() {
        let err = AuditConfig::parse("[[nope]]\nrule = \"x\"\n").expect_err("must fail");
        assert!(err.0.contains("unknown table"), "{err:?}");
    }

    #[test]
    fn empty_methods_list_is_accepted() {
        let cfg = AuditConfig::parse("[[channel]]\nflag = \"WANTS_CYCLE_STATS\"\nmethods = []\n")
            .expect("parses");
        assert!(cfg.channels[0].methods.is_empty());
    }
}
