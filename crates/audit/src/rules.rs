//! The five audit rules.
//!
//! Everything here operates on [`lexer::strip`](crate::lexer::strip)ped
//! text, so comments, strings and test-only code can never trigger (or
//! hide) a finding. Each rule is scoped to the crates where its property
//! matters; see [`in_scope`] for the exact path prefixes.
//!
//! | id            | severity | property enforced                                  |
//! |---------------|----------|----------------------------------------------------|
//! | `map-iter`    | error    | no iteration over unordered hash containers in the |
//! |               |          | determinism core (`core`/`cpu`/`mem`/`isa`)        |
//! | `wall-clock`  | error    | no wall-clock/entropy reads outside allowlisted    |
//! |               |          | host-profiling sites                               |
//! | `concurrency` | error    | no threads/locks/atomics in sim crates outside     |
//! |               |          | registered parallel seams                          |
//! | `probe-gate`  | error    | gated probe emissions sit in functions that check  |
//! |               |          | their `WANTS_*` channel; channels are registered   |
//! | `float-accum` | warning  | no order-sensitive float reduction over unordered  |
//! |               |          | containers (heuristic)                             |

use crate::config::AuditConfig;
use crate::lexer::{enclosing_fn, fn_spans, line_of};

/// How severe a finding is: errors always fail the run, warnings only
/// under `--deny-warnings` (the heuristic rule reports warnings).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Always fails the audit.
    Error,
    /// Fails only under `--deny-warnings` (tier-1 and CI pass it).
    Warning,
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (`map-iter`, `wall-clock`, …).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-indexed line of the offending token.
    pub line: usize,
    /// Severity class of the rule that fired.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{} — {}",
            self.rule, self.file, self.line, self.message
        )
    }
}

/// Every rule id, in reporting order.
pub const RULE_IDS: [&str; 5] = [
    "map-iter",
    "wall-clock",
    "concurrency",
    "probe-gate",
    "float-accum",
];

/// Whether `rule` applies to the workspace-relative `path`. Scopes are
/// deliberate, not incidental:
///
/// * `map-iter` / `float-accum` — the crates whose execution order feeds
///   the golden digests (`core`, `cpu`, `mem`, `isa`; `float-accum` also
///   covers `workloads`, whose generators seed those runs).
/// * `wall-clock` — every first-party crate except `csmt-bench`, whose
///   entire job is measuring host wall-clock.
/// * `concurrency` — the six sim crates plus the sweep engine (whose
///   work-stealing pool is a registered seam); observer crates
///   (`trace`, `metrics`, `verify`) and the bench harness run
///   host-side.
/// * `probe-gate` — the three crates that emit probe events.
#[must_use]
pub fn in_scope(rule: &str, path: &str) -> bool {
    let under = |prefixes: &[&str]| prefixes.iter().any(|p| path.starts_with(p));
    match rule {
        "map-iter" => under(&[
            "crates/core/src/",
            "crates/cpu/src/",
            "crates/mem/src/",
            "crates/isa/src/",
        ]),
        "wall-clock" => {
            (path.starts_with("crates/") || path.starts_with("src/"))
                && !path.starts_with("crates/bench/")
        }
        "concurrency" => under(&[
            "crates/core/src/",
            "crates/cpu/src/",
            "crates/mem/src/",
            "crates/isa/src/",
            "crates/workloads/src/",
            "crates/model/src/",
            "crates/sweep/src/",
        ]),
        "probe-gate" => under(&["crates/core/src/", "crates/cpu/src/", "crates/mem/src/"]),
        "float-accum" => under(&[
            "crates/core/src/",
            "crates/cpu/src/",
            "crates/mem/src/",
            "crates/isa/src/",
            "crates/workloads/src/",
        ]),
        _ => false,
    }
}

/// Run every in-scope rule over one stripped file. `cfg` supplies the
/// probe-channel registry (for `probe-gate`) and the seam registry (for
/// `concurrency`); the allowlist is applied by the caller, not here.
#[must_use]
pub fn audit_stripped(path: &str, stripped: &str, cfg: &AuditConfig) -> Vec<Finding> {
    let mut findings = Vec::new();
    if in_scope("map-iter", path) {
        map_iter(path, stripped, &mut findings);
    }
    if in_scope("wall-clock", path) {
        wall_clock(path, stripped, &mut findings);
    }
    if in_scope("concurrency", path) && !cfg.seams.iter().any(|s| path.starts_with(&s.path)) {
        concurrency(path, stripped, &mut findings);
    }
    if in_scope("probe-gate", path) {
        probe_gate(path, stripped, cfg, &mut findings);
    }
    if in_scope("float-accum", path) {
        float_accum(path, stripped, &mut findings);
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------
// Token utilities
// ---------------------------------------------------------------------

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All `(offset, ident)` tokens in `text`.
fn idents(text: &str) -> Vec<(usize, &str)> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if is_ident(bytes[i]) && !bytes[i].is_ascii_digit() {
            let start = i;
            while i < bytes.len() && is_ident(bytes[i]) {
                i += 1;
            }
            out.push((start, &text[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

/// Word-boundary occurrences of `needle` (which must start and end with
/// identifier characters) in `text`.
fn find_word(text: &str, needle: &str) -> Vec<usize> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(rel) = text[search..].find(needle) {
        let at = search + rel;
        search = at + 1;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            out.push(at);
        }
    }
    out
}

/// The identifier ending immediately before offset `at` (skipping
/// whitespace), e.g. the receiver's final path segment before a `.`.
fn ident_before(text: &str, at: usize) -> Option<&str> {
    let bytes = text.as_bytes();
    let mut j = at;
    while j > 0 && bytes[j - 1].is_ascii_whitespace() {
        j -= 1;
    }
    let end = j;
    while j > 0 && is_ident(bytes[j - 1]) {
        j -= 1;
    }
    (j < end).then(|| &text[j..end])
}

/// Start offset of the statement containing `at`: one past the previous
/// `;`, `{` or `}`.
fn stmt_start(text: &str, at: usize) -> usize {
    text.as_bytes()[..at]
        .iter()
        .rposition(|&b| b == b';' || b == b'{' || b == b'}')
        .map_or(0, |p| p + 1)
}

// ---------------------------------------------------------------------
// Rule: map-iter
// ---------------------------------------------------------------------

/// Unordered container type names whose iteration order is not defined
/// by the key space. (`BTreeMap`/`BTreeSet` iterate in key order and are
/// always allowed.)
const MAP_TYPES: [&str; 4] = ["FxHashMap", "HashMap", "FxHashSet", "HashSet"];

/// Iteration-shaped methods on those containers.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Identifiers declared with an unordered-container type in this file:
/// `name: [&][mut] [path::]FxHashMap<…>` field/binding/parameter
/// ascriptions, plus `let [mut] name = FxHashMap::default()`-style
/// initializer bindings.
fn map_idents(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let mut out: Vec<String> = Vec::new();
    let register = |name: &str, out: &mut Vec<String>| {
        if !name.is_empty() && !out.iter().any(|n| n == name) {
            out.push(name.to_owned());
        }
    };
    for ty in MAP_TYPES {
        for at in find_word(text, ty) {
            // Walk back over `&`, `mut`, and `path::` prefixes to find a
            // potential `name :` ascription.
            let mut j = at;
            loop {
                while j > 0 && bytes[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                if j >= 2 && &text[j - 2..j] == "::" {
                    j -= 2;
                    while j > 0 && is_ident(bytes[j - 1]) {
                        j -= 1;
                    }
                } else if j >= 1 && bytes[j - 1] == b'&' {
                    j -= 1;
                } else if j >= 3 && &text[j - 3..j] == "mut" && (j == 3 || !is_ident(bytes[j - 4]))
                {
                    j -= 3;
                } else {
                    break;
                }
            }
            if j >= 1 && bytes[j - 1] == b':' && (j < 2 || bytes[j - 2] != b':') {
                if let Some(name) = ident_before(text, j - 1) {
                    register(name, &mut out);
                    continue;
                }
            }
            // `let [mut] name = …FxHashMap::new()` — find the `let` of
            // this statement.
            let stmt = &text[stmt_start(text, at)..at];
            if let Some(let_at) = stmt.rfind("let ") {
                let after = stmt[let_at + 4..].trim_start();
                let after = after.strip_prefix("mut ").unwrap_or(after).trim_start();
                let end = after
                    .as_bytes()
                    .iter()
                    .position(|&b| !is_ident(b))
                    .unwrap_or(after.len());
                register(&after[..end], &mut out);
            }
        }
    }
    out
}

/// Rule `map-iter`: flag `m.iter()`-family calls and `for … in &m` loops
/// where `m` was declared as an unordered hash container in this file.
fn map_iter(path: &str, text: &str, findings: &mut Vec<Finding>) {
    let maps = map_idents(text);
    if maps.is_empty() {
        return;
    }
    let hit = |name: &str| maps.iter().any(|m| m == name);
    let bytes = text.as_bytes();
    for method in ITER_METHODS {
        for at in find_word(text, method) {
            if at == 0 || bytes[at - 1] != b'.' {
                continue;
            }
            if bytes.get(at + method.len()) != Some(&b'(') {
                continue;
            }
            let Some(recv) = ident_before(text, at - 1) else {
                continue;
            };
            if hit(recv) {
                findings.push(Finding {
                    rule: "map-iter",
                    file: path.to_owned(),
                    line: line_of(text, at),
                    severity: Severity::Error,
                    message: format!(
                        "`{recv}.{method}(…)` iterates an unordered hash container; the \
                         `csmt_isa::fxhash` contract is lookups/inserts/removals only — \
                         use a BTreeMap/Vec or sort before iterating"
                    ),
                });
            }
        }
    }
    for at in find_word(text, "for") {
        let Some(rest) = text.get(at + 3..) else {
            continue;
        };
        let Some(in_rel) = find_loop_in(rest) else {
            continue;
        };
        let expr_start = at + 3 + in_rel + 4;
        let Some(brace_rel) = text[expr_start..].find('{') else {
            continue;
        };
        let expr = text[expr_start..expr_start + brace_rel].trim();
        let expr = expr
            .strip_prefix("&mut ")
            .or_else(|| expr.strip_prefix('&'))
            .unwrap_or(expr)
            .trim();
        // Only a bare path (`self.barriers`, `m`): any method call or
        // indexing already chose an explicit iterator.
        if !expr.is_empty() && expr.bytes().all(|b| is_ident(b) || b == b'.' || b == b':') {
            let last = expr.rsplit(['.', ':']).next().unwrap_or(expr);
            if hit(last) {
                findings.push(Finding {
                    rule: "map-iter",
                    file: path.to_owned(),
                    line: line_of(text, at),
                    severity: Severity::Error,
                    message: format!(
                        "`for … in {expr}` iterates an unordered hash container; \
                         iteration order is not part of the simulation's defined behavior"
                    ),
                });
            }
        }
    }
}

/// Offset of the ` in ` keyword of a `for` loop within `rest` (the text
/// after `for`), or `None` when the body brace comes first.
fn find_loop_in(rest: &str) -> Option<usize> {
    let bytes = rest.as_bytes();
    let mut depth = 0i32;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b'{' if depth == 0 => return None,
            b' ' if depth == 0 && rest[i..].starts_with(" in ") => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Rule: wall-clock
// ---------------------------------------------------------------------

/// Rule `wall-clock`: wall-clock and entropy reads make runs
/// irreproducible; only the host-profiling sites allowlisted in
/// `csmt-audit.toml` may use them (their readings flow into `host_phase`
/// events only, never into simulated state).
fn wall_clock(path: &str, text: &str, findings: &mut Vec<Finding>) {
    for (token, what) in [
        ("Instant", "host wall-clock read"),
        ("SystemTime", "host wall-clock read"),
        ("thread_rng", "OS-entropy RNG"),
        ("from_entropy", "OS-entropy seeding"),
    ] {
        for at in find_word(text, token) {
            if token == "Instant" && !text[at..].starts_with("Instant::now") {
                // Only the read is banned; naming the type (e.g. to pass
                // a caller's timestamp through) is fine.
                continue;
            }
            findings.push(Finding {
                rule: "wall-clock",
                file: path.to_owned(),
                line: line_of(text, at),
                severity: Severity::Error,
                message: format!(
                    "`{token}` is a {what}: simulation results must be a pure function \
                     of (config, workload, seed) — derive timing from the cycle counter \
                     and randomness from the seeded SplitMix64"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: concurrency
// ---------------------------------------------------------------------

/// Rule `concurrency`: sim crates must stay single-threaded until the
/// parallel-stepping work lands behind a registered seam — shared-state
/// primitives anywhere else make event order schedule-dependent.
fn concurrency(path: &str, text: &str, findings: &mut Vec<Finding>) {
    let flag = |at: usize, token: &str, findings: &mut Vec<Finding>| {
        findings.push(Finding {
            rule: "concurrency",
            file: path.to_owned(),
            line: line_of(text, at),
            severity: Severity::Error,
            message: format!(
                "`{token}` is a concurrency primitive inside a sim crate; parallel \
                 execution must go through a module registered as a [[seam]] in \
                 csmt-audit.toml (the plug-in point for the parallel cluster phase)"
            ),
        });
    };
    for token in ["rayon", "Mutex", "RwLock", "Condvar", "mpsc", "crossbeam"] {
        for at in find_word(text, token) {
            flag(at, token, findings);
        }
    }
    // `thread::spawn` / `thread::scope` path calls (a method or local
    // named `spawn` alone is not a primitive).
    for token in ["thread::spawn", "thread::scope"] {
        for at in find_word(text, token) {
            flag(at, token, findings);
        }
    }
    for (at, ident) in idents(text) {
        if ident.starts_with("Atomic") && ident.len() > "Atomic".len() {
            flag(at, ident, findings);
        }
    }
    findings.sort_by_key(|f| f.line);
}

/// Concurrency findings for one in-scope file *ignoring* the seam
/// registry — the workspace driver uses this to prove a registered seam
/// actually covers concurrency use (an unused seam is stale).
#[must_use]
pub fn concurrency_findings(path: &str, stripped: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    if in_scope("concurrency", path) {
        concurrency(path, stripped, &mut out);
    }
    out
}

// ---------------------------------------------------------------------
// Rule: probe-gate
// ---------------------------------------------------------------------

/// Rule `probe-gate`, emission half: every `probe.<method>(…)` call for
/// a gated channel must sit in a function whose text checks the
/// channel's `WANTS_*` const — so a default-off channel provably cannot
/// perturb the default event stream (and the golden digests).
fn probe_gate(path: &str, text: &str, cfg: &AuditConfig, findings: &mut Vec<Finding>) {
    let spans = fn_spans(text);
    let bytes = text.as_bytes();
    for ch in &cfg.channels {
        for method in &ch.methods {
            for at in find_word(text, method) {
                if at == 0 || bytes[at - 1] != b'.' {
                    continue;
                }
                if bytes.get(at + method.len()) != Some(&b'(') {
                    continue;
                }
                if ident_before(text, at - 1) != Some("probe") {
                    continue;
                }
                let gated = enclosing_fn(&spans, at)
                    .is_some_and(|f| text[f.sig_start..f.body_end].contains(ch.flag.as_str()));
                if !gated {
                    findings.push(Finding {
                        rule: "probe-gate",
                        file: path.to_owned(),
                        line: line_of(text, at),
                        severity: Severity::Error,
                        message: format!(
                            "`probe.{method}(…)` emits on the `{}` channel, but the \
                             enclosing function never checks `{}` — ungated emission \
                             would change default event streams and break the golden \
                             digests",
                            ch.flag, ch.flag
                        ),
                    });
                }
            }
        }
    }
}

/// Rule `probe-gate`, registry half: every `WANTS_*` const declared in
/// the probe trait file must have a `[[channel]]` entry. Returns the
/// flags found in the file, so the caller can also detect stale
/// `[[channel]]` entries.
#[must_use]
pub fn check_channel_registry(
    probe_path: &str,
    stripped: &str,
    cfg: &AuditConfig,
    findings: &mut Vec<Finding>,
) -> Vec<String> {
    let mut declared: Vec<(usize, String)> = Vec::new();
    for (at, ident) in idents(stripped) {
        if ident.starts_with("WANTS_") && !declared.iter().any(|(_, n)| n == ident) {
            declared.push((at, ident.to_owned()));
        }
    }
    for (at, flag) in &declared {
        if !cfg.channels.iter().any(|c| &c.flag == flag) {
            findings.push(Finding {
                rule: "probe-gate",
                file: probe_path.to_owned(),
                line: line_of(stripped, *at),
                severity: Severity::Error,
                message: format!(
                    "probe channel `{flag}` is not registered as a [[channel]] in \
                     csmt-audit.toml — every channel must declare which emission \
                     methods it gates"
                ),
            });
        }
    }
    declared.into_iter().map(|(_, n)| n).collect()
}

// ---------------------------------------------------------------------
// Rule: float-accum
// ---------------------------------------------------------------------

/// Float-reduction triggers whose result depends on operand order.
const FLOAT_REDUCERS: [&str; 6] = [
    ".sum::<f64>()",
    ".sum::<f32>()",
    ".fold(0.0",
    ".fold(0f64",
    ".fold(0.0f64",
    ".fold(0f32",
];

/// Rule `float-accum` (heuristic, warning): a float `sum`/`fold` in the
/// same statement as an unordered-container iteration accumulates in an
/// unspecified order — `f64` addition is not associative, so the result
/// is not a function of the container's contents.
fn float_accum(path: &str, text: &str, findings: &mut Vec<Finding>) {
    let maps = map_idents(text);
    for trigger in FLOAT_REDUCERS {
        let mut search = 0;
        while let Some(rel) = text[search..].find(trigger) {
            let at = search + rel;
            search = at + trigger.len();
            let stmt = &text[stmt_start(text, at)..at];
            let map_iter_in_stmt = ITER_METHODS.iter().any(|m| {
                let needle = format!(".{m}(");
                stmt.match_indices(&needle).any(|(p, _)| {
                    ident_before(stmt, p).is_some_and(|r| maps.iter().any(|n| n == r))
                })
            });
            let unordered_collect = MAP_TYPES.iter().any(|ty| stmt.contains(ty));
            if map_iter_in_stmt || unordered_collect {
                findings.push(Finding {
                    rule: "float-accum",
                    file: path.to_owned(),
                    line: line_of(text, at),
                    severity: Severity::Warning,
                    message: format!(
                        "float reduction `{}` over an unordered container: f64 addition \
                         is order-sensitive, so collect into a Vec and sort (or keep an \
                         ordered container) before accumulating",
                        trigger.trim_start_matches('.')
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn cfg_with_channel() -> AuditConfig {
        AuditConfig::parse(
            "[[channel]]\nflag = \"WANTS_SCHED_EVENTS\"\nmethods = [\"migration\"]\n",
        )
        .expect("valid")
    }

    #[test]
    fn map_iter_fires_on_field_iteration() {
        let src = "struct S { barriers: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) { for k in &self.barriers { g(k); } } }";
        let f = audit_stripped("crates/core/src/x.rs", &strip(src), &AuditConfig::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "map-iter");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn map_iter_fires_on_method_iteration() {
        let src = "fn f(m: &mut FxHashMap<u64, u32>) { m.retain(|_, v| *v > 0); }";
        let f = audit_stripped("crates/mem/src/x.rs", &strip(src), &AuditConfig::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "map-iter");
    }

    #[test]
    fn map_iter_ignores_vec_receivers_and_btreemap() {
        let src = "struct S { wheel: BTreeMap<u64, u32>, v: Vec<u32> }\n\
                   impl S { fn f(&self) { for k in &self.wheel {} let _ = self.v.iter(); } }";
        let f = audit_stripped("crates/core/src/x.rs", &strip(src), &AuditConfig::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn map_iter_ignores_test_modules() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   #[cfg(test)]\nmod tests { fn t(s: &super::S) { for k in &s.m {} } }";
        let f = audit_stripped("crates/core/src/x.rs", &strip(src), &AuditConfig::default());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wall_clock_fires_on_instant_now_but_not_type_mention() {
        let src = "fn f() -> u64 { let t = std::time::Instant::now(); 0 }\n\
                   fn g(at: std::time::Instant) {}";
        let f = audit_stripped("crates/cpu/src/x.rs", &strip(src), &AuditConfig::default());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "wall-clock");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn concurrency_respects_seam_registry() {
        let src = "fn f() { let m = std::sync::Mutex::new(0); }";
        let cfg = AuditConfig::parse(
            "[[seam]]\npath = \"crates/core/src/par\"\njustification = \"parallel phase\"\n",
        )
        .expect("valid");
        let hit = audit_stripped("crates/core/src/other.rs", &strip(src), &cfg);
        assert_eq!(hit.len(), 1, "{hit:?}");
        assert_eq!(hit[0].rule, "concurrency");
        let exempt = audit_stripped("crates/core/src/par/worker.rs", &strip(src), &cfg);
        assert!(exempt.is_empty(), "{exempt:?}");
    }

    #[test]
    fn probe_gate_requires_wants_check_in_enclosing_fn() {
        let bad = "fn emit<P: Probe>(probe: &mut P) { probe.migration(e); }";
        let good = "fn emit<P: Probe>(probe: &mut P) {\n    \
                    if P::WANTS_SCHED_EVENTS { probe.migration(e); }\n}";
        let cfg = cfg_with_channel();
        let f = audit_stripped("crates/core/src/x.rs", &strip(bad), &cfg);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "probe-gate");
        assert!(audit_stripped("crates/core/src/x.rs", &strip(good), &cfg).is_empty());
    }

    #[test]
    fn float_accum_warns_on_map_values_sum() {
        let src = "fn f(m: &FxHashMap<u64, f64>) -> f64 { m.values().sum::<f64>() }";
        let f = audit_stripped(
            "crates/workloads/src/x.rs",
            &strip(src),
            &AuditConfig::default(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "float-accum");
        assert_eq!(f[0].severity, Severity::Warning);
    }

    #[test]
    fn float_accum_allows_slice_sum() {
        let src = "fn f(w: &[f64]) -> f64 { w.iter().sum::<f64>() }";
        let f = audit_stripped(
            "crates/workloads/src/x.rs",
            &strip(src),
            &AuditConfig::default(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn channel_registry_reports_unregistered_flags() {
        let trait_src = "pub trait Probe { const WANTS_NEW_THING: bool = false; }";
        let mut findings = Vec::new();
        let declared = check_channel_registry(
            "crates/trace/src/probe.rs",
            &strip(trait_src),
            &cfg_with_channel(),
            &mut findings,
        );
        assert_eq!(declared, ["WANTS_NEW_THING"]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("not registered"));
    }
}
