//! `csmt-audit` — run the determinism & hot-path static analysis over
//! the workspace.
//!
//! ```text
//! usage: csmt-audit [--root <path>] [--deny-warnings] [--list-rules]
//!
//!   --root <path>     workspace root (default: auto-detected)
//!   --deny-warnings   treat heuristic warnings as failures (tier-1/CI)
//!   --list-rules      print the rule catalog and exit
//! ```
//!
//! Exit codes follow the `CSMT_VERIFY` convention: 0 clean, 2 on any
//! violation or stale suppression (and on warnings under
//! `--deny-warnings`), 1 on usage or I/O errors.

use csmt_audit::{audit_root, default_root, Severity, RULE_IDS};
use std::path::PathBuf;

fn usage() -> &'static str {
    "usage: csmt-audit [--root <path>] [--deny-warnings] [--list-rules]\n\
     \n\
     Scans all first-party crates for determinism violations: hash-map\n\
     iteration in the sim core, wall-clock/entropy reads, unregistered\n\
     concurrency, ungated probe emissions, order-sensitive float\n\
     accumulation. Suppressions live in csmt-audit.toml and each needs a\n\
     written justification; unused entries fail the run.\n\
     \n\
     Exit: 0 clean; 2 violations/stale (or warnings with --deny-warnings);\n\
     1 usage/IO error.\n"
}

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut deny_warnings = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => {
                let Some(p) = args.next() else {
                    eprintln!("--root needs a path\n\n{}", usage());
                    std::process::exit(1);
                };
                root = Some(PathBuf::from(p));
            }
            "--deny-warnings" => deny_warnings = true,
            "--list-rules" => {
                for id in RULE_IDS {
                    println!("{id}");
                }
                return;
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}\n\n{}", usage());
                std::process::exit(1);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    let report = match audit_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("csmt-audit: {e}");
            std::process::exit(1);
        }
    };

    for f in &report.findings {
        let sev = match f.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        println!("{sev}: {f}");
    }
    for s in &report.stale {
        println!("stale: {s}");
    }
    println!("csmt-audit: {}", report.summary());

    if report.is_clean(deny_warnings) {
        println!("csmt-audit: clean");
    } else {
        std::process::exit(2);
    }
}
