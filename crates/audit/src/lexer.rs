//! A self-contained Rust "significance lexer" for the audit rules.
//!
//! The vendor tree deliberately carries no `syn`, so the audit does not
//! parse Rust — it *strips*: comments (line and nested block), string
//! literals (plain, raw with any number of `#`, byte and byte-raw),
//! character literals (while leaving lifetimes alone), `#[cfg(test)]`
//! items (test-only code cannot leak into published digests), and all
//! remaining attributes. Every stripped byte is replaced by a space so
//! offsets and line numbers in the output text match the original file
//! exactly — a rule that finds a token at byte `i` reports the line the
//! token sits on in the real source.
//!
//! On top of the stripped text, [`fn_spans`] builds the one structural
//! index the rules need: the byte span of every `fn` item (signature
//! start, body braces), so a finding can be attributed to its enclosing
//! function (innermost wins).

/// Strip comments, string/char literals, `#[cfg(test)]` items and
/// attributes from `src`, preserving byte offsets (stripped bytes become
/// spaces; newlines survive).
#[must_use]
pub fn strip(src: &str) -> String {
    let pass1 = strip_comments_and_literals(src);
    let pass2 = strip_cfg_test_items(&pass1);
    strip_attributes(&pass2)
}

/// 1-indexed line number of byte offset `at` in `text`.
#[must_use]
pub fn line_of(text: &str, at: usize) -> usize {
    text.as_bytes()[..at.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Replace `buf[start..end]` with spaces, leaving newlines in place.
fn blank(buf: &mut [u8], start: usize, end: usize) {
    let end = end.min(buf.len());
    for b in &mut buf[start..end] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// True if `b` can be part of an identifier.
fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Pass 1: blank comments, strings, and char literals.
#[allow(clippy::too_many_lines)]
fn strip_comments_and_literals(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let end = src[i..].find('\n').map_or(bytes.len(), |n| i + n);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comments, as in real Rust.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i, j);
                i = j;
            }
            b'"' => {
                let end = skip_string(bytes, i);
                blank(&mut out, i, end);
                i = end;
            }
            b'r' | b'b' if !prev_is_ident(bytes, i) => {
                // Possible raw/byte string prefix: r", r#", br", b", b'…'.
                if let Some(end) = skip_prefixed_literal(bytes, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                if let Some(end) = skip_char_literal(bytes, i) {
                    blank(&mut out, i, end);
                    i = end;
                } else {
                    // A lifetime: leave the tick and its identifier alone.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("blanking preserves UTF-8: only ASCII bytes are replaced")
}

/// Whether the byte before `i` continues an identifier (so `r`/`b` at `i`
/// is part of a name like `var`, not a literal prefix).
fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident(bytes[i - 1])
}

/// Byte offset one past the closing quote of the plain string starting
/// at `start` (which must hold `"`).
fn skip_string(bytes: &[u8], start: usize) -> usize {
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    bytes.len()
}

/// Recognize `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'` starting at
/// `start`; returns the end offset, or `None` if this is not a literal.
fn skip_prefixed_literal(bytes: &[u8], start: usize) -> Option<usize> {
    let mut j = start + 1;
    if bytes[start] == b'b' {
        if bytes.get(j) == Some(&b'\'') {
            return skip_char_literal(bytes, j);
        }
        if bytes.get(j) == Some(&b'r') {
            j += 1;
        } else if bytes.get(j) != Some(&b'"') && bytes.get(j) != Some(&b'#') {
            return None;
        }
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&b'"') {
        return None;
    }
    if hashes == 0 && bytes[start] != b'r' && bytes.get(start + 1) == Some(&b'"') {
        // b"…": plain escaping rules.
        return Some(skip_string(bytes, start + 1));
    }
    // Raw string: ends at `"` followed by `hashes` hash marks; no escapes.
    j += 1;
    while j < bytes.len() {
        if bytes[j] == b'"'
            && bytes[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&b| b == b'#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(bytes.len())
}

/// Recognize a char literal starting at `start` (which holds `'`);
/// returns its end, or `None` when the tick introduces a lifetime.
fn skip_char_literal(bytes: &[u8], start: usize) -> Option<usize> {
    let next = *bytes.get(start + 1)?;
    if next == b'\\' {
        // Escaped char: find the closing quote.
        let mut j = start + 2;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return Some(j + 1),
                _ => j += 1,
            }
        }
        return Some(bytes.len());
    }
    if is_ident(next) && bytes.get(start + 2) != Some(&b'\'') {
        return None; // 'a in a generic position: a lifetime.
    }
    // 'x' (any single char, possibly multi-byte UTF-8).
    let rest = &bytes[start + 1..];
    let close = rest.iter().position(|&b| b == b'\'')?;
    Some(start + 1 + close + 1)
}

/// Pass 2: blank every item annotated `#[cfg(test)]` (attribute chain
/// through the matching close brace, or through `;` for brace-less
/// items). Test-only code cannot perturb simulation determinism.
fn strip_cfg_test_items(text: &str) -> String {
    let mut out = text.as_bytes().to_vec();
    let mut search = 0;
    while let Some(rel) = text[search..].find("#[cfg(test)]") {
        let at = search + rel;
        let mut j = at;
        // Swallow the whole attribute chain after the cfg marker.
        loop {
            j = skip_ws(text, j);
            if text[j..].starts_with("#[") {
                j = match_bracket(text, j + 1, b'[', b']');
            } else {
                break;
            }
        }
        // Item body: to the matching `}` (or `;` when no block opens).
        let bytes = text.as_bytes();
        let mut k = j;
        let end = loop {
            if k >= bytes.len() {
                break bytes.len();
            }
            match bytes[k] {
                b'{' => break match_bracket(text, k, b'{', b'}'),
                b';' => break k + 1,
                _ => k += 1,
            }
        };
        blank(&mut out, at, end);
        search = end;
    }
    String::from_utf8(out).expect("blanking preserves UTF-8: only ASCII bytes are replaced")
}

/// Pass 3: blank every remaining `#[…]` / `#![…]` attribute.
fn strip_attributes(text: &str) -> String {
    let mut out = text.as_bytes().to_vec();
    let mut search = 0;
    while let Some(rel) = text[search..].find('#') {
        let at = search + rel;
        let bytes = text.as_bytes();
        let open = match bytes.get(at + 1) {
            Some(b'[') => at + 1,
            Some(b'!') if bytes.get(at + 2) == Some(&b'[') => at + 2,
            _ => {
                search = at + 1;
                continue;
            }
        };
        let end = match_bracket(text, open, b'[', b']');
        blank(&mut out, at, end);
        search = end;
    }
    String::from_utf8(out).expect("blanking preserves UTF-8: only ASCII bytes are replaced")
}

/// Offset one past the bracket matching `text[open]` (depth-counted).
fn match_bracket(text: &str, open: usize, ob: u8, cb: u8) -> usize {
    let bytes = text.as_bytes();
    debug_assert_eq!(bytes[open], ob);
    let mut depth = 0usize;
    let mut j = open;
    while j < bytes.len() {
        if bytes[j] == ob {
            depth += 1;
        } else if bytes[j] == cb {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    bytes.len()
}

/// First non-whitespace offset at or after `from`.
fn skip_ws(text: &str, from: usize) -> usize {
    text.as_bytes()[from..]
        .iter()
        .position(|b| !b.is_ascii_whitespace())
        .map_or(text.len(), |n| from + n)
}

/// Byte span of one `fn` item in stripped text.
#[derive(Debug, Clone, Copy)]
pub struct FnSpan {
    /// Offset of the `fn` keyword.
    pub sig_start: usize,
    /// Offset of the body's opening `{`.
    pub body_start: usize,
    /// Offset one past the body's closing `}`.
    pub body_end: usize,
}

/// All `fn` item spans in `stripped` (which must already be
/// comment/string/attribute-free). Functions without bodies (trait
/// method declarations) are skipped.
#[must_use]
pub fn fn_spans(stripped: &str) -> Vec<FnSpan> {
    let bytes = stripped.as_bytes();
    let mut spans = Vec::new();
    let mut search = 0;
    while let Some(rel) = stripped[search..].find("fn") {
        let at = search + rel;
        search = at + 2;
        // Word-boundary check: `fn` must be its own token.
        if prev_is_ident(bytes, at) || bytes.get(at + 2).copied().is_some_and(is_ident) {
            continue;
        }
        // Body = first `{` after the signature at paren depth 0; a `;`
        // first means a body-less declaration.
        let mut paren = 0i32;
        let mut j = at + 2;
        let body_start = loop {
            match bytes.get(j) {
                None => break None,
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'{') if paren == 0 => break Some(j),
                Some(b';') if paren == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(body_start) = body_start else {
            continue;
        };
        let body_end = match_bracket(stripped, body_start, b'{', b'}');
        spans.push(FnSpan {
            sig_start: at,
            body_start,
            body_end,
        });
    }
    spans
}

/// The innermost function span containing byte offset `at`, if any.
#[must_use]
pub fn enclosing_fn(spans: &[FnSpan], at: usize) -> Option<FnSpan> {
    spans
        .iter()
        .filter(|s| s.sig_start <= at && at < s.body_end)
        .min_by_key(|s| s.body_end - s.sig_start)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip("let a = 1; // Instant::now\n/* SystemTime */ let b = 2;");
        assert!(!s.contains("Instant"));
        assert!(!s.contains("SystemTime"));
        assert!(s.contains("let a = 1;"));
        assert!(s.contains("let b = 2;"));
    }

    #[test]
    fn strips_nested_block_comments() {
        let s = strip("a /* outer /* inner */ still */ b");
        assert!(s.contains('a') && s.contains('b'));
        assert!(!s.contains("still"));
    }

    #[test]
    fn strips_strings_and_raw_strings_preserving_offsets() {
        let src = "x(\"Instant::now\"); y(r#\"thread_rng\"#);";
        let s = strip(src);
        assert_eq!(s.len(), src.len());
        assert!(!s.contains("Instant"));
        assert!(!s.contains("thread_rng"));
    }

    #[test]
    fn char_literals_stripped_lifetimes_kept() {
        let s = strip("let c = 'x'; fn f<'a>(v: &'a str) { let n = '\\n'; }");
        assert!(!s.contains('x'));
        assert!(s.contains("'a"));
        assert!(!s.contains("\\n"));
    }

    #[test]
    fn cfg_test_modules_are_blanked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { m.iter(); }\n}\n";
        let s = strip(src);
        assert!(s.contains("fn live"));
        assert!(!s.contains("iter"));
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn attributes_are_blanked() {
        let s = strip("#[derive(Debug)]\nstruct S;\n#[inline]\nfn f() {}");
        assert!(!s.contains("derive"));
        assert!(!s.contains("inline"));
        assert!(s.contains("struct S;"));
    }

    #[test]
    fn fn_spans_find_bodies_and_innermost() {
        let src = "fn outer() { fn inner() { a(); } b(); }";
        let s = strip(src);
        let spans = fn_spans(&s);
        assert_eq!(spans.len(), 2);
        let at = src.find("a()").expect("present");
        let inner = enclosing_fn(&spans, at).expect("inside inner");
        assert_eq!(inner.sig_start, src.find("fn inner").expect("present"));
    }

    #[test]
    fn line_of_counts_from_one() {
        let s = "a\nb\nc";
        assert_eq!(line_of(s, 0), 1);
        assert_eq!(line_of(s, 2), 2);
        assert_eq!(line_of(s, 4), 3);
    }
}
