//! # csmt-audit — workspace-wide determinism & hot-path static analysis
//!
//! Every number this reproduction publishes rests on bit-for-bit
//! determinism: the golden Table-2 digests, the fastforward and
//! migration differential proptests, and the Fig 9 comparisons are all
//! FNV digests over exact event order. This crate makes the project's
//! determinism contracts *machine-checked* instead of conventions in doc
//! comments, so a future PR cannot iterate a hash map, read the wall
//! clock, or spawn a thread in a sim crate without the tier-1 gate
//! noticing at lint time — not as a flaky digest weeks later.
//!
//! The analyzer is deliberately `syn`-free (the vendor tree carries no
//! parser): a [`lexer`] strips comments, strings, attributes and
//! `#[cfg(test)]` items while preserving byte offsets, and [`rules`]
//! pattern-match project-specific properties clippy cannot express on
//! the stripped text. See the module docs of [`rules`] for the rule
//! catalog and [`config`] for the `csmt-audit.toml` allowlist / seam /
//! channel registries. DESIGN.md §14 documents the workflow.
//!
//! Run it as `cargo run -p csmt-audit --bin csmt-audit -- --deny-warnings`
//! (what `scripts/tier1.sh` and the CI `audit` job do), or call
//! [`audit_workspace`] programmatically (what `csmt-lint` does for its
//! summary line).

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{Allow, AuditConfig, Channel, ConfigError, Seam};
pub use rules::{Finding, Severity, RULE_IDS};

use std::path::{Path, PathBuf};

/// Workspace-relative location of the probe trait definition, the file
/// the channel registry is checked against.
pub const PROBE_TRAIT_PATH: &str = "crates/trace/src/probe.rs";

/// Name of the configuration file at the workspace root.
pub const CONFIG_FILE: &str = "csmt-audit.toml";

/// Outcome of a full workspace audit.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings that survived the allowlist, sorted by (file, line).
    pub findings: Vec<Finding>,
    /// Findings suppressed by `[[allow]]` entries.
    pub suppressed: Vec<Finding>,
    /// Stale registry entries: `[[allow]]`s that suppressed nothing,
    /// `[[seam]]`s covering no concurrency use, `[[channel]]`s naming a
    /// flag the probe trait no longer declares. Each is a description.
    pub stale: Vec<String>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Findings of error severity.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Findings of warning severity.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// Whether the audit passes: no errors, no stale entries, and — when
    /// `deny_warnings` — no warnings either.
    #[must_use]
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.errors() == 0 && self.stale.is_empty() && (!deny_warnings || self.warnings() == 0)
    }

    /// One-line summary suitable for embedding in other tools' output.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "audit: {} file(s), {} error(s), {} warning(s), {} suppression(s), {} stale",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed.len(),
            self.stale.len()
        )
    }
}

/// Audit one file's source text (rule scoping by `rel_path`, no
/// allowlist applied). This is the entry point the fixture tests drive.
#[must_use]
pub fn audit_source(rel_path: &str, source: &str, cfg: &AuditConfig) -> Vec<Finding> {
    rules::audit_stripped(rel_path, &lexer::strip(source), cfg)
}

/// Enumerate the first-party Rust sources under `root`: `src/` of the
/// root package and of every crate under `crates/` — not `vendor/`
/// (third-party stand-ins), not `tests/`/`benches/`/`examples/`
/// (host-side code that never feeds published digests), and not the
/// audit's own `fixtures/` (each fixture intentionally violates a rule).
/// Sorted for deterministic reports.
///
/// # Errors
/// Propagates I/O errors from directory traversal.
pub fn first_party_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect_rs(&root_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = std::fs::read_dir(&crates)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for krate in entries {
            let src = krate.join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full audit over the workspace at `root` with configuration
/// `cfg`: scan every first-party source, apply the allowlist (tracking
/// which entries fire), cross-check the probe-channel registry, and
/// detect stale suppressions.
///
/// # Errors
/// Propagates I/O errors from reading source files.
pub fn audit_workspace(root: &Path, cfg: &AuditConfig) -> std::io::Result<Report> {
    let mut report = Report::default();
    let mut allow_hits = vec![0usize; cfg.allows.len()];
    let mut seam_hits = vec![0usize; cfg.seams.len()];

    for path in first_party_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = std::fs::read_to_string(&path)?;
        let stripped = lexer::strip(&source);

        // Seam-hit tracking: a registered seam is stale unless the file
        // it covers actually uses a concurrency primitive.
        for (i, seam) in cfg.seams.iter().enumerate() {
            if rel.starts_with(&seam.path) {
                seam_hits[i] += rules::concurrency_findings(&rel, &stripped).len();
            }
        }

        let mut findings = rules::audit_stripped(&rel, &stripped, cfg);
        if rel == PROBE_TRAIT_PATH {
            let declared = rules::check_channel_registry(&rel, &stripped, cfg, &mut findings);
            for ch in &cfg.channels {
                if !declared.contains(&ch.flag) {
                    report.stale.push(format!(
                        "[[channel]] `{}`: no such WANTS_ const in {PROBE_TRAIT_PATH}",
                        ch.flag
                    ));
                }
            }
        }

        for f in findings {
            let allowed = cfg
                .allows
                .iter()
                .position(|a| a.rule == f.rule && a.path == f.file);
            if let Some(i) = allowed {
                allow_hits[i] += 1;
                report.suppressed.push(f);
            } else {
                report.findings.push(f);
            }
        }
        report.files_scanned += 1;
    }

    for (i, a) in cfg.allows.iter().enumerate() {
        if allow_hits[i] == 0 {
            report.stale.push(format!(
                "[[allow]] {}:{} suppresses nothing — remove it (justification was: {})",
                a.rule, a.path, a.justification
            ));
        }
    }
    for (i, s) in cfg.seams.iter().enumerate() {
        if seam_hits[i] == 0 {
            report.stale.push(format!(
                "[[seam]] {} covers no concurrency use — remove it (justification was: {})",
                s.path, s.justification
            ));
        }
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Load `csmt-audit.toml` from `root` and run [`audit_workspace`].
///
/// # Errors
/// Fails when the config file is missing/malformed or a source read
/// fails; the message is ready for user display.
pub fn audit_root(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join(CONFIG_FILE);
    let text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = AuditConfig::parse(&text).map_err(|e| e.to_string())?;
    audit_workspace(root, &cfg).map_err(|e| format!("scan failed: {e}"))
}

/// The workspace root, assuming this crate sits at `<root>/crates/audit`
/// (how the repo lays out; the binary's `--root` flag overrides it).
#[must_use]
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/audit sits two levels below the workspace root")
        .to_path_buf()
}
