//! Fixture-driven self-test of the audit rules, plus the clean-tree
//! check over the real workspace.
//!
//! Each file under `crates/audit/fixtures/` seeds exactly one violation
//! of one rule; the tests assert the audit reports that rule — with the
//! exact rule id, file, and line — and nothing else. The fixtures are
//! scanned under *virtual* workspace paths chosen so only the rule under
//! test is in scope. All tests run against the real `csmt-audit.toml`,
//! so the probe-channel registry exercised here is the production one.

use csmt_audit::{audit_root, audit_source, AuditConfig, Severity};

/// The production configuration at the workspace root.
fn real_cfg() -> AuditConfig {
    AuditConfig::parse(include_str!("../../../csmt-audit.toml")).expect("workspace config parses")
}

/// Audit `source` under the virtual path `rel`, asserting exactly one
/// finding and returning it.
fn single_finding(rel: &str, source: &str) -> csmt_audit::Finding {
    let mut findings = audit_source(rel, source, &real_cfg());
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one finding in {rel}, got {findings:?}"
    );
    findings.pop().expect("just checked")
}

#[test]
fn fixture_map_iter_fires_with_exact_span() {
    let f = single_finding(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/map_iter.rs"),
    );
    assert_eq!(f.rule, "map-iter");
    assert_eq!(f.file, "crates/core/src/fixture.rs");
    assert_eq!(f.line, 10);
    assert_eq!(f.severity, Severity::Error);
    assert_eq!(
        f.to_string().split(" — ").next().expect("has location"),
        "map-iter:crates/core/src/fixture.rs:10"
    );
}

#[test]
fn fixture_wall_clock_fires_with_exact_span() {
    let f = single_finding(
        "crates/cpu/src/fixture.rs",
        include_str!("../fixtures/wall_clock.rs"),
    );
    assert_eq!(f.rule, "wall-clock");
    assert_eq!(f.file, "crates/cpu/src/fixture.rs");
    assert_eq!(f.line, 8);
    assert_eq!(f.severity, Severity::Error);
}

#[test]
fn fixture_concurrency_fires_with_exact_span() {
    let f = single_finding(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/concurrency.rs"),
    );
    assert_eq!(f.rule, "concurrency");
    assert_eq!(f.file, "crates/core/src/fixture.rs");
    assert_eq!(f.line, 9);
    assert_eq!(f.severity, Severity::Error);
}

#[test]
fn fixture_probe_gate_fires_with_exact_span() {
    let f = single_finding(
        "crates/core/src/fixture.rs",
        include_str!("../fixtures/probe_gate.rs"),
    );
    assert_eq!(f.rule, "probe-gate");
    assert_eq!(f.file, "crates/core/src/fixture.rs");
    assert_eq!(f.line, 9);
    assert_eq!(f.severity, Severity::Error);
    assert!(
        f.message.contains("WANTS_SCHED_EVENTS"),
        "message names the channel: {}",
        f.message
    );
}

#[test]
fn fixture_float_accum_warns_with_exact_span() {
    let f = single_finding(
        "crates/workloads/src/fixture.rs",
        include_str!("../fixtures/float_accum.rs"),
    );
    assert_eq!(f.rule, "float-accum");
    assert_eq!(f.file, "crates/workloads/src/fixture.rs");
    assert_eq!(f.line, 10);
    assert_eq!(f.severity, Severity::Warning);
}

#[test]
fn fixtures_stay_quiet_out_of_scope() {
    // The same seeded sources under a path no rule covers must produce
    // nothing — rule scoping, not luck, keeps host-side code out.
    for src in [
        include_str!("../fixtures/map_iter.rs"),
        include_str!("../fixtures/wall_clock.rs"),
        include_str!("../fixtures/concurrency.rs"),
        include_str!("../fixtures/probe_gate.rs"),
        include_str!("../fixtures/float_accum.rs"),
    ] {
        let f = audit_source("crates/bench/src/fixture.rs", src, &real_cfg());
        assert!(f.is_empty(), "bench-scoped scan should be clean: {f:?}");
    }
}

#[test]
fn real_workspace_is_clean_with_no_stale_entries() {
    let root = csmt_audit::default_root();
    let report = audit_root(&root).expect("workspace audit runs");
    assert!(
        report.findings.is_empty(),
        "workspace must audit clean (fix the code or add a justified \
         [[allow]]): {:?}",
        report.findings
    );
    assert!(
        report.stale.is_empty(),
        "registry entries that match nothing must be removed: {:?}",
        report.stale
    );
    assert!(report.files_scanned > 50, "scan actually covered the tree");
    assert!(report.is_clean(true));
}
