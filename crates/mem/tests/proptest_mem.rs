//! Property-based tests of the memory system: cache behaviour against a
//! naive reference model, directory protocol invariants against a
//! state-machine spec, and whole-hierarchy conservation laws.

use csmt_mem::cache::{Cache, LookupResult};
use csmt_mem::directory::{DirState, Directory, Service};
use csmt_mem::{AccessKind, MemConfig, MemorySystem};
use proptest::prelude::*;
use std::collections::HashMap;

// ---------------------------------------------------------------------
// Cache vs reference model
// ---------------------------------------------------------------------

/// Naive reference: per-set LRU list of (line, dirty).
struct RefCache {
    sets: HashMap<usize, Vec<(u64, bool)>>,
    assoc: usize,
}

impl RefCache {
    fn access(&mut self, set: usize, line: u64, write: bool) -> (bool, Option<(u64, bool)>) {
        let ways = self.sets.entry(set).or_default();
        if let Some(pos) = ways.iter().position(|&(l, _)| l == line) {
            let (l, d) = ways.remove(pos);
            ways.push((l, d || write)); // move to MRU
            return (true, None);
        }
        let victim = if ways.len() >= self.assoc {
            Some(ways.remove(0))
        } else {
            None
        };
        ways.push((line, write));
        (false, victim)
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The cache's hit/miss/victim behaviour matches an independent LRU
    /// reference model, for arbitrary access sequences.
    #[test]
    fn cache_matches_reference_lru(
        accesses in prop::collection::vec((0u64..256, any::<bool>()), 1..400),
        assoc in 1usize..5,
    ) {
        let sets = 16usize;
        let mut cache = Cache::new(sets, assoc, 7);
        let mut reference = RefCache { sets: HashMap::new(), assoc };
        for (line, write) in accesses {
            let set = cache.set_of(line);
            let (ref_hit, ref_victim) = reference.access(set, line, write);
            match cache.access(line, write) {
                LookupResult::Hit => prop_assert!(ref_hit, "cache hit, reference missed: line {line}"),
                LookupResult::Miss { evicted } => {
                    prop_assert!(!ref_hit, "cache missed, reference hit: line {line}");
                    match (evicted, ref_victim) {
                        (None, None) => {}
                        (Some(v), Some((rl, rd))) => {
                            prop_assert_eq!(v.line, rl);
                            prop_assert_eq!(v.dirty, rd);
                        }
                        (a, b) => prop_assert!(false, "victim mismatch: {a:?} vs {b:?}"),
                    }
                }
            }
        }
    }

    /// probe/invalidate/clean agree with access outcomes.
    #[test]
    fn cache_probe_consistency(
        accesses in prop::collection::vec((0u64..128, any::<bool>()), 1..200),
    ) {
        let mut cache = Cache::new(8, 2, 7);
        for (line, write) in accesses {
            cache.access(line, write);
            prop_assert!(cache.probe(line), "just-accessed line must be present");
            let dirty = cache.probe_dirty(line);
            prop_assert!(dirty.is_some());
            if write {
                prop_assert_eq!(dirty, Some(true));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Directory protocol vs state-machine spec
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
enum RefDir {
    Uncached,
    Shared(u32),
    Exclusive(usize),
    Modified(usize),
}

fn ref_read(state: RefDir, node: usize) -> RefDir {
    let bit = 1u32 << node;
    match state {
        RefDir::Uncached => RefDir::Exclusive(node),
        RefDir::Shared(m) => RefDir::Shared(m | bit),
        RefDir::Exclusive(o) if o == node => RefDir::Exclusive(o),
        RefDir::Exclusive(o) => RefDir::Shared(bit | (1 << o)),
        RefDir::Modified(o) if o == node => RefDir::Exclusive(node),
        RefDir::Modified(o) => RefDir::Shared(bit | (1 << o)),
    }
}

fn ref_write(state: RefDir, node: usize) -> RefDir {
    let _ = state;
    RefDir::Modified(node)
}

fn states_match(a: DirState, b: RefDir) -> bool {
    match (a, b) {
        (DirState::Uncached, RefDir::Uncached) => true,
        (DirState::Shared(x), RefDir::Shared(y)) => x == y,
        (DirState::Exclusive(x), RefDir::Exclusive(y)) => x as usize == y,
        (DirState::Modified(x), RefDir::Modified(y)) => x as usize == y,
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The directory follows the MESI state-machine spec for any sequence
    /// of reads/writes from any nodes, and each outcome is consistent with
    /// the pre-state (c2c only from Modified; invalidations only when other
    /// copies existed).
    #[test]
    fn directory_follows_mesi_spec(
        ops in prop::collection::vec((0usize..4, any::<bool>()), 1..200),
    ) {
        let mut dir = Directory::new(4, 64);
        let mut reference = RefDir::Uncached;
        let line = 5u64;
        for (node, is_write) in ops {
            let pre = reference;
            let out = if is_write { dir.write(line, node) } else { dir.read(line, node) };
            reference = if is_write { ref_write(pre, node) } else { ref_read(pre, node) };
            prop_assert!(states_match(dir.inspect(line), reference),
                "state diverged: {:?} vs {reference:?} after node {node} {}",
                dir.inspect(line), if is_write { "write" } else { "read" });
            // Cache-to-cache service only when the line was Modified elsewhere.
            if let Service::RemoteL2 { owner } = out.service {
                prop_assert!(matches!(pre, RefDir::Modified(o) if o == owner && o != node));
            }
            // Invalidations only if other nodes really held copies.
            if out.invalidations > 0 {
                prop_assert!(is_write);
                let holders = match pre {
                    RefDir::Shared(m) => (m & !(1 << node)).count_ones(),
                    RefDir::Exclusive(o) | RefDir::Modified(o) => u32::from(o != node),
                    RefDir::Uncached => 0,
                };
                prop_assert_eq!(out.invalidations, holders);
            }
            // Silent upgrades only from own Exclusive/Modified.
            if out.service == Service::None {
                prop_assert!(matches!(pre, RefDir::Exclusive(o) | RefDir::Modified(o) if o == node));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Whole-hierarchy conservation laws
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Every access is serviced by exactly one level: the per-level
    /// counters partition the access count, completion times never precede
    /// the request, and latency is at least the level's Table 3 round trip.
    #[test]
    fn hierarchy_conservation(
        accesses in prop::collection::vec(
            (0usize..4, 0u64..(1 << 22), any::<bool>(), 1u64..50),
            1..300
        ),
    ) {
        let mut m = MemorySystem::new(MemConfig::table3(), 4, 9);
        let mut now = 0u64;
        let mut count = 0u64;
        for (node, addr, is_write, dt) in accesses {
            now += dt;
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let out = m.access(node, addr & !7, kind, now);
            count += 1;
            prop_assert!(out.complete_at > now, "completion {} <= request {}", out.complete_at, now);
            let min = match out.serviced_by {
                csmt_mem::ServicedBy::L1 => 1,
                csmt_mem::ServicedBy::L2 => 1, // merges may complete almost immediately
                csmt_mem::ServicedBy::LocalMem => 40,
                csmt_mem::ServicedBy::RemoteMem => 60,
                csmt_mem::ServicedBy::RemoteL2 => 75,
            };
            prop_assert!(out.complete_at - now >= min || matches!(out.serviced_by, csmt_mem::ServicedBy::L2),
                "{:?} completed in {} cycles", out.serviced_by, out.complete_at - now);
        }
        let s = m.stats();
        prop_assert_eq!(s.accesses, count);
        // Partition law: every access serviced at exactly one level.
        prop_assert_eq!(
            s.l1_hits + s.l2_hits + s.local_mem + s.remote_mem + s.remote_l2,
            count,
            "levels must partition accesses: {:?}", s
        );
        // Merges are a subset of L2-serviced accesses.
        prop_assert!(s.mshr_merges <= s.l2_hits);
    }

    /// Determinism of the full hierarchy.
    #[test]
    fn hierarchy_deterministic(
        accesses in prop::collection::vec((0usize..2, 0u64..(1 << 18), any::<bool>()), 1..200),
        seed in 0u64..100,
    ) {
        let run = || {
            let mut m = MemorySystem::new(MemConfig::table3(), 2, seed);
            let mut now = 0;
            let mut sum = 0u64;
            for (node, addr, w) in &accesses {
                now += 3;
                let kind = if *w { AccessKind::Write } else { AccessKind::Read };
                sum = sum.wrapping_add(m.access(*node, *addr, kind, now).complete_at);
            }
            (sum, m.stats())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b);
    }
}
