//! DASH-like full-map directory cache coherence (paper Figure 3, ref [8]).
//!
//! The high-end machine is "a scalable shared-memory multiprocessor similar
//! to DASH": each node holds a slice of global memory plus the directory for
//! that slice. We implement a full-map **MESI** directory at cache-line
//! granularity (DASH itself granted exclusive-clean copies; without the E
//! state every private read-then-write would pay a spurious upgrade trip).
//! Pages are interleaved across nodes (home = `page mod nodes`), so the
//! directory entry for a line lives with its memory.
//!
//! The directory decides *who services a miss*:
//!
//! * line uncached / shared / exclusive-clean ⇒ memory at the home node
//!   (local 40 / remote 60 cycles, Table 3);
//! * line modified in another node's L2 ⇒ cache-to-cache transfer
//!   (remote L2, 75 cycles);
//! * a write touching a line shared by other nodes invalidates them
//!   (penalty charged to the writer, see `MemConfig::invalidation_penalty`).

use csmt_isa::FxHashMap;

/// Sharer bitmask; the paper's machines have at most 4 nodes, we allow 32.
pub type NodeMask = u32;

/// Per-line directory state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirState {
    /// No cached copies.
    Uncached,
    /// Clean copies at the nodes in the mask.
    Shared(NodeMask),
    /// Clean copy at exactly one node (may be silently upgraded to Modified).
    Exclusive(u8),
    /// Dirty copy owned by one node.
    Modified(u8),
}

/// Who must service the access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Service {
    /// Home memory, home node == requester.
    LocalMem,
    /// Home memory at a remote node.
    RemoteMem,
    /// Dirty line in another node's L2: cache-to-cache transfer. The owner
    /// field tells the hierarchy whose L2 to downgrade/invalidate.
    RemoteL2 {
        /// Node whose L2 holds the dirty line.
        owner: usize,
    },
    /// No data movement needed (silent E→M upgrade by the owner).
    None,
}

/// Result of a directory transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirOutcome {
    /// Which resource supplies the data (or `None` for silent upgrades).
    pub service: Service,
    /// Number of *remote* copies that had to be invalidated (writes only).
    pub invalidations: u32,
    /// Bitmask of nodes whose cached copies must be dropped by the caller.
    pub invalidated_mask: NodeMask,
    /// Previous owner whose L2 must be downgraded (reads) or invalidated
    /// (writes) by the hierarchy.
    pub prev_owner: Option<usize>,
}

impl DirOutcome {
    fn mem(service: Service) -> Self {
        DirOutcome {
            service,
            invalidations: 0,
            invalidated_mask: 0,
            prev_owner: None,
        }
    }
}

/// Full-map directory for all lines homed across `nodes` nodes.
#[derive(Debug, Clone)]
pub struct Directory {
    /// Per-line states, fixed-seed Fx-hashed: looked up on every miss and
    /// every multi-node write, never iterated (so hashing determinism is
    /// for speed and reproducibility hygiene, not correctness).
    lines: FxHashMap<u64, DirState>,
    nodes: usize,
    /// Lines per page, for computing homes (pages interleave round-robin).
    lines_per_page: u64,
    remote_l2_transfers: u64,
    invalidations_sent: u64,
    transactions: u64,
}

impl Directory {
    /// Directory for `nodes` nodes with `lines_per_page` lines per page.
    pub fn new(nodes: usize, lines_per_page: u64) -> Self {
        assert!((1..=32).contains(&nodes));
        assert!(lines_per_page >= 1);
        let mut lines = FxHashMap::default();
        // Directory entries accrete one per touched line; start with room
        // for a realistic working set so early misses don't pay rehashes.
        lines.reserve(1 << 12);
        Self {
            lines,
            nodes,
            lines_per_page,
            remote_l2_transfers: 0,
            invalidations_sent: 0,
            transactions: 0,
        }
    }

    /// Home node of a line: pages are interleaved round-robin across nodes.
    #[inline]
    pub fn home_of(&self, line: u64) -> usize {
        ((line / self.lines_per_page) % self.nodes as u64) as usize
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    fn state(&self, line: u64) -> DirState {
        *self.lines.get(&line).unwrap_or(&DirState::Uncached)
    }

    fn mem_service(&self, line: u64, node: usize) -> Service {
        if self.home_of(line) == node {
            Service::LocalMem
        } else {
            Service::RemoteMem
        }
    }

    /// A read miss from `node` for `line`.
    pub fn read(&mut self, line: u64, node: usize) -> DirOutcome {
        debug_assert!(node < self.nodes);
        self.transactions += 1;
        let bit = 1u32 << node;
        match self.state(line) {
            DirState::Uncached => {
                self.lines.insert(line, DirState::Exclusive(node as u8));
                DirOutcome::mem(self.mem_service(line, node))
            }
            DirState::Shared(m) => {
                self.lines.insert(line, DirState::Shared(m | bit));
                DirOutcome::mem(self.mem_service(line, node))
            }
            DirState::Exclusive(owner) => {
                if owner as usize == node {
                    // Silent eviction followed by a refetch: still exclusive.
                    return DirOutcome::mem(self.mem_service(line, node));
                }
                // Clean copy elsewhere: home memory supplies; both now share.
                self.lines
                    .insert(line, DirState::Shared(bit | (1u32 << owner)));
                DirOutcome::mem(self.mem_service(line, node))
            }
            DirState::Modified(owner) => {
                if owner as usize == node {
                    // Silent-eviction refetch of a dirty line the directory
                    // still attributes to us; no writeback is modelled, fall
                    // back to memory and downgrade.
                    self.lines.insert(line, DirState::Exclusive(node as u8));
                    return DirOutcome::mem(self.mem_service(line, node));
                }
                // Dirty elsewhere: cache-to-cache transfer; owner keeps a
                // clean shared copy.
                self.remote_l2_transfers += 1;
                self.lines
                    .insert(line, DirState::Shared(bit | (1u32 << owner)));
                DirOutcome {
                    service: Service::RemoteL2 {
                        owner: owner as usize,
                    },
                    invalidations: 0,
                    invalidated_mask: 0,
                    prev_owner: Some(owner as usize),
                }
            }
        }
    }

    /// A write from `node` for `line` — used both for write misses and for
    /// upgrades of a locally cached clean copy.
    pub fn write(&mut self, line: u64, node: usize) -> DirOutcome {
        debug_assert!(node < self.nodes);
        self.transactions += 1;
        let bit = 1u32 << node;
        match self.state(line) {
            DirState::Uncached => {
                self.lines.insert(line, DirState::Modified(node as u8));
                DirOutcome::mem(self.mem_service(line, node))
            }
            DirState::Shared(m) => {
                let remote_sharers = (m & !bit).count_ones();
                self.invalidations_sent += remote_sharers as u64;
                self.lines.insert(line, DirState::Modified(node as u8));
                // If we already held a shared copy this is an upgrade: the
                // directory transaction still happens (home round trip) but
                // no data moves. We charge the memory service either way —
                // the home must be visited.
                DirOutcome {
                    service: self.mem_service(line, node),
                    invalidations: remote_sharers,
                    invalidated_mask: m & !bit,
                    prev_owner: None,
                }
            }
            DirState::Exclusive(owner) => {
                if owner as usize == node {
                    // Silent E→M upgrade: free, no transaction on the wire.
                    self.transactions -= 1;
                    self.lines.insert(line, DirState::Modified(node as u8));
                    return DirOutcome {
                        service: Service::None,
                        invalidations: 0,
                        invalidated_mask: 0,
                        prev_owner: None,
                    };
                }
                // Clean copy elsewhere: invalidate it, memory supplies.
                self.invalidations_sent += 1;
                self.lines.insert(line, DirState::Modified(node as u8));
                DirOutcome {
                    service: self.mem_service(line, node),
                    invalidations: 1,
                    invalidated_mask: 1u32 << owner,
                    prev_owner: Some(owner as usize),
                }
            }
            DirState::Modified(owner) => {
                if owner as usize == node {
                    // Already ours and dirty (directory lost track of a
                    // silent eviction): free.
                    self.transactions -= 1;
                    return DirOutcome {
                        service: Service::None,
                        invalidations: 0,
                        invalidated_mask: 0,
                        prev_owner: None,
                    };
                }
                self.remote_l2_transfers += 1;
                self.invalidations_sent += 1;
                self.lines.insert(line, DirState::Modified(node as u8));
                DirOutcome {
                    service: Service::RemoteL2 {
                        owner: owner as usize,
                    },
                    invalidations: 1,
                    invalidated_mask: 1u32 << owner,
                    prev_owner: Some(owner as usize),
                }
            }
        }
    }

    /// Current state (for tests and the multichip example's inspection).
    pub fn inspect(&self, line: u64) -> DirState {
        self.state(line)
    }

    /// (transactions, remote-L2 transfers, invalidations sent).
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.transactions,
            self.remote_l2_transfers,
            self.invalidations_sent,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir4() -> Directory {
        // 64 lines per 4K page.
        Directory::new(4, 64)
    }

    #[test]
    fn homes_are_page_interleaved() {
        let d = dir4();
        assert_eq!(d.home_of(0), 0);
        assert_eq!(d.home_of(63), 0); // same page
        assert_eq!(d.home_of(64), 1);
        assert_eq!(d.home_of(128), 2);
        assert_eq!(d.home_of(192), 3);
        assert_eq!(d.home_of(256), 0); // wraps
    }

    #[test]
    fn cold_read_grants_exclusive_from_home_memory() {
        let mut d = dir4();
        let o = d.read(0, 0); // home(0) == 0
        assert_eq!(o.service, Service::LocalMem);
        assert_eq!(d.inspect(0), DirState::Exclusive(0));
        let o = d.read(64, 0); // home(64) == 1
        assert_eq!(o.service, Service::RemoteMem);
    }

    #[test]
    fn second_reader_downgrades_exclusive_to_shared() {
        let mut d = dir4();
        d.read(5, 0);
        let o = d.read(5, 2);
        // home(5) = 0, requester is node 2 ⇒ remote memory supplies.
        assert_eq!(o.service, Service::RemoteMem);
        assert_eq!(d.inspect(5), DirState::Shared(0b0101));
    }

    #[test]
    fn readers_accumulate_in_sharer_mask() {
        let mut d = dir4();
        d.read(5, 0);
        d.read(5, 2);
        d.read(5, 3);
        assert_eq!(d.inspect(5), DirState::Shared(0b1101));
    }

    #[test]
    fn silent_upgrade_is_free_for_exclusive_owner() {
        let mut d = dir4();
        d.read(5, 1);
        let before_tx = d.stats().0;
        let o = d.write(5, 1);
        assert_eq!(o.service, Service::None);
        assert_eq!(o.invalidations, 0);
        assert_eq!(d.inspect(5), DirState::Modified(1));
        assert_eq!(
            d.stats().0,
            before_tx,
            "silent upgrade is not a transaction"
        );
    }

    #[test]
    fn write_to_shared_invalidates_remote_sharers_only() {
        let mut d = dir4();
        d.read(5, 0);
        d.read(5, 1);
        d.read(5, 2);
        let o = d.write(5, 1);
        assert_eq!(o.invalidations, 2); // nodes 0 and 2, not the writer
        assert_eq!(d.inspect(5), DirState::Modified(1));
    }

    #[test]
    fn read_of_modified_line_is_cache_to_cache() {
        let mut d = dir4();
        d.read(7, 2);
        d.write(7, 2); // silent upgrade
        let o = d.read(7, 0);
        assert_eq!(o.service, Service::RemoteL2 { owner: 2 });
        assert_eq!(o.prev_owner, Some(2));
        // Both the reader and the old owner now share the line.
        assert_eq!(d.inspect(7), DirState::Shared(0b0101));
    }

    #[test]
    fn write_of_modified_line_transfers_ownership() {
        let mut d = dir4();
        d.write(7, 2);
        let o = d.write(7, 3);
        assert_eq!(o.service, Service::RemoteL2 { owner: 2 });
        assert_eq!(o.invalidations, 1);
        assert_eq!(d.inspect(7), DirState::Modified(3));
    }

    #[test]
    fn write_to_remote_exclusive_clean_invalidates_without_c2c() {
        let mut d = dir4();
        d.read(7, 2); // exclusive clean at node 2
        let o = d.write(7, 0);
        assert_eq!(o.invalidations, 1);
        assert_eq!(o.prev_owner, Some(2));
        // home(7) = 0 and the writer is node 0 ⇒ local memory supplies.
        assert_eq!(o.service, Service::LocalMem);
        assert_eq!(d.inspect(7), DirState::Modified(0));
    }

    #[test]
    fn owner_refetch_after_silent_eviction_downgrades_modified() {
        let mut d = dir4();
        d.write(9, 1);
        let o = d.read(9, 1);
        assert_eq!(o.prev_owner, None);
        assert_eq!(d.inspect(9), DirState::Exclusive(1));
        assert!(matches!(o.service, Service::LocalMem | Service::RemoteMem));
    }

    #[test]
    fn single_node_machine_is_always_local_and_quiet() {
        let mut d = Directory::new(1, 64);
        for line in 0..100 {
            let r = d.read(line, 0);
            assert_eq!(r.service, Service::LocalMem);
            let w = d.write(line, 0);
            assert_eq!(w.invalidations, 0);
        }
        let (_, c2c, inv) = d.stats();
        assert_eq!(c2c, 0);
        assert_eq!(inv, 0);
    }

    #[test]
    fn stats_count_transactions() {
        let mut d = dir4();
        d.read(1, 0); // tx 1: E@0
        d.write(1, 1); // tx 2: invalidate node 0's clean copy
        d.read(1, 2); // tx 3: c2c from node 1
        let (tx, c2c, inv) = d.stats();
        assert_eq!(tx, 3);
        assert_eq!(c2c, 1);
        assert_eq!(inv, 1);
    }
}
