//! Memory-hierarchy parameters (paper Table 3).
//!
//! All latencies are contention-free round trips, as in the paper. The
//! remote latencies apply only to multi-chip (high-end) machines and are
//! "low because we only model a 4-node machine".

/// Configuration of the whole memory subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// L1 data cache size in bytes (Table 3: 64 KB).
    pub l1_size: usize,
    /// L2 cache size in bytes (Table 3: 1024 KB).
    pub l2_size: usize,
    /// Cache line size in bytes for both levels (Table 3: 64 B).
    pub line_size: usize,
    /// L1 associativity (Table 3: 2-way).
    pub l1_assoc: usize,
    /// L2 associativity (Table 3: 4-way).
    pub l2_assoc: usize,
    /// Cache fill time in cycles, both levels (Table 3: 8).
    pub fill_time: u64,
    /// Number of banks per cache, both levels (Table 3: 7).
    pub l1_banks: usize,
    /// Number of banks in the L2 (Table 3: 7).
    pub l2_banks: usize,
    /// Bank read/write occupancy in cycles (Table 3: 1).
    pub bank_occupancy: u64,
    /// L1 hit round-trip latency (Table 3: 1 cycle).
    pub l1_latency: u64,
    /// L2 hit round-trip latency (Table 3: 10 cycles).
    pub l2_latency: u64,
    /// Local memory round-trip latency (Table 3: 40 cycles).
    pub local_mem_latency: u64,
    /// Remote memory round-trip latency (Table 3: 60 cycles).
    pub remote_mem_latency: u64,
    /// Remote (dirty) L2 round-trip latency, i.e. a cache-to-cache transfer
    /// through home directory (Table 3: 75 cycles).
    pub remote_l2_latency: u64,
    /// Maximum outstanding loads per chip — the non-blocking-cache limit
    /// (§3.1: "up to 32 outstanding loads").
    pub max_outstanding_loads: usize,
    /// TLB entries (§3.4: 512, fully associative, random replacement).
    pub tlb_entries: usize,
    /// Page size used for TLB and NUMA interleaving. 4 KB, a conventional
    /// value; the paper does not state one.
    pub page_size: u64,
    /// TLB miss penalty in cycles. The paper does not report one; we use a
    /// software-walk cost of 30 cycles, documented in DESIGN.md. TLB misses
    /// are rare in these dense-array workloads, so results are insensitive.
    pub tlb_miss_penalty: u64,
    /// Extra latency charged to a write that must invalidate remote sharers
    /// (one directory→sharer→ack hop). Not in Table 3; derived as half a
    /// remote-memory round trip.
    pub invalidation_penalty: u64,
    /// Per-message occupancy of a network-interface link in cycles.
    pub link_occupancy: u64,
    /// Per-access occupancy of a memory channel / directory controller.
    pub memory_occupancy: u64,
    /// Cache replacement policy for both levels (default LRU; the paper
    /// does not specify one).
    pub replacement: crate::cache::Replacement,
}

impl MemConfig {
    /// The exact Table 3 configuration.
    pub fn table3() -> Self {
        MemConfig {
            l1_size: 64 * 1024,
            l2_size: 1024 * 1024,
            line_size: 64,
            l1_assoc: 2,
            l2_assoc: 4,
            fill_time: 8,
            l1_banks: 7,
            l2_banks: 7,
            bank_occupancy: 1,
            l1_latency: 1,
            l2_latency: 10,
            local_mem_latency: 40,
            remote_mem_latency: 60,
            remote_l2_latency: 75,
            max_outstanding_loads: 32,
            tlb_entries: 512,
            page_size: 4096,
            tlb_miss_penalty: 30,
            invalidation_penalty: 30,
            link_occupancy: 1,
            memory_occupancy: 1,
            replacement: crate::cache::Replacement::Lru,
        }
    }

    /// A tiny configuration for unit tests: 4 lines of L1, 16 of L2, small
    /// TLB — so capacity and conflict behaviour is exercised with short
    /// traces. Latencies stay at Table 3 values.
    pub fn tiny_for_tests() -> Self {
        MemConfig {
            l1_size: 4 * 64,
            l2_size: 16 * 64,
            l1_assoc: 2,
            l2_assoc: 4,
            tlb_entries: 4,
            ..Self::table3()
        }
    }

    /// Number of L1 sets.
    pub fn l1_sets(&self) -> usize {
        self.l1_size / self.line_size / self.l1_assoc
    }

    /// Number of L2 sets.
    pub fn l2_sets(&self) -> usize {
        self.l2_size / self.line_size / self.l2_assoc
    }

    /// Line-aligned address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_size as u64
    }

    /// Page number of an address.
    #[inline]
    pub fn page_of(&self, addr: u64) -> u64 {
        addr / self.page_size
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        Self::table3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 3 of the paper, verbatim.
    #[test]
    fn table3_values() {
        let c = MemConfig::table3();
        assert_eq!(c.l1_size, 64 * 1024); // [L1/L2] cache size 64 / 1024 KB
        assert_eq!(c.l2_size, 1024 * 1024);
        assert_eq!(c.line_size, 64); // line size 64 / 64 B
        assert_eq!(c.l1_assoc, 2); // associativity 2-way / 4-way
        assert_eq!(c.l2_assoc, 4);
        assert_eq!(c.fill_time, 8); // fill time 8 / 8
        assert_eq!(c.l1_banks, 7); // banks 7 / 7
        assert_eq!(c.l2_banks, 7);
        assert_eq!(c.bank_occupancy, 1); // occupancy 1 / 1
        assert_eq!(c.l1_latency, 1); // L1 latency 1
        assert_eq!(c.l2_latency, 10); // L2 latency 10
        assert_eq!(c.local_mem_latency, 40); // local memory 40
        assert_eq!(c.remote_mem_latency, 60); // remote memory 60
        assert_eq!(c.remote_l2_latency, 75); // remote L2 75
        assert_eq!(c.max_outstanding_loads, 32); // §3.1
        assert_eq!(c.tlb_entries, 512); // §3.4
    }

    #[test]
    fn derived_set_counts() {
        let c = MemConfig::table3();
        assert_eq!(c.l1_sets(), 512); // 64KB / 64B / 2-way
        assert_eq!(c.l2_sets(), 4096); // 1MB / 64B / 4-way
    }

    #[test]
    fn line_and_page_math() {
        let c = MemConfig::table3();
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(63), 0);
        assert_eq!(c.line_of(64), 1);
        assert_eq!(c.page_of(4095), 0);
        assert_eq!(c.page_of(4096), 1);
    }
}
