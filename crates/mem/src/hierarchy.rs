//! The assembled memory system: per-node TLB + L1 + L2 + MSHRs + memory
//! channel + network interface, glued by the directory (paper §3.4, Fig 3).
//!
//! Per the paper, each chip's clusters share one primary cache ("we choose a
//! shared primary cache for all our configurations") and the L2; the
//! instruction cache is perfect, so only data accesses come through here.
//!
//! [`MemorySystem::access`] is the single entry point the load/store units
//! call. It returns the completion cycle of the access (contention-free
//! Table 3 round trip of the servicing level, plus any queueing delays on
//! banks, MSHRs, links, directory and memory channels).

use crate::cache::{Cache, LookupResult};
use crate::config::MemConfig;
use crate::directory::{Directory, Service};
use crate::mshr::{MshrFile, MshrOutcome};
use crate::resource::Resource;
use crate::stats::MemStats;
use crate::tlb::Tlb;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// Which level ultimately serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServicedBy {
    /// L1 hit.
    L1,
    /// L2 hit (or merged into an outstanding miss).
    L2,
    /// Home memory on this node.
    LocalMem,
    /// Home memory on a remote node.
    RemoteMem,
    /// Dirty line transferred from a remote L2.
    RemoteL2,
}

/// Map the hierarchy's outcome classification onto the trace crate's
/// dependency-free mirror enum (the trace crate sits below this one in
/// the dependency graph, so it cannot name [`ServicedBy`] itself).
fn service_level(s: ServicedBy) -> csmt_trace::ServiceLevel {
    match s {
        ServicedBy::L1 => csmt_trace::ServiceLevel::L1,
        ServicedBy::L2 => csmt_trace::ServiceLevel::L2,
        ServicedBy::LocalMem => csmt_trace::ServiceLevel::LocalMem,
        ServicedBy::RemoteMem => csmt_trace::ServiceLevel::RemoteMem,
        ServicedBy::RemoteL2 => csmt_trace::ServiceLevel::RemoteL2,
    }
}

/// Result of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the data is available (loads) / globally performed
    /// (stores).
    pub complete_at: u64,
    /// Servicing level.
    pub serviced_by: ServicedBy,
    /// Whether the TLB missed.
    pub tlb_miss: bool,
}

/// Per-node hardware: caches, TLB, MSHRs, memory channel, network link.
#[derive(Debug, Clone)]
struct NodeMem {
    l1: Cache,
    l2: Cache,
    l1_banks: Vec<Resource>,
    l2_banks: Vec<Resource>,
    mshr: MshrFile,
    tlb: Tlb,
    /// Memory channel + directory controller for this node's memory slice.
    mem_channel: Resource,
    /// Network-interface link (both directions share it; the paper's NoC is
    /// not otherwise specified).
    link: Resource,
    stats: MemStats,
}

impl NodeMem {
    fn new(cfg: &MemConfig, seed: u64) -> Self {
        NodeMem {
            l1: Cache::l1(cfg),
            l2: Cache::l2(cfg),
            l1_banks: (0..cfg.l1_banks).map(|_| Resource::new()).collect(),
            l2_banks: (0..cfg.l2_banks).map(|_| Resource::new()).collect(),
            mshr: MshrFile::new(cfg.max_outstanding_loads),
            tlb: Tlb::new(cfg.tlb_entries, seed),
            mem_channel: Resource::new(),
            link: Resource::new(),
            stats: MemStats::default(),
        }
    }
}

/// The full memory system for a machine of one or more nodes (chips).
#[derive(Debug, Clone)]
pub struct MemorySystem {
    cfg: MemConfig,
    nodes: Vec<NodeMem>,
    dir: Directory,
}

impl MemorySystem {
    /// Build a system with `nodes` chips. For the low-end machine pass 1;
    /// the paper's high-end machine uses 4.
    pub fn new(cfg: MemConfig, nodes: usize, seed: u64) -> Self {
        assert!(nodes >= 1);
        let lines_per_page = cfg.page_size / cfg.line_size as u64;
        let mut rng = csmt_isa::SplitMix64::new(seed);
        MemorySystem {
            nodes: (0..nodes)
                .map(|i| NodeMem::new(&cfg, rng.fork(i as u64).next_u64()))
                .collect(),
            dir: Directory::new(nodes, lines_per_page),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Free MSHR slots at `node` at time `now` — the LSQ consults this to
    /// respect the 32-outstanding-loads limit without issuing.
    pub fn free_mshrs(&mut self, node: usize, now: u64) -> usize {
        let cap = self.cfg.max_outstanding_loads;
        cap - self.nodes[node].mshr.outstanding(now).min(cap)
    }

    /// Earliest future cycle (strictly after `now`) at which the memory
    /// system completes an outstanding miss, or `u64::MAX` when nothing
    /// is in flight.
    ///
    /// Only MSHR fills matter here: every other timing structure — bank,
    /// link and memory-channel reservation timelines, directory state,
    /// TLB contents — is evaluated lazily against the requesting access's
    /// own timestamp and never acts spontaneously. The machine's
    /// event-driven fast-forward takes the min of this and every
    /// cluster's `next_event_cycle` to bound a stall skip.
    pub fn next_event_cycle(&self, now: u64) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.mshr.next_completion(now))
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Perform a data access from `node` at cycle `now`.
    pub fn access(&mut self, node: usize, addr: u64, kind: AccessKind, now: u64) -> AccessOutcome {
        self.access_probed(node, addr, kind, now, &mut csmt_trace::NullProbe)
    }

    /// [`access`](MemorySystem::access) with an observability probe: the
    /// classified outcome is reported as a
    /// [`CacheEvent`](csmt_trace::CacheEvent) when the probe wants cache
    /// events. With [`NullProbe`](csmt_trace::NullProbe) this
    /// monomorphizes to exactly `access`.
    pub fn access_probed<P: csmt_trace::Probe>(
        &mut self,
        node: usize,
        addr: u64,
        kind: AccessKind,
        now: u64,
        probe: &mut P,
    ) -> AccessOutcome {
        // Host self-profiling: memory time nests inside the cluster's
        // issue (loads) / commit (stores) phases; the profiler reports
        // it as its own row so cache-model cost is visible separately.
        let phase_t = P::WANTS_HOST_PHASES.then(std::time::Instant::now);
        let out = self.access_inner(node, addr, kind, now);
        if let Some(t0) = phase_t {
            probe.host_phase(
                csmt_trace::HostPhase::Memory,
                t0.elapsed().as_nanos() as u64,
            );
        }
        if P::WANTS_CACHE_EVENTS {
            probe.cache_access(csmt_trace::CacheEvent {
                cycle: now,
                node: node as u32,
                addr,
                write: kind == AccessKind::Write,
                level: service_level(out.serviced_by),
                tlb_miss: out.tlb_miss,
                complete_at: out.complete_at,
            });
        }
        out
    }

    fn access_inner(
        &mut self,
        node: usize,
        addr: u64,
        kind: AccessKind,
        now: u64,
    ) -> AccessOutcome {
        debug_assert!(node < self.nodes.len());
        let line = self.cfg.line_of(addr);
        let page = self.cfg.page_of(addr);
        let is_write = kind == AccessKind::Write;
        let occupancy = self.cfg.bank_occupancy;

        let mut t = now;
        let mut tlb_miss = false;
        {
            let n = &mut self.nodes[node];
            n.stats.accesses += 1;
            if is_write {
                n.stats.writes += 1;
            }
            // 1. TLB (shared by all threads on the chip).
            if !n.tlb.access(page) {
                tlb_miss = true;
                n.stats.tlb_misses += 1;
                t += self.cfg.tlb_miss_penalty;
            }
        }

        // 2. Secondary-miss check: if the line is already being fetched, the
        // access piggybacks on the in-flight fill — no bank port, no new
        // downstream traffic (the tag arrays allocate at miss initiation, so
        // this must be checked before the L1 lookup would report a "hit").
        if let Some(c) = self.nodes[node].mshr.outstanding_complete(line, t) {
            let n = &mut self.nodes[node];
            n.stats.mshr_merges += 1;
            n.stats.l2_hits += 1;
            if is_write {
                // Mark the (already allocated) line dirty on arrival.
                n.l1.access(line, true);
            }
            return AccessOutcome {
                complete_at: c.max(t + self.cfg.l1_latency),
                serviced_by: ServicedBy::L2,
                tlb_miss,
            };
        }

        // 3. Write-upgrade check: a store hitting a *clean* L1 line on a
        // multi-node machine needs directory permission before it can be
        // considered an L1 hit.
        let needs_upgrade = is_write
            && self.nodes.len() > 1
            && self.nodes[node].l1.probe_dirty(line) == Some(false);

        // 4. L1 lookup (reserves the addressed bank).
        let l1_result = {
            let n = &mut self.nodes[node];
            let bank = n.l1.bank_of(line);
            let start = n.l1_banks[bank].reserve(t, occupancy);
            n.stats.contention_wait += start - t;
            t = start;
            n.l1.access(line, is_write)
        };

        if let LookupResult::Hit = l1_result {
            if !needs_upgrade {
                self.nodes[node].stats.l1_hits += 1;
                return AccessOutcome {
                    complete_at: t + self.cfg.l1_latency,
                    serviced_by: ServicedBy::L1,
                    tlb_miss,
                };
            }
            // Upgrade path: the data is local, but the directory at the home
            // node must grant ownership and invalidate other sharers.
            let out = self.dir.write(line, node);
            self.apply_remote_side_effects(line, out.invalidated_mask, out.prev_owner, is_write, t);
            let lat = match out.service {
                Service::None => 0, // silent E→M: free
                _ => {
                    self.nodes[node].stats.upgrades += 1;
                    self.nodes[node].stats.invalidations += out.invalidations as u64;
                    self.coherence_latency(node, line, out.service, out.invalidations, &mut t)
                }
            };
            let serviced = if lat == 0 {
                ServicedBy::L1
            } else {
                ServicedBy::LocalMem
            };
            if lat == 0 {
                self.nodes[node].stats.l1_hits += 1;
            }
            return AccessOutcome {
                complete_at: t + self.cfg.l1_latency + lat,
                serviced_by: serviced,
                tlb_miss,
            };
        }

        // 5. L1 miss: handle the victim writeback into L2, then consult the
        // MSHR file.
        if let LookupResult::Miss { evicted: Some(v) } = l1_result {
            if v.dirty {
                let n = &mut self.nodes[node];
                n.stats.writebacks += 1;
                let bank = n.l2.bank_of(v.line);
                n.l2_banks[bank].reserve(t, occupancy);
                // The L2 is inclusive of dirty L1 victims; allocate there.
                n.l2.access(v.line, true);
            }
        }

        let mshr_out = self.nodes[node].mshr.request(line, t);
        match mshr_out {
            MshrOutcome::Secondary { complete_at } => {
                self.nodes[node].stats.mshr_merges += 1;
                self.nodes[node].stats.l2_hits += 1; // serviced by in-flight fill
                return AccessOutcome {
                    complete_at: complete_at.max(t + self.cfg.l1_latency),
                    serviced_by: ServicedBy::L2,
                    tlb_miss,
                };
            }
            MshrOutcome::Primary { start } => {
                self.nodes[node].stats.contention_wait += start - t;
                t = start;
            }
        }

        // 6. L2 lookup.
        let l2_result = {
            let n = &mut self.nodes[node];
            let bank = n.l2.bank_of(line);
            let start = n.l2_banks[bank].reserve(t, occupancy);
            n.stats.contention_wait += start - t;
            t = start;
            n.l2.access(line, is_write)
        };

        let (complete_at, serviced_by) = match l2_result {
            LookupResult::Hit => {
                // A write hitting a clean L2 line on a multi-node machine
                // still needs the upgrade transaction; `needs_upgrade` only
                // covered the L1-resident case, so redo the check here using
                // the directory's own view.
                let mut extra = 0;
                let mut svc = ServicedBy::L2;
                if is_write && self.nodes.len() > 1 {
                    let out = self.dir.write(line, node);
                    self.apply_remote_side_effects(
                        line,
                        out.invalidated_mask,
                        out.prev_owner,
                        is_write,
                        t,
                    );
                    if out.service != Service::None {
                        self.nodes[node].stats.upgrades += 1;
                        self.nodes[node].stats.invalidations += out.invalidations as u64;
                        extra = self.coherence_latency(
                            node,
                            line,
                            out.service,
                            out.invalidations,
                            &mut t,
                        );
                        svc = ServicedBy::LocalMem;
                    }
                }
                if svc == ServicedBy::L2 {
                    self.nodes[node].stats.l2_hits += 1;
                }
                (t + self.cfg.l2_latency + extra, svc)
            }
            LookupResult::Miss { evicted } => {
                // L2 victim: the L2 is inclusive, so the victim must leave
                // the L1 too (back-invalidation); a dirty copy at either
                // level is written back to its home memory (occupying the
                // home channel; latency is off the critical path).
                if let Some(v) = evicted {
                    let l1_dirty = self.nodes[node].l1.invalidate(v.line) == Some(true);
                    if v.dirty || l1_dirty {
                        self.nodes[node].stats.writebacks += 1;
                        let home = self.dir.home_of(v.line);
                        let occ = self.cfg.memory_occupancy;
                        self.nodes[home].mem_channel.reserve(t, occ);
                    }
                }
                // Directory transaction at the home node.
                let out = if is_write {
                    self.dir.write(line, node)
                } else {
                    self.dir.read(line, node)
                };
                self.apply_remote_side_effects(
                    line,
                    out.invalidated_mask,
                    out.prev_owner,
                    is_write,
                    t,
                );
                self.nodes[node].stats.invalidations += out.invalidations as u64;
                let lat =
                    self.coherence_latency(node, line, out.service, out.invalidations, &mut t);
                let svc = match out.service {
                    Service::LocalMem | Service::None => ServicedBy::LocalMem,
                    Service::RemoteMem => ServicedBy::RemoteMem,
                    Service::RemoteL2 { .. } => ServicedBy::RemoteL2,
                };
                match svc {
                    ServicedBy::LocalMem => self.nodes[node].stats.local_mem += 1,
                    ServicedBy::RemoteMem => self.nodes[node].stats.remote_mem += 1,
                    ServicedBy::RemoteL2 => self.nodes[node].stats.remote_l2 += 1,
                    _ => {}
                }
                (t + lat, svc)
            }
        };

        // 7. Fill: the returning line occupies the L1 (and on L2 miss the
        // L2) bank for the fill time, delaying later accesses to that bank.
        {
            let n = &mut self.nodes[node];
            let fill = self.cfg.fill_time;
            let b1 = n.l1.bank_of(line);
            n.l1_banks[b1].reserve(complete_at, fill);
            if matches!(l2_result, LookupResult::Miss { .. }) {
                let b2 = n.l2.bank_of(line);
                n.l2_banks[b2].reserve(complete_at, fill);
            }
            n.mshr.complete(line, complete_at);
        }

        AccessOutcome {
            complete_at,
            serviced_by,
            tlb_miss,
        }
    }

    /// Latency of the coherence service, reserving the resources involved:
    /// requester link (if off-chip), home memory channel, owner link for
    /// cache-to-cache transfers, plus the invalidation penalty when remote
    /// copies had to be shot down.
    fn coherence_latency(
        &mut self,
        node: usize,
        line: u64,
        service: Service,
        invalidations: u32,
        t: &mut u64,
    ) -> u64 {
        let home = self.dir.home_of(line);
        let base = match service {
            Service::None => return 0,
            Service::LocalMem => self.cfg.local_mem_latency,
            Service::RemoteMem => self.cfg.remote_mem_latency,
            Service::RemoteL2 { .. } => self.cfg.remote_l2_latency,
        };
        // Off-chip messages traverse the requester's network interface.
        if home != node || matches!(service, Service::RemoteL2 { .. }) {
            let start = self.nodes[node].link.reserve(*t, self.cfg.link_occupancy);
            self.nodes[node].stats.contention_wait += start - *t;
            *t = start;
        }
        // Home memory channel / directory controller.
        {
            let start = self.nodes[home]
                .mem_channel
                .reserve(*t, self.cfg.memory_occupancy);
            self.nodes[node].stats.contention_wait += start - *t;
            *t = start;
        }
        // Owner's link for cache-to-cache transfers.
        if let Service::RemoteL2 { owner } = service {
            let start = self.nodes[owner].link.reserve(*t, self.cfg.link_occupancy);
            self.nodes[node].stats.contention_wait += start - *t;
            *t = start;
        }
        let inval = if invalidations > 0 {
            self.cfg.invalidation_penalty
        } else {
            0
        };
        base + inval
    }

    /// Drop / downgrade copies at other nodes as instructed by the
    /// directory. Invalidations remove the line from the victim's L1 and L2;
    /// a read of a dirty remote line downgrades the owner's copies to clean.
    fn apply_remote_side_effects(
        &mut self,
        line: u64,
        invalidated_mask: u32,
        prev_owner: Option<usize>,
        is_write: bool,
        now: u64,
    ) {
        if invalidated_mask != 0 {
            for victim in 0..self.nodes.len() {
                if invalidated_mask & (1u32 << victim) != 0 {
                    let n = &mut self.nodes[victim];
                    n.l1.invalidate(line);
                    n.l2.invalidate(line);
                    n.link.reserve(now, self.cfg.link_occupancy);
                }
            }
        }
        if let Some(owner) = prev_owner {
            if !is_write && invalidated_mask & (1u32 << owner) == 0 {
                // Read of a modified line: owner keeps clean copies.
                let n = &mut self.nodes[owner];
                n.l1.clean(line);
                n.l2.clean(line);
            }
        }
    }

    /// Statistics for one node.
    pub fn node_stats(&self, node: usize) -> &MemStats {
        &self.nodes[node].stats
    }

    /// Aggregated statistics across nodes, including directory counters.
    pub fn stats(&self) -> MemStats {
        let mut total = MemStats::default();
        for n in &self.nodes {
            total.merge(&n.stats);
        }
        total
    }

    /// The four counters the per-cycle [`csmt_trace::CycleStats`] stream
    /// reports: `(accesses, l1_hits, l2_hits, tlb_misses)`, summed over
    /// nodes. A cheap subset of [`stats`](MemorySystem::stats) for the
    /// hot end-of-cycle path — four integer adds per node instead of a
    /// full [`MemStats`] merge.
    pub fn cycle_counters(&self) -> (u64, u64, u64, u64) {
        let (mut acc, mut l1, mut l2, mut tlb) = (0u64, 0u64, 0u64, 0u64);
        for n in &self.nodes {
            acc += n.stats.accesses;
            l1 += n.stats.l1_hits;
            l2 += n.stats.l2_hits;
            tlb += n.stats.tlb_misses;
        }
        (acc, l1, l2, tlb)
    }

    /// Directory-level counters: (transactions, remote-L2 transfers,
    /// invalidations sent).
    pub fn directory_stats(&self) -> (u64, u64, u64) {
        self.dir.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(nodes: usize) -> MemorySystem {
        MemorySystem::new(MemConfig::table3(), nodes, 42)
    }

    #[test]
    fn l1_hit_costs_one_cycle_when_uncontended() {
        let mut m = sys(1);
        m.access(0, 0x1000, AccessKind::Read, 0); // cold miss fills
        let now = 10_000; // long after fills quiesce
        let o = m.access(0, 0x1000, AccessKind::Read, now);
        assert_eq!(o.serviced_by, ServicedBy::L1);
        assert_eq!(o.complete_at, now + 1);
    }

    #[test]
    fn cold_miss_goes_to_local_memory_at_40_cycles() {
        let mut m = sys(1);
        // Warm the TLB first so the miss penalty does not obscure the check.
        m.access(0, 0x0, AccessKind::Read, 0);
        let now = 10_000;
        let o = m.access(0, 0x40 * 9, AccessKind::Read, now); // same page, new line
        assert_eq!(o.serviced_by, ServicedBy::LocalMem);
        assert!(!o.tlb_miss);
        assert_eq!(o.complete_at, now + 40);
    }

    #[test]
    fn l2_hit_costs_ten_cycles() {
        let mut m = sys(1);
        let cfg = MemConfig::table3();
        let l1 = crate::cache::Cache::l1(&cfg);
        let l2 = crate::cache::Cache::l2(&cfg);
        // Find two extra lines that collide with line of 0x2000 in the L1
        // but not in the (bigger) L2, to evict it from L1 only.
        let base_line = cfg.line_of(0x2000);
        let collide: Vec<u64> = (1u64..1_000_000)
            .map(|k| base_line + k)
            .filter(|&l| {
                l1.set_of(l) == l1.set_of(base_line) && l2.set_of(l) != l2.set_of(base_line)
            })
            .take(2)
            .collect();
        m.access(0, 0x2000, AccessKind::Read, 0);
        for (k, &l) in collide.iter().enumerate() {
            // Same page? Not necessarily — warm TLB by construction: use
            // large now gaps so fills settle; TLB misses only add to those
            // earlier accesses, not the probe below.
            m.access(0, l * 64, AccessKind::Read, 1000 * (k as u64 + 1));
        }
        let now = 100_000;
        let o = m.access(0, 0x2000, AccessKind::Read, now);
        assert_eq!(o.serviced_by, ServicedBy::L2);
        assert_eq!(o.complete_at, now + 10);
    }

    #[test]
    fn tlb_miss_adds_walk_penalty() {
        let mut m = sys(1);
        let o = m.access(0, 0x123456, AccessKind::Read, 0);
        assert!(o.tlb_miss);
        assert_eq!(o.complete_at, 30 + 40); // walk + local memory
    }

    #[test]
    fn secondary_miss_merges_and_completes_with_primary() {
        let mut m = sys(1);
        m.access(0, 0x0, AccessKind::Read, 0); // TLB warm
        let now = 10_000;
        let a = m.access(0, 0x5000, AccessKind::Read, now);
        let b = m.access(0, 0x5008, AccessKind::Read, now + 1); // same line
        assert_eq!(b.complete_at, a.complete_at);
        assert_eq!(m.stats().mshr_merges, 1);
    }

    #[test]
    fn remote_page_serviced_by_remote_memory_at_60() {
        let mut m = sys(4);
        // Page 1 homes at node 1; access from node 0.
        let addr = 4096;
        m.access(0, addr, AccessKind::Read, 0); // cold, TLB miss
        let now = 10_000;
        let o = m.access(0, addr + 64 * 3, AccessKind::Read, now); // same page, new line
        assert_eq!(o.serviced_by, ServicedBy::RemoteMem);
        assert_eq!(o.complete_at, now + 60);
    }

    #[test]
    fn dirty_remote_line_is_cache_to_cache_at_75() {
        let mut m = sys(4);
        let addr = 4096; // homed at node 1
                         // Warm node 0's TLB on a different line of the same page.
        m.access(0, addr + 64 * 5, AccessKind::Read, 0);
        // Node 2 writes the line (becomes Modified at node 2).
        m.access(2, addr, AccessKind::Write, 0);
        let now = 10_000;
        let o = m.access(0, addr, AccessKind::Read, now);
        assert_eq!(o.serviced_by, ServicedBy::RemoteL2);
        assert_eq!(o.complete_at, now + 75);
    }

    #[test]
    fn write_to_shared_line_pays_invalidation_penalty() {
        let mut m = sys(4);
        let addr = 0; // homed at node 0
        m.access(0, addr, AccessKind::Read, 0);
        m.access(1, addr, AccessKind::Read, 100); // now Shared{0,1}
        let now = 10_000;
        // Node 0 holds a clean copy in its L1; the write is an upgrade.
        let o = m.access(0, addr, AccessKind::Write, now);
        // local mem (40) + invalidation penalty (30) + L1 latency 1
        assert_eq!(o.complete_at, now + 40 + 30 + 1);
        assert_eq!(m.stats().invalidations, 1);
        // Node 1's copy is gone: its next read re-fetches beyond L1/L2.
        let o1 = m.access(1, addr, AccessKind::Read, now + 1000);
        assert_eq!(o1.serviced_by, ServicedBy::RemoteL2); // dirty at node 0 now
    }

    #[test]
    fn single_node_writes_never_pay_coherence() {
        let mut m = sys(1);
        m.access(0, 0x0, AccessKind::Read, 0);
        let now = 10_000;
        let o = m.access(0, 0x0, AccessKind::Write, now);
        assert_eq!(o.serviced_by, ServicedBy::L1);
        assert_eq!(o.complete_at, now + 1);
        assert_eq!(m.stats().invalidations, 0);
        assert_eq!(m.stats().upgrades, 0);
    }

    #[test]
    fn bank_contention_delays_back_to_back_same_bank_accesses() {
        let mut m = sys(1);
        // Warm two lines in the same L1 bank (same line → same bank trivially;
        // use two addresses in one line's bank: line L and L + 7 share bank
        // (7 banks, line-interleaved ⇒ same bank every 7 lines)).
        let a1 = 0x0u64;
        let a2 = 7 * 64u64;
        m.access(0, a1, AccessKind::Read, 0);
        m.access(0, a2, AccessKind::Read, 500);
        let now = 10_000;
        let x = m.access(0, a1, AccessKind::Read, now);
        let y = m.access(0, a2, AccessKind::Read, now);
        assert_eq!(x.complete_at, now + 1);
        assert_eq!(
            y.complete_at,
            now + 2,
            "second access queues behind the bank"
        );
    }

    #[test]
    fn l2_eviction_back_invalidates_the_l1() {
        let mut m = sys(1);
        let cfg = MemConfig::table3();
        let l2 = crate::cache::Cache::l2(&cfg);
        // Find 4 extra lines colliding with line X in the (4-way) L2.
        let x = cfg.line_of(0x3000);
        let collide: Vec<u64> = (1u64..10_000_000)
            .map(|k| x + k * 7) // odd stride avoids degenerate L1 patterns
            .filter(|&l| l2.set_of(l) == l2.set_of(x))
            .take(4)
            .collect();
        m.access(0, 0x3000, AccessKind::Read, 0);
        // X now in L1+L2. Evict it from the L2 with 4 colliding fills.
        for (k, &l) in collide.iter().enumerate() {
            m.access(0, l * 64, AccessKind::Read, 1_000 * (k as u64 + 1));
        }
        // X must have left the L1 as well: the re-access misses to memory
        // (L1 hit would complete at +1, L2 at +10).
        let now = 1_000_000;
        let o = m.access(0, 0x3000, AccessKind::Read, now);
        assert!(
            o.complete_at >= now + 40,
            "inclusion violated: {:?} in {} cycles",
            o.serviced_by,
            o.complete_at - now
        );
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut m = sys(4);
            let mut sum = 0u64;
            for i in 0..2000u64 {
                let node = (i % 4) as usize;
                let addr = (i * 811) % (1 << 20);
                let kind = if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                sum = sum.wrapping_add(m.access(node, addr, kind, i * 2).complete_at);
            }
            (sum, m.stats())
        };
        let (s1, st1) = run();
        let (s2, st2) = run();
        assert_eq!(s1, s2);
        assert_eq!(st1, st2);
    }

    #[test]
    fn stats_accumulate_sensibly() {
        let mut m = sys(1);
        for i in 0..100u64 {
            m.access(0, i * 8, AccessKind::Read, i * 50);
        }
        let s = m.stats();
        assert_eq!(s.accesses, 100);
        // 100 sequential dwords = 13 lines: ~13 misses, rest L1 hits/merges.
        assert!(s.l1_hits > 80, "{s:?}");
        assert!(s.local_mem >= 12, "{s:?}");
    }

    #[test]
    fn free_mshrs_decrease_with_outstanding_misses() {
        let mut m = sys(1);
        m.access(0, 0, AccessKind::Read, 0); // TLB warm
        let now = 10_000;
        assert_eq!(m.free_mshrs(0, now), 32);
        for k in 0..5u64 {
            m.access(0, 0x10_000 + k * 64, AccessKind::Read, now);
        }
        assert!(m.free_mshrs(0, now) <= 27);
        assert_eq!(m.free_mshrs(0, now + 10_000), 32);
    }
}
