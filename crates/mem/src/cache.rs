//! Set-associative, banked, write-back cache tag arrays.
//!
//! Timing (bank contention, fill time) lives in the hierarchy; this module
//! is the stateful tag/LRU machinery shared by L1 and L2. Both caches in the
//! paper are write-back / write-allocate with LRU within a set (the
//! conventional 1998 design; the paper specifies sizes, associativity, banks
//! and fill time but not the policy, so we use the standard one and note it
//! in DESIGN.md).

use crate::config::MemConfig;
use csmt_isa::SplitMix64;

/// Within-set replacement policy.
///
/// The paper does not name one; LRU is the conventional 1998 choice and the
/// default. FIFO and random are provided for the replacement ablation
/// (`cargo run --release --bin ablation_study`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Evict the least-recently-used way (default).
    #[default]
    Lru,
    /// Evict the oldest-filled way (no use-recency update on hits).
    Fifo,
    /// Evict a uniformly random way (deterministic PRNG).
    Random,
}

/// Result of a lookup-with-fill operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Line present.
    Hit,
    /// Line absent; it has been filled. Carries the evicted victim, if the
    /// victim was valid, and whether it was dirty (needs writeback).
    Miss {
        /// The valid line this fill displaced, if any.
        evicted: Option<Victim>,
    },
}

/// An evicted line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// Line address (byte address / line size) of the victim.
    pub line: u64,
    /// True if the line was modified and must be written back.
    pub dirty: bool,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Higher = more recently used.
    lru: u32,
}

const INVALID: Way = Way {
    tag: 0,
    valid: false,
    dirty: false,
    lru: 0,
};

/// One cache level: tags + LRU + dirty bits, organized as `sets × assoc`.
#[derive(Debug, Clone)]
pub struct Cache {
    ways: Vec<Way>,
    sets: usize,
    assoc: usize,
    banks: usize,
    policy: Replacement,
    rng: SplitMix64,
    lru_clock: u32,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache with `sets` sets of `assoc` ways across `banks` banks
    /// and LRU replacement.
    pub fn new(sets: usize, assoc: usize, banks: usize) -> Self {
        Self::with_policy(sets, assoc, banks, Replacement::Lru, 0x5EED)
    }

    /// Build with an explicit replacement policy.
    pub fn with_policy(
        sets: usize,
        assoc: usize,
        banks: usize,
        policy: Replacement,
        seed: u64,
    ) -> Self {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc >= 1 && banks >= 1);
        Cache {
            ways: vec![INVALID; sets * assoc],
            sets,
            assoc,
            banks,
            policy,
            rng: SplitMix64::new(seed),
            lru_clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// L1 cache per Table 3 dimensions.
    pub fn l1(cfg: &MemConfig) -> Self {
        Self::with_policy(
            cfg.l1_sets(),
            cfg.l1_assoc,
            cfg.l1_banks,
            cfg.replacement,
            0x5EED,
        )
    }

    /// L2 cache per Table 3 dimensions.
    pub fn l2(cfg: &MemConfig) -> Self {
        Self::with_policy(
            cfg.l2_sets(),
            cfg.l2_assoc,
            cfg.l2_banks,
            cfg.replacement,
            0x5EED ^ 1,
        )
    }

    /// Set index with XOR-folded hashing. Plain modulo indexing makes every
    /// power-of-two-spaced stream (per-thread data slices, large array
    /// strides) collide in one set; folding the upper line bits in — as real
    /// L2s and most simulators do — decorrelates them.
    #[inline]
    pub fn set_of(&self, line: u64) -> usize {
        let bits = self.sets.trailing_zeros();
        let mask = self.sets as u64 - 1;
        let mut x = line;
        let mut s = 0u64;
        while x != 0 {
            s ^= x & mask;
            x >>= bits;
        }
        s as usize
    }

    /// Bank servicing `line`. Banks are line-interleaved, the standard
    /// layout for multi-banked caches.
    #[inline]
    pub fn bank_of(&self, line: u64) -> usize {
        (line as usize) % self.banks
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.assoc + way
    }

    /// Probe without modifying state (used by the directory to ask whether a
    /// node still caches a line).
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let tag = line;
        (0..self.assoc).any(|w| {
            let way = &self.ways[self.slot(set, w)];
            way.valid && way.tag == tag
        })
    }

    /// Probe without modifying state, reporting the line's dirty bit if
    /// present. Used for write-upgrade detection (`Some(false)` means the
    /// node holds a clean copy whose first write needs a directory upgrade).
    pub fn probe_dirty(&self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        (0..self.assoc).find_map(|w| {
            let way = &self.ways[self.slot(set, w)];
            (way.valid && way.tag == line).then_some(way.dirty)
        })
    }

    /// Access `line`; on a miss, allocate it (write-allocate), evicting LRU.
    /// `write` sets the dirty bit on the (now-present) line.
    pub fn access(&mut self, line: u64, write: bool) -> LookupResult {
        let set = self.set_of(line);
        let tag = line;
        self.lru_clock = self.lru_clock.wrapping_add(1);
        // One fused pass over the set: hit check, first-invalid victim
        // candidate and the lowest-stamp (LRU/FIFO) candidate together,
        // where separate scans would walk the ways up to three times.
        let base = self.slot(set, 0);
        let mut invalid_way = usize::MAX;
        let mut stamp_way = 0;
        let mut stamp_best = u32::MAX;
        for w in 0..self.assoc {
            let way = self.ways[base + w];
            if way.valid {
                if way.tag == tag {
                    if self.policy == Replacement::Lru {
                        self.ways[base + w].lru = self.lru_clock;
                    }
                    self.ways[base + w].dirty |= write;
                    self.hits += 1;
                    return LookupResult::Hit;
                }
                if way.lru < stamp_best {
                    stamp_best = way.lru;
                    stamp_way = w;
                }
            } else if invalid_way == usize::MAX {
                invalid_way = w;
            }
        }
        self.misses += 1;
        // Victim: first invalid way, else per policy. (When no way is
        // invalid every way was valid, so `stamp_way` covered the full
        // set; LRU and FIFO both evict the lowest stamp and differ only
        // in whether hits refresh it — see the hit path above.)
        let victim_way = if invalid_way != usize::MAX {
            invalid_way
        } else {
            match self.policy {
                Replacement::Lru | Replacement::Fifo => stamp_way,
                Replacement::Random => self.rng.below_usize(self.assoc),
            }
        };
        let idx = base + victim_way;
        let evicted = if self.ways[idx].valid {
            Some(Victim {
                line: self.ways[idx].tag,
                dirty: self.ways[idx].dirty,
            })
        } else {
            None
        };
        self.ways[idx] = Way {
            tag,
            valid: true,
            dirty: write,
            lru: self.lru_clock,
        };
        LookupResult::Miss { evicted }
    }

    /// Invalidate `line` if present; returns `Some(dirty)` if it was there.
    /// Used by the directory protocol.
    pub fn invalidate(&mut self, line: u64) -> Option<bool> {
        let set = self.set_of(line);
        for w in 0..self.assoc {
            let idx = self.slot(set, w);
            if self.ways[idx].valid && self.ways[idx].tag == line {
                let dirty = self.ways[idx].dirty;
                self.ways[idx] = INVALID;
                return Some(dirty);
            }
        }
        None
    }

    /// Downgrade `line` to clean (after a cache-to-cache transfer the owner
    /// keeps a shared clean copy). Returns true if the line was present.
    pub fn clean(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        for w in 0..self.assoc {
            let idx = self.slot(set, w);
            if self.ways[idx].valid && self.ways[idx].tag == line {
                self.ways[idx].dirty = false;
                return true;
            }
        }
        false
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets, 2-way: 8 lines total.
        Cache::new(4, 2, 7)
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut c = small();
        assert!(matches!(
            c.access(5, false),
            LookupResult::Miss { evicted: None }
        ));
        assert_eq!(c.access(5, false), LookupResult::Hit);
        assert_eq!(c.stats(), (1, 1));
    }

    /// First three lines that map to the same set as line 0.
    fn colliding_lines(c: &Cache, n: usize) -> Vec<u64> {
        let target = c.set_of(0);
        (0u64..100_000)
            .filter(|&l| c.set_of(l) == target)
            .take(n)
            .collect()
    }

    #[test]
    fn lru_evicts_least_recently_used_within_set() {
        let mut c = small();
        let ls = colliding_lines(&c, 3);
        c.access(ls[0], false);
        c.access(ls[1], false);
        c.access(ls[0], false); // ls[0] now MRU; ls[1] is LRU
        match c.access(ls[2], false) {
            LookupResult::Miss { evicted: Some(v) } => assert_eq!(v.line, ls[1]),
            other => panic!("{other:?}"),
        }
        assert!(c.probe(ls[0]));
        assert!(!c.probe(ls[1]));
        assert!(c.probe(ls[2]));
    }

    #[test]
    fn writeback_only_for_dirty_victims() {
        let mut c = small();
        let ls = colliding_lines(&c, 4);
        c.access(ls[0], true); // dirty
        c.access(ls[1], false); // clean
                                // Evict ls[0] (LRU): should be dirty.
        match c.access(ls[2], false) {
            LookupResult::Miss { evicted: Some(v) } => {
                assert_eq!(v.line, ls[0]);
                assert!(v.dirty);
            }
            other => panic!("{other:?}"),
        }
        // Now ls[1] is LRU and clean.
        match c.access(ls[3], false) {
            LookupResult::Miss { evicted: Some(v) } => {
                assert_eq!(v.line, ls[1]);
                assert!(!v.dirty);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(3, false);
        c.access(3, true);
        assert_eq!(c.invalidate(3), Some(true));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.access(9, false);
        assert_eq!(c.invalidate(9), Some(false));
        assert_eq!(c.invalidate(9), None);
        assert!(!c.probe(9));
    }

    #[test]
    fn clean_downgrades_dirty_line() {
        let mut c = small();
        c.access(2, true);
        assert!(c.clean(2));
        assert_eq!(c.invalidate(2), Some(false));
        assert!(!c.clean(2));
    }

    #[test]
    fn banks_are_line_interleaved() {
        let c = Cache::new(8, 1, 7);
        for line in 0..21u64 {
            assert_eq!(c.bank_of(line), (line % 7) as usize);
        }
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for line in 0..4u64 {
            assert!(matches!(
                c.access(line, false),
                LookupResult::Miss { evicted: None }
            ));
        }
        for line in 0..4u64 {
            assert_eq!(c.access(line, false), LookupResult::Hit);
        }
    }

    #[test]
    fn set_hash_spreads_power_of_two_strides() {
        // Streams spaced by large powers of two (the pathological case for
        // modulo indexing) must land in many distinct sets.
        let c = Cache::new(512, 2, 7);
        let sets: std::collections::HashSet<usize> =
            (0..16u64).map(|t| c.set_of(t << 20)).collect();
        assert!(sets.len() >= 12, "only {} distinct sets", sets.len());
    }

    #[test]
    fn fifo_does_not_refresh_on_hits() {
        // 2 ways: fill A, B; hit A repeatedly; fill C must evict A (oldest
        // fill) under FIFO, but B (least recently used) under LRU.
        let run = |policy: Replacement| {
            let mut c = Cache::with_policy(4, 2, 7, policy, 1);
            let ls = {
                let target = c.set_of(0);
                (0u64..10_000)
                    .filter(|&l| c.set_of(l) == target)
                    .take(3)
                    .collect::<Vec<_>>()
            };
            c.access(ls[0], false);
            c.access(ls[1], false);
            for _ in 0..5 {
                c.access(ls[0], false);
            }
            match c.access(ls[2], false) {
                LookupResult::Miss { evicted: Some(v) } => (v.line, ls.clone()),
                other => panic!("{other:?}"),
            }
        };
        let (fifo_victim, ls) = run(Replacement::Fifo);
        assert_eq!(fifo_victim, ls[0], "FIFO evicts the oldest fill");
        let (lru_victim, ls) = run(Replacement::Lru);
        assert_eq!(lru_victim, ls[1], "LRU keeps the hot line");
    }

    #[test]
    fn random_replacement_is_deterministic_and_valid() {
        let run = |seed: u64| {
            let mut c = Cache::with_policy(4, 2, 7, Replacement::Random, seed);
            let mut victims = Vec::new();
            for line in 0..100u64 {
                if let LookupResult::Miss { evicted: Some(v) } = c.access(line, false) {
                    victims.push(v.line);
                }
            }
            victims
        };
        assert_eq!(run(7), run(7), "same seed, same victims");
        assert!(!run(7).is_empty());
    }

    #[test]
    fn table3_geometry_roundtrip() {
        let cfg = MemConfig::table3();
        let l1 = Cache::l1(&cfg);
        let l2 = Cache::l2(&cfg);
        assert_eq!(l1.sets * l1.assoc * cfg.line_size, cfg.l1_size);
        assert_eq!(l2.sets * l2.assoc * cfg.line_size, cfg.l2_size);
    }
}
