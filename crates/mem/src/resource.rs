//! Reservation-timeline resources — the contention primitive.
//!
//! A [`Resource`] is anything that can serve one request at a time for a
//! fixed occupancy (a cache bank, a directory controller, a network link, a
//! memory channel). Requests reserve the earliest gap in the resource's
//! timeline that fits their occupancy, at or after their arrival time.
//!
//! The timeline keeps *intervals*, not just a busy-until horizon: cache-fill
//! reservations land in the future (when the line returns), and accesses
//! arriving in the meantime must be able to use the idle slots in between —
//! a pure horizon model would charge them phantom queueing.
//!
//! A [`MultiResource`] is `k` interchangeable copies (e.g. MSHR slots)
//! served earliest-free-first.

/// A single resource with an interval-based reservation timeline.
#[derive(Debug, Clone, Default)]
pub struct Resource {
    /// Sorted, disjoint busy intervals `[start, end)` still in the future.
    intervals: Vec<(u64, u64)>,
    total_wait: u64,
    uses: u64,
}

impl Resource {
    /// New, idle resource.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the resource at time `now` for `occupancy` cycles: takes the
    /// earliest gap of that length at or after `now`. Returns the cycle at
    /// which service starts (≥ `now`).
    pub fn reserve(&mut self, now: u64, occupancy: u64) -> u64 {
        // Drop intervals entirely in the past.
        let first_live = self.intervals.partition_point(|&(_, e)| e <= now);
        if first_live > 0 {
            self.intervals.drain(..first_live);
        }
        let mut start = now;
        let mut insert_at = self.intervals.len();
        for (i, &(s, e)) in self.intervals.iter().enumerate() {
            if start + occupancy <= s {
                insert_at = i;
                break;
            }
            start = start.max(e);
        }
        self.intervals.insert(insert_at, (start, start + occupancy));
        // Merge with neighbours that touch (keeps the list compact).
        if insert_at + 1 < self.intervals.len()
            && self.intervals[insert_at].1 == self.intervals[insert_at + 1].0
        {
            self.intervals[insert_at].1 = self.intervals[insert_at + 1].1;
            self.intervals.remove(insert_at + 1);
        }
        if insert_at > 0 && self.intervals[insert_at - 1].1 == self.intervals[insert_at].0 {
            self.intervals[insert_at - 1].1 = self.intervals[insert_at].1;
            self.intervals.remove(insert_at);
        }
        self.total_wait += start - now;
        self.uses += 1;
        start
    }

    /// When the resource's last current reservation ends.
    pub fn free_at(&self) -> u64 {
        self.intervals.last().map_or(0, |&(_, e)| e)
    }

    /// Cumulative cycles requests spent queued on this resource.
    pub fn total_wait(&self) -> u64 {
        self.total_wait
    }

    /// Number of reservations made.
    pub fn uses(&self) -> u64 {
        self.uses
    }
}

/// `k` interchangeable copies of a resource; a reservation takes the copy
/// that can start earliest.
#[derive(Debug, Clone)]
pub struct MultiResource {
    slots: Vec<u64>,
    total_wait: u64,
    uses: u64,
}

impl MultiResource {
    /// Create with `k ≥ 1` slots.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "MultiResource needs at least one slot");
        Self {
            slots: vec![0; k],
            total_wait: 0,
            uses: 0,
        }
    }

    /// Reserve any slot at `now` for `occupancy`; returns service start.
    #[inline]
    pub fn reserve(&mut self, now: u64, occupancy: u64) -> u64 {
        // k is small (≤ 32); a linear scan beats a heap here.
        let (best, _) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("non-empty");
        let start = now.max(self.slots[best]);
        self.slots[best] = start + occupancy;
        self.total_wait += start - now;
        self.uses += 1;
        start
    }

    /// Number of slots free at time `now`.
    pub fn free_slots(&self, now: u64) -> usize {
        self.slots.iter().filter(|&&t| t <= now).count()
    }

    /// Cumulative queueing delay.
    pub fn total_wait(&self) -> u64 {
        self.total_wait
    }

    /// Number of reservations made.
    pub fn uses(&self) -> u64 {
        self.uses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = Resource::new();
        assert_eq!(r.reserve(10, 3), 10);
        assert_eq!(r.free_at(), 13);
        assert_eq!(r.total_wait(), 0);
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = Resource::new();
        assert_eq!(r.reserve(0, 5), 0);
        assert_eq!(r.reserve(1, 5), 5); // waits 4
        assert_eq!(r.reserve(2, 5), 10); // waits 8
        assert_eq!(r.total_wait(), 12);
        assert_eq!(r.uses(), 3);
    }

    #[test]
    fn resource_goes_idle_between_bursts() {
        let mut r = Resource::new();
        r.reserve(0, 2);
        assert_eq!(r.reserve(100, 2), 100);
    }

    #[test]
    fn future_reservation_leaves_earlier_gaps_usable() {
        let mut r = Resource::new();
        // A fill scheduled far in the future...
        assert_eq!(r.reserve(40, 8), 40);
        // ...must not delay a request arriving now.
        assert_eq!(r.reserve(2, 1), 2);
        assert_eq!(r.total_wait(), 0);
    }

    #[test]
    fn gap_too_small_pushes_past_the_interval() {
        let mut r = Resource::new();
        r.reserve(10, 5); // busy [10, 15)
                          // A 12-cycle job arriving at 5 does not fit in [5, 10); starts at 15.
        assert_eq!(r.reserve(5, 12), 15);
        // A 3-cycle job arriving at 5 fits before.
        assert_eq!(r.reserve(5, 3), 5);
    }

    #[test]
    fn adjacent_intervals_merge() {
        let mut r = Resource::new();
        r.reserve(0, 5);
        r.reserve(5, 5);
        r.reserve(10, 5);
        assert_eq!(r.intervals.len(), 1);
        assert_eq!(r.free_at(), 15);
    }

    #[test]
    fn past_intervals_are_pruned() {
        let mut r = Resource::new();
        for t in 0..100 {
            r.reserve(t * 10, 2);
        }
        r.reserve(10_000, 1);
        assert!(r.intervals.len() <= 2, "{}", r.intervals.len());
    }

    #[test]
    fn multi_resource_overlaps_up_to_k() {
        let mut m = MultiResource::new(2);
        assert_eq!(m.reserve(0, 10), 0);
        assert_eq!(m.reserve(0, 10), 0); // second slot
        assert_eq!(m.reserve(0, 10), 10); // queued
        assert_eq!(m.total_wait(), 10);
    }

    #[test]
    fn multi_resource_free_slots() {
        let mut m = MultiResource::new(3);
        m.reserve(0, 5);
        m.reserve(0, 8);
        assert_eq!(m.free_slots(0), 1);
        assert_eq!(m.free_slots(5), 2);
        assert_eq!(m.free_slots(8), 3);
    }

    #[test]
    #[should_panic]
    fn zero_slot_multi_resource_rejected() {
        MultiResource::new(0);
    }
}
