//! Miss-status holding registers (MSHRs).
//!
//! The base core supports "up to 32 outstanding loads ... with full load
//! bypassing enabled" (§3.1). The MSHR file enforces that limit and merges
//! secondary misses: a second load to a line that is already being fetched
//! does not consume a new entry or issue new traffic — it completes when the
//! primary miss returns.

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// New entry allocated; the caller must perform the downstream access.
    /// Carries the time at which the entry became available (≥ request time
    /// if the file was full and the request had to queue for a slot).
    Primary {
        /// Time the entry became available.
        start: u64,
    },
    /// Merged with an in-flight miss to the same line; completes at the
    /// primary's completion time.
    Secondary {
        /// Completion time inherited from the primary miss.
        complete_at: u64,
    },
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    line: u64,
    complete_at: u64,
}

/// Fixed-capacity MSHR file.
#[derive(Debug, Clone)]
pub struct MshrFile {
    entries: Vec<Entry>,
    capacity: usize,
    merges: u64,
    allocations: u64,
    full_stall_cycles: u64,
}

impl MshrFile {
    /// File with `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            merges: 0,
            allocations: 0,
            full_stall_cycles: 0,
        }
    }

    /// Drop entries whose miss has completed by `now`.
    fn expire(&mut self, now: u64) {
        self.entries.retain(|e| e.complete_at > now);
    }

    /// Present a miss on `line` at time `now`.
    ///
    /// If an entry for `line` is in flight, merge. Otherwise allocate; if
    /// the file is full, the request waits until the earliest entry retires
    /// (returned via `Primary::start`).
    pub fn request(&mut self, line: u64, now: u64) -> MshrOutcome {
        self.expire(now);
        if let Some(e) = self.entries.iter().find(|e| e.line == line) {
            self.merges += 1;
            return MshrOutcome::Secondary {
                complete_at: e.complete_at,
            };
        }
        let start = if self.entries.len() >= self.capacity {
            let earliest = self
                .entries
                .iter()
                .map(|e| e.complete_at)
                .min()
                .expect("full file is non-empty");
            self.full_stall_cycles += earliest - now;
            // That entry will have retired by `earliest`; evict it now so the
            // new entry can be recorded.
            let pos = self
                .entries
                .iter()
                .position(|e| e.complete_at == earliest)
                .expect("present");
            self.entries.swap_remove(pos);
            earliest
        } else {
            now
        };
        self.allocations += 1;
        MshrOutcome::Primary { start }
    }

    /// Record the completion time of a primary miss (call after the
    /// downstream latency is known).
    pub fn complete(&mut self, line: u64, complete_at: u64) {
        self.entries.push(Entry { line, complete_at });
        debug_assert!(self.entries.len() <= self.capacity);
    }

    /// Completion time of an in-flight miss on `line`, if any.
    ///
    /// The tag arrays allocate a line as soon as its miss is initiated, so
    /// the hierarchy must ask the MSHR file whether an apparent hit is in
    /// fact a line still in flight (a secondary miss).
    pub fn outstanding_complete(&mut self, line: u64, now: u64) -> Option<u64> {
        self.expire(now);
        self.entries
            .iter()
            .find(|e| e.line == line)
            .map(|e| e.complete_at)
    }

    /// Earliest completion time strictly after `now` among outstanding
    /// misses, or `u64::MAX` when nothing is in flight.
    ///
    /// Takes `&self`: expired entries are filtered out rather than
    /// dropped, so expiry stays lazy on the access path. Used by the
    /// machine's event-driven fast-forward to bound a stall skip.
    pub fn next_completion(&self, now: u64) -> u64 {
        self.entries
            .iter()
            .map(|e| e.complete_at)
            .filter(|&c| c > now)
            .min()
            .unwrap_or(u64::MAX)
    }

    /// Outstanding misses at `now`.
    pub fn outstanding(&mut self, now: u64) -> usize {
        self.expire(now);
        self.entries.len()
    }

    /// (primary allocations, secondary merges, cycles stalled on a full file).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.allocations, self.merges, self.full_stall_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary_merge() {
        let mut m = MshrFile::new(4);
        match m.request(10, 0) {
            MshrOutcome::Primary { start } => assert_eq!(start, 0),
            o => panic!("{o:?}"),
        }
        m.complete(10, 50);
        match m.request(10, 5) {
            MshrOutcome::Secondary { complete_at } => assert_eq!(complete_at, 50),
            o => panic!("{o:?}"),
        }
        assert_eq!(m.stats().1, 1);
    }

    #[test]
    fn entry_expires_after_completion() {
        let mut m = MshrFile::new(4);
        m.request(10, 0);
        m.complete(10, 50);
        // At t=60 the fill is done: a new access to line 10 is a fresh primary.
        match m.request(10, 60) {
            MshrOutcome::Primary { start } => assert_eq!(start, 60),
            o => panic!("{o:?}"),
        }
        assert_eq!(m.outstanding(60), 0);
    }

    #[test]
    fn full_file_delays_new_primaries() {
        let mut m = MshrFile::new(2);
        m.request(1, 0);
        m.complete(1, 100);
        m.request(2, 0);
        m.complete(2, 40);
        // File full; third distinct miss waits for the earliest (t=40).
        match m.request(3, 0) {
            MshrOutcome::Primary { start } => assert_eq!(start, 40),
            o => panic!("{o:?}"),
        }
        assert_eq!(m.stats().2, 40);
    }

    #[test]
    fn distinct_lines_use_distinct_entries() {
        let mut m = MshrFile::new(8);
        for line in 0..5 {
            assert!(matches!(m.request(line, 0), MshrOutcome::Primary { .. }));
            m.complete(line, 100);
        }
        assert_eq!(m.outstanding(0), 5);
        assert_eq!(m.stats().0, 5);
    }

    #[test]
    fn outstanding_counts_decay_over_time() {
        let mut m = MshrFile::new(8);
        m.request(1, 0);
        m.complete(1, 10);
        m.request(2, 0);
        m.complete(2, 20);
        assert_eq!(m.outstanding(5), 2);
        assert_eq!(m.outstanding(15), 1);
        assert_eq!(m.outstanding(25), 0);
    }
}
