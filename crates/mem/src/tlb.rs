//! Translation lookaside buffer.
//!
//! §3.4: "the 512-entry TLB is shared by all threads and is fully
//! associative and uses random replacement." Fully associative lookup is
//! modelled with a hash set plus a FIFO-ordered slot vector; the victim on a
//! fill is chosen uniformly at random from a deterministic PRNG.

use csmt_isa::{FxHashMap, SplitMix64};

/// Fully associative TLB with random replacement.
#[derive(Debug, Clone)]
pub struct Tlb {
    /// page -> slot index, for O(1) lookup. Deterministic fixed-seed Fx
    /// hashing: this map sits on every memory access and is never
    /// iterated, so the std SipHash + random seed buys nothing here.
    map: FxHashMap<u64, usize>,
    /// slot -> page.
    slots: Vec<u64>,
    capacity: usize,
    rng: SplitMix64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// TLB with `capacity` entries and a deterministic replacement stream.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity >= 1);
        let mut map = FxHashMap::default();
        map.reserve(capacity * 2);
        Self {
            map,
            slots: Vec::with_capacity(capacity),
            capacity,
            rng: SplitMix64::new(seed),
            hits: 0,
            misses: 0,
        }
    }

    /// Translate `page`; returns true on hit. On a miss the page is filled,
    /// evicting a uniformly random victim when full.
    pub fn access(&mut self, page: u64) -> bool {
        if self.map.contains_key(&page) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.slots.len() < self.capacity {
            self.map.insert(page, self.slots.len());
            self.slots.push(page);
        } else {
            let victim = self.rng.below_usize(self.capacity);
            let old = self.slots[victim];
            self.map.remove(&old);
            self.map.insert(page, victim);
            self.slots[victim] = page;
        }
        false
    }

    /// Entries currently resident.
    pub fn resident(&self) -> usize {
        self.slots.len()
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(4, 1);
        assert!(!t.access(100));
        assert!(t.access(100));
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn fills_to_capacity_without_eviction() {
        let mut t = Tlb::new(4, 1);
        for p in 0..4 {
            t.access(p);
        }
        assert_eq!(t.resident(), 4);
        for p in 0..4 {
            assert!(t.access(p), "page {p} should be resident");
        }
    }

    #[test]
    fn random_replacement_evicts_exactly_one() {
        let mut t = Tlb::new(4, 1);
        for p in 0..4 {
            t.access(p);
        }
        t.access(99); // evicts one of 0..4
        assert_eq!(t.resident(), 4);
        assert!(t.access(99));
        let survivors = (0..4).filter(|&p| t.map.contains_key(&p)).count();
        assert_eq!(survivors, 3);
    }

    #[test]
    fn replacement_is_deterministic_per_seed() {
        let run = |seed| {
            let mut t = Tlb::new(8, seed);
            let mut trace = Vec::new();
            for i in 0..100u64 {
                trace.push(t.access(i * 3 % 17));
            }
            trace
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn map_and_slots_stay_consistent() {
        let mut t = Tlb::new(3, 5);
        for i in 0..50u64 {
            t.access(i % 11);
            assert_eq!(t.map.len(), t.slots.len().min(3));
            for (slot, &page) in t.slots.iter().enumerate() {
                assert_eq!(t.map.get(&page), Some(&slot));
            }
        }
    }
}
