//! # csmt-mem — memory hierarchy and multiprocessor substrate
//!
//! Implements everything under the processor pipeline in Krishnan &
//! Torrellas (IPPS 1998): the banked non-blocking cache hierarchy of §3.4 /
//! Table 3, the shared TLB, and the DASH-like CC-NUMA substrate of Figure 3
//! (per-node memory + full-map directory, remote-L2 cache-to-cache
//! transfers, interconnect contention).
//!
//! ## Timing model
//!
//! The paper "models contention in great detail" inside an execution-driven
//! simulator. We reproduce the same queueing behaviour with *reservation
//! timelines*: every shared resource (cache bank, MSHR slot, directory,
//! network link, memory channel) is a [`resource::Resource`] that accesses
//! reserve in arrival order. An access's completion time is the Table 3
//! no-contention round-trip latency of the level that services it, plus any
//! time spent waiting for resources — exactly the quantity a message-level
//! simulator would produce for FIFO resources, without the message plumbing.
//! The substitution is documented in `DESIGN.md` §2.
//!
//! The public entry point is [`hierarchy::MemorySystem`].

//! ```
//! use csmt_mem::{AccessKind, MemConfig, MemorySystem};
//!
//! let mut mem = MemorySystem::new(MemConfig::table3(), 1, 42);
//! // Cold access: TLB walk + local memory round trip.
//! let cold = mem.access(0, 0x4000, AccessKind::Read, 0);
//! assert!(cold.complete_at >= 40);
//! // Warm re-access long after the fill: a 1-cycle L1 hit.
//! let warm = mem.access(0, 0x4000, AccessKind::Read, 10_000);
//! assert_eq!(warm.complete_at, 10_001);
//! ```

pub mod cache;
pub mod config;
pub mod directory;
pub mod hierarchy;
pub mod mshr;
pub mod resource;
pub mod stats;
pub mod tlb;

pub use cache::Replacement;
pub use config::MemConfig;
pub use hierarchy::{AccessKind, AccessOutcome, MemorySystem, ServicedBy};
pub use stats::MemStats;
