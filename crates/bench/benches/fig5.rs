//! Criterion bench for Figure 5's sweep: (application × architecture) on
//! the 4-chip high-end machine. Deterministic cycle counts come from
//! `cargo run --release --bin fig5_fa_highend`; this tracks simulator
//! throughput with the DASH directory and 32 threads in play.

use criterion::{criterion_group, criterion_main, Criterion};
use csmt_core::ArchKind;
use csmt_workloads::{all_apps, simulate};
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.1;

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_fa_highend");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for app in all_apps() {
        for arch in ArchKind::FA_FIGURES {
            g.bench_function(format!("{}/{}", app.name, arch.name()), |b| {
                b.iter(|| black_box(simulate(&app, arch, 4, SCALE, 7).cycles));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
