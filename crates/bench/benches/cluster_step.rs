//! Raw `Cluster::step` throughput (steps/second) — the number the staged
//! pipeline refactor must improve.
//!
//! Two scenarios drive one cluster directly (no Machine/Runtime overhead):
//!
//! - `smt1_full_window`: the centralized 8-issue SMT with 8 threads of
//!   load + FP-chain work. The 128-entry window stays full of waiting
//!   instructions — the worst case for full-window completion scans,
//!   wakeup broadcasts and select rescans.
//! - `smt2_cluster`: one 4-issue/4-thread cluster of the paper's headline
//!   SMT2 with the same mix — the shape every figure spends its time on.
//!
//! Besides the criterion timings, the bench measures aggregate steps/sec
//! directly and prints one summary line per scenario; set
//! `CSMT_BENCH_JSON=<path>` to also write them as JSON (the recorded
//! pre/post-refactor numbers live in `BENCH_cluster_step.json`).

use criterion::{criterion_group, Criterion};
use csmt_cpu::{Cluster, ClusterConfig};
use csmt_isa::stream::VecStream;
use csmt_isa::{ArchReg, DynInst, OpClass};
use csmt_mem::{MemConfig, MemorySystem};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-thread instruction mix: a load feeding an FP chain, an independent
/// FP chain, independent integer work, and a well-predicted branch every
/// 8 instructions. Keeps the window populated with a blend of waiting,
/// executing and ready entries.
fn stream(tid: u64, n: u64) -> Vec<DynInst> {
    let base = tid << 20;
    let mut v = Vec::with_capacity(n as usize * 5);
    for i in 0..n {
        let pc = base + i * 20;
        v.push(DynInst::load(
            pc,
            ArchReg::Fp(1),
            base + (i * 72) % 32768,
            [None, None],
        ));
        v.push(DynInst::alu(
            pc + 4,
            OpClass::FpAdd,
            Some(ArchReg::Fp(2)),
            [Some(ArchReg::Fp(1)), Some(ArchReg::Fp(2))],
        ));
        v.push(DynInst::alu(
            pc + 8,
            OpClass::FpMul,
            Some(ArchReg::Fp(3)),
            [Some(ArchReg::Fp(3)), None],
        ));
        v.push(DynInst::alu(
            pc + 12,
            OpClass::IntAlu,
            Some(ArchReg::Int(1 + (i % 8) as u8)),
            [None, None],
        ));
        if i % 8 == 7 {
            v.push(DynInst::branch(pc + 16, true, base, [None, None]));
        } else {
            v.push(DynInst::store(
                pc + 16,
                base + (i * 72) % 32768,
                [None, None],
            ));
        }
    }
    v
}

/// Run one cluster to completion; returns cycles stepped.
fn run_cluster(width: usize, threads: usize, insts_per_thread: u64) -> u64 {
    let mut c = Cluster::new(ClusterConfig::for_width(width, threads), 0xC5_317);
    let mut mem = MemorySystem::new(MemConfig::table3(), 1, 7);
    for t in 0..threads {
        c.attach_thread(
            t,
            Box::new(VecStream::new(stream(t as u64, insts_per_thread))),
        );
    }
    let mut events = Vec::new();
    let mut now = 0u64;
    while c.busy() {
        c.step(now, &mut mem, 0, &mut events);
        events.clear();
        now += 1;
    }
    now
}

const SCENARIOS: [(&str, usize, usize, u64); 2] = [
    ("smt1_full_window", 8, 8, 1500),
    ("smt2_cluster", 4, 4, 1500),
];

fn bench_cluster_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_step");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (name, width, threads, n) in SCENARIOS {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_cluster(width, threads, n)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cluster_step);

/// Direct steps/sec measurement (aggregate over several full runs),
/// printed per scenario and optionally dumped as JSON.
fn steps_per_sec_summary(test_mode: bool) {
    let reps = if test_mode { 1 } else { 8 };
    let mut report = Vec::new();
    for (name, width, threads, n) in SCENARIOS {
        // Warm-up run, then timed repetitions.
        let mut cycles = black_box(run_cluster(width, threads, n));
        let t0 = Instant::now();
        let mut total_cycles = 0u64;
        for _ in 0..reps {
            cycles = black_box(run_cluster(width, threads, n));
            total_cycles += cycles;
        }
        let secs = t0.elapsed().as_secs_f64();
        let sps = total_cycles as f64 / secs;
        println!("cluster_step/{name}: {sps:.0} steps/sec ({cycles} cycles/run)");
        report.push(format!(
            "    {{\"scenario\": \"{name}\", \"steps_per_sec\": {sps:.0}, \"cycles_per_run\": {cycles}}}"
        ));
    }
    if let Some(path) = std::env::var_os("CSMT_BENCH_JSON") {
        let body = format!("[\n{}\n]\n", report.join(",\n"));
        std::fs::write(&path, body).expect("CSMT_BENCH_JSON must be writable");
        eprintln!("wrote {}", path.to_string_lossy());
    }
}

fn main() {
    benches();
    let test_mode = std::env::args().any(|a| a == "--test");
    steps_per_sec_summary(test_mode);
}
