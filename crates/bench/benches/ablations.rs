//! Ablation benches for the design choices DESIGN.md calls out: cache bank
//! count, MSHR (outstanding-load) budget, and remote latency. Each variant
//! simulates ocean on SMT2 (the configuration most sensitive to the memory
//! system). Deterministic cycle impacts are printed by
//! `cargo run --release --bin ablation_study`; this tracks wall time.

use criterion::{criterion_group, criterion_main, Criterion};
use csmt_core::ArchKind;
use csmt_mem::MemConfig;
use csmt_workloads::{apps, runner::simulate_with_mem};
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.1;

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    let app = apps::ocean();
    let variants: Vec<(&str, MemConfig)> = vec![
        ("baseline_table3", MemConfig::table3()),
        (
            "banks_1",
            MemConfig {
                l1_banks: 1,
                l2_banks: 1,
                ..MemConfig::table3()
            },
        ),
        (
            "banks_16",
            MemConfig {
                l1_banks: 16,
                l2_banks: 16,
                ..MemConfig::table3()
            },
        ),
        (
            "mshr_4",
            MemConfig {
                max_outstanding_loads: 4,
                ..MemConfig::table3()
            },
        ),
        (
            "remote_2x",
            MemConfig {
                remote_mem_latency: 120,
                remote_l2_latency: 150,
                ..MemConfig::table3()
            },
        ),
        (
            "no_fill_occupancy",
            MemConfig {
                fill_time: 0,
                ..MemConfig::table3()
            },
        ),
    ];
    for (name, cfg) in variants {
        g.bench_function(format!("ocean_smt2_4chip/{name}"), |b| {
            b.iter(|| {
                black_box(simulate_with_mem(&app, ArchKind::Smt2, 4, SCALE, 7, cfg.clone()).cycles)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
