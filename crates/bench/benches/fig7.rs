//! Criterion bench for Figure 7's sweep: the four SMT variants
//! (SMT8/SMT4/SMT2/SMT1) on the low-end machine. Deterministic cycle
//! counts come from `cargo run --release --bin fig7_smt_lowend`.

use criterion::{criterion_group, criterion_main, Criterion};
use csmt_core::ArchKind;
use csmt_workloads::{all_apps, simulate};
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.1;

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_smt_lowend");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for app in all_apps() {
        for arch in ArchKind::SMT_FIGURES {
            g.bench_function(format!("{}/{}", app.name, arch.name()), |b| {
                b.iter(|| black_box(simulate(&app, arch, 1, SCALE, 7).cycles));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
