//! End-to-end `Machine` throughput (machine cycles simulated per second)
//! with the event-driven stall fast-forward on vs. off — the number the
//! fast-forward must improve.
//!
//! Two scenarios run whole machines on a memory-bound workload: per-thread
//! *serial* chains of address-dependent loads (each load's address depends
//! on the previous load's result) striding past the page size over a
//! multi-megabyte private footprint. Every load TLB-misses and walks deep
//! into the hierarchy, so the pipeline spends almost all of its time with
//! nothing to issue, fetch blocked on a full window, and nothing to retire
//! — exactly the all-stalled state the fast-forward skips:
//!
//! - `smt2_lowend`: the paper's headline low-end machine (1 chip, SMT2,
//!   8 threads).
//! - `fa4_highend_membound`: the high-end machine at its most
//!   communication-heavy (4 chips, FA4, 16 threads), where remote misses
//!   stretch each stall by hundreds of network cycles.
//!
//! Both configurations are timed with the fast-forward disabled (the
//! cycle-by-cycle baseline) and enabled; results are bit-for-bit identical
//! either way (`tests/fastforward_equiv.rs` proves it), so the ratio is
//! pure simulator speedup. Set `CSMT_BENCH_JSON=<path>` to dump the
//! summary as JSON (recorded numbers live in `BENCH_machine_step.json`).
//!
//! A third section times the two-phase parallel cluster step (DESIGN.md
//! §15) against the serial loop on the membound high-end machine and on
//! `fa4_active_4chip`, an active-heavy 4-chip scenario (independent FP
//! dependence chains, near-zero stall time) where the cluster phase is
//! nearly all of the per-cycle work — the best case for parallel
//! stepping. Results are bit-for-bit identical in both modes
//! (`tests/parallel_equiv.rs` proves it), so the ratio is pure simulator
//! speedup; the dump records the worker-thread count alongside, since
//! the ratio is meaningless without it (a 1-CPU host records tape
//! recording + replay overhead, not a speedup).

use criterion::{criterion_group, Criterion};
use csmt_core::{ArchKind, Machine};
use csmt_isa::stream::VecStream;
use csmt_isa::{ArchReg, DynInst, InstStream, OpClass, SyncOp};
use csmt_mem::MemConfig;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Stride between consecutive loads: one page plus one line, so every
/// access touches a new page (TLB miss) and a new set (cache miss).
const STRIDE: u64 = 4096 + 64;

/// One thread's program: a serial chain of `n` address-dependent loads
/// (`Fp(1) <- load [Fp(1)]`) over a private footprint based at
/// `tid << 24`, closed by an explicit exit.
fn serial_load_chain(tid: u64, n: u64) -> Box<dyn InstStream + Send> {
    let base = tid << 24;
    let mut v = Vec::with_capacity(n as usize + 1);
    for i in 0..n {
        v.push(DynInst::load(
            base + i * 4,
            ArchReg::Fp(1),
            base + i * STRIDE,
            [Some(ArchReg::Fp(1)), None],
        ));
    }
    v.push(DynInst::sync(base + n * 4, SyncOp::Exit));
    Box::new(VecStream::new(v))
}

/// One thread's program for the active-heavy scenario: `n` FP adds
/// spread over eight independent dependence chains (one per rotating
/// destination register), no memory traffic at all — every cluster has
/// work to issue every cycle, so the machine almost never stalls and
/// the cluster phase dominates the step.
fn compute_chain(tid: u64, n: u64) -> Box<dyn InstStream + Send> {
    let base = tid << 24;
    let mut v = Vec::with_capacity(n as usize + 1);
    for i in 0..n {
        let r = ArchReg::Fp(1 + (i % 8) as u8);
        v.push(DynInst::alu(
            base + i * 4,
            OpClass::FpAdd,
            Some(r),
            [Some(r), None],
        ));
    }
    v.push(DynInst::sync(base + n * 4, SyncOp::Exit));
    Box::new(VecStream::new(v))
}

/// (name, architecture, chips, loads per thread).
const SCENARIOS: [(&str, ArchKind, usize, u64); 2] = [
    ("smt2_lowend", ArchKind::Smt2, 1, 1200),
    ("fa4_highend_membound", ArchKind::Fa4, 4, 1200),
];

/// The serial-vs-parallel comparison points: (name, architecture,
/// chips, instructions per thread, active-heavy?).
const PARALLEL_SCENARIOS: [(&str, ArchKind, usize, u64, bool); 2] = [
    ("fa4_membound_parallel", ArchKind::Fa4, 4, 1200, false),
    ("fa4_active_4chip", ArchKind::Fa4, 4, 8000, true),
];

/// Run one scenario to completion; returns machine cycles simulated.
fn run_machine(kind: ArchKind, chips: usize, loads: u64, fastforward: bool) -> u64 {
    run_machine_sched(kind, chips, loads, fastforward, "static")
}

/// [`run_machine`] through an explicit thread-to-cluster scheduling policy
/// (the `sched_overhead` gate scenarios).
fn run_machine_sched(
    kind: ArchKind,
    chips: usize,
    loads: u64,
    fastforward: bool,
    policy: &str,
) -> u64 {
    let mut m = Machine::new(kind.chip(), chips, MemConfig::table3(), 0xC5_317);
    m.set_scheduler(csmt_core::sched::by_name(policy).expect("known policy"))
        .expect("policy valid for this arch");
    m.set_fastforward(fastforward);
    let threads = m.hw_thread_capacity();
    m.attach_threads(
        (0..threads)
            .map(|t| serial_load_chain(t as u64, loads))
            .collect(),
    );
    m.run(2_000_000_000).cycles
}

/// One run with the two-phase parallel step forced on or off; the
/// worker count stays at the environment default (`CSMT_THREADS`, else
/// host parallelism clamped to the cluster count). Fast-forward stays
/// at its default (on) in both modes, so the ratio isolates the cluster
/// phase.
fn run_machine_par(kind: ArchKind, chips: usize, insts: u64, active: bool, parallel: bool) -> u64 {
    let mut m = Machine::new(kind.chip(), chips, MemConfig::table3(), 0xC5_317);
    m.set_parallel(parallel);
    let threads = m.hw_thread_capacity();
    let gen = if active {
        compute_chain
    } else {
        serial_load_chain
    };
    m.attach_threads((0..threads).map(|t| gen(t as u64, insts)).collect());
    m.run(2_000_000_000).cycles
}

fn bench_machine_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_step");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for (name, kind, chips, loads) in SCENARIOS {
        for (mode, ff) in [("stepped", false), ("fastforward", true)] {
            g.bench_function(format!("{name}/{mode}"), |b| {
                b.iter(|| black_box(run_machine(kind, chips, loads, ff)));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_machine_step);

/// Direct cycles/sec measurement (aggregate over several full runs),
/// printed per scenario and mode, and optionally dumped as JSON.
fn steps_per_sec_summary(test_mode: bool) {
    let reps = if test_mode { 1 } else { 5 };
    let mut report = Vec::new();
    for (name, kind, chips, loads) in SCENARIOS {
        let mut by_mode = [0.0f64; 2];
        let mut cycles = 0;
        for (k, (mode, ff)) in [("stepped", false), ("fastforward", true)]
            .into_iter()
            .enumerate()
        {
            // Warm-up run, then timed repetitions.
            cycles = black_box(run_machine(kind, chips, loads, ff));
            let t0 = Instant::now();
            let mut total_cycles = 0u64;
            for _ in 0..reps {
                cycles = black_box(run_machine(kind, chips, loads, ff));
                total_cycles += cycles;
            }
            let secs = t0.elapsed().as_secs_f64();
            let sps = total_cycles as f64 / secs;
            by_mode[k] = sps;
            println!("machine_step/{name}/{mode}: {sps:.0} cycles/sec ({cycles} cycles/run)");
        }
        let speedup = by_mode[1] / by_mode[0];
        println!("machine_step/{name}: fastforward speedup {speedup:.2}x");
        report.push(format!(
            "    {{\"scenario\": \"{name}\", \"stepped_cycles_per_sec\": {:.0}, \
             \"fastforward_cycles_per_sec\": {:.0}, \"speedup\": {speedup:.2}, \
             \"cycles_per_run\": {cycles}}}",
            by_mode[0], by_mode[1]
        ));
    }
    // Scheduler-seam cost: the smt2_lowend workload again, through the
    // pluggable scheduler. `static` must match smt2_lowend/fastforward
    // bit-for-bit and within noise of its throughput (the seam is one
    // branch per loop iteration); `hazard_pairing` additionally pays the
    // epoch snapshot/rebalance every quantum (no migrations fire — the
    // threads are identical — so cycles stay bit-for-bit too).
    for (name, policy) in [
        ("smt2_sched_static", "static"),
        ("smt2_sched_hazard", "hazard_pairing"),
    ] {
        let (kind, chips, loads) = (ArchKind::Smt2, 1, 1200);
        let mut cycles = black_box(run_machine_sched(kind, chips, loads, true, policy));
        let t0 = Instant::now();
        let mut total_cycles = 0u64;
        for _ in 0..reps {
            cycles = black_box(run_machine_sched(kind, chips, loads, true, policy));
            total_cycles += cycles;
        }
        let secs = t0.elapsed().as_secs_f64();
        let sps = total_cycles as f64 / secs;
        println!("machine_step/{name}: {sps:.0} cycles/sec ({cycles} cycles/run)");
        report.push(format!(
            "    {{\"scenario\": \"{name}\", \"steps_per_sec\": {sps:.0}, \
             \"cycles_per_run\": {cycles}}}"
        ));
    }
    // Two-phase parallel step: serial cluster loop vs the record/replay
    // split, same machine, same workload (DESIGN.md §15). The recorded
    // worker count qualifies the ratio: on a single-CPU host the engine
    // records tapes inline, so the "speedup" is the tape overhead
    // (expected ≲1×), while multi-core hosts see the cluster phase
    // scale across workers.
    let par_threads =
        Machine::new(ArchKind::Fa4.chip(), 4, MemConfig::table3(), 0xC5_317).parallel_threads();
    for (name, kind, chips, insts, active) in PARALLEL_SCENARIOS {
        let mut by_mode = [0.0f64; 2];
        let mut cycles = 0;
        for (k, par) in [false, true].into_iter().enumerate() {
            cycles = black_box(run_machine_par(kind, chips, insts, active, par));
            let t0 = Instant::now();
            let mut total_cycles = 0u64;
            for _ in 0..reps {
                cycles = black_box(run_machine_par(kind, chips, insts, active, par));
                total_cycles += cycles;
            }
            let secs = t0.elapsed().as_secs_f64();
            let sps = total_cycles as f64 / secs;
            by_mode[k] = sps;
            let mode = if par { "parallel" } else { "serial" };
            println!("machine_step/{name}/{mode}: {sps:.0} cycles/sec ({cycles} cycles/run)");
        }
        let speedup = by_mode[1] / by_mode[0];
        println!(
            "machine_step/{name}: parallel speedup {speedup:.2}x ({par_threads} worker thread(s))"
        );
        report.push(format!(
            "    {{\"scenario\": \"{name}\", \"serial_cycles_per_sec\": {:.0}, \
             \"steps_per_sec\": {:.0}, \"speedup\": {speedup:.2}, \
             \"threads\": {par_threads}, \"cycles_per_run\": {cycles}}}",
            by_mode[0], by_mode[1]
        ));
    }
    if let Some(path) = std::env::var_os("CSMT_BENCH_JSON") {
        let body = format!("[\n{}\n]\n", report.join(",\n"));
        std::fs::write(&path, body).expect("CSMT_BENCH_JSON must be writable");
        eprintln!("wrote {}", path.to_string_lossy());
    }
}

fn main() {
    benches();
    let test_mode = std::env::args().any(|a| a == "--test");
    steps_per_sec_summary(test_mode);
}
