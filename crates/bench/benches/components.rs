//! Microbenchmarks of the simulator's substrates — the pieces that
//! implement Tables 1–3 — so hot-path regressions are caught independently
//! of whole-figure runs: cache tag access, TLB translate, branch predictor,
//! directory transactions, memory-system access, one cluster cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use csmt_cpu::{BranchPredictor, Cluster, ClusterConfig};
use csmt_isa::stream::CycleStream;
use csmt_isa::{ArchReg, DynInst, OpClass, SplitMix64};
use csmt_mem::cache::Cache;
use csmt_mem::directory::Directory;
use csmt_mem::tlb::Tlb;
use csmt_mem::{AccessKind, MemConfig, MemorySystem};
use std::hint::black_box;
use std::time::Duration;

fn fast(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(700));
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/cache");
    fast(&mut g);
    g.bench_function("l1_access_mixed", |b| {
        let cfg = MemConfig::table3();
        let mut cache = Cache::l1(&cfg);
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let line = rng.below(1 << 14);
            black_box(cache.access(line, line.is_multiple_of(4)))
        });
    });
    g.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/tlb");
    fast(&mut g);
    g.bench_function("translate_512_entry", |b| {
        let mut tlb = Tlb::new(512, 3);
        let mut rng = SplitMix64::new(2);
        b.iter(|| black_box(tlb.access(rng.below(2048))));
    });
    g.finish();
}

fn bench_bpred(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/bpred");
    fast(&mut g);
    g.bench_function("predict_resolve", |b| {
        let mut p = BranchPredictor::new();
        let mut rng = SplitMix64::new(3);
        b.iter(|| {
            let pc = rng.below(1 << 16) * 4;
            let taken = rng.chance(0.6);
            let pred = p.predict(pc);
            p.resolve(pc, taken, pc + 64, pred != taken);
            black_box(pred)
        });
    });
    g.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/directory");
    fast(&mut g);
    g.bench_function("read_write_4node", |b| {
        let mut d = Directory::new(4, 64);
        let mut rng = SplitMix64::new(4);
        b.iter(|| {
            let line = rng.below(1 << 12);
            let node = rng.below_usize(4);
            if rng.chance(0.3) {
                black_box(d.write(line, node))
            } else {
                black_box(d.read(line, node))
            }
        });
    });
    g.finish();
}

fn bench_memory_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/memory_system");
    fast(&mut g);
    g.bench_function("access_4node", |b| {
        let mut m = MemorySystem::new(MemConfig::table3(), 4, 5);
        let mut rng = SplitMix64::new(6);
        let mut now = 0u64;
        b.iter(|| {
            now += 2;
            let addr = rng.below(1 << 24);
            let node = rng.below_usize(4);
            let kind = if rng.chance(0.25) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            black_box(m.access(node, addr, kind, now))
        });
    });
    g.finish();
}

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("components/cluster");
    fast(&mut g);
    g.bench_function("smt2_cluster_1k_cycles", |b| {
        b.iter(|| {
            let mut cl = Cluster::new(ClusterConfig::for_width(4, 4), 1);
            let mut mem = MemorySystem::new(MemConfig::table3(), 1, 7);
            let body: Vec<DynInst> = (0..8)
                .map(|i| {
                    DynInst::alu(
                        i * 4,
                        OpClass::FpAdd,
                        Some(ArchReg::Fp(2 + (i % 4) as u8)),
                        [Some(ArchReg::Fp(1)), None],
                    )
                })
                .collect();
            for t in 0..4 {
                cl.attach_thread(t, Box::new(CycleStream::new(body.clone(), 2000)));
            }
            let mut events = Vec::new();
            for now in 0..1000 {
                cl.step(now, &mut mem, 0, &mut events);
            }
            black_box(cl.stats().committed)
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_tlb,
    bench_bpred,
    bench_directory,
    bench_memory_system,
    bench_cluster
);
criterion_main!(benches);
