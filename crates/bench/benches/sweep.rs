//! Sweep-engine throughput: cells/sec cold (every cell simulated and
//! stored) vs warm (every cell a content-addressed cache hit) on a
//! figure-scale grid — the number the result cache must improve.
//!
//! The grid is the FA-figure architecture set × all six applications at
//! the figure seed, one chip. Cold and warm runs return bit-identical
//! results (the bench asserts the aggregate cycle count matches, and
//! `cycles_per_run` equality in the gate re-checks it every CI run), so
//! the warm/cold ratio is pure cache win; `BENCH_sweep.json` records
//! both floors for `scripts/bench_gate.sh`, and the acceptance bar is
//! warm ≥ 10× cold. Set `CSMT_BENCH_JSON=<path>` to dump the summary.

use csmt_core::ArchKind;
use csmt_sweep::{ResultCache, SweepCell, SweepEngine};
use csmt_workloads::all_apps;
use std::time::Instant;

/// Work scale of the grid: figure-shaped but affordable in smoke mode.
const SCALE: f64 = 0.05;
/// The figure seed (`csmt_bench::FIGURE_SEED`).
const SEED: u64 = 0xC5_317;

/// The benchmark grid: FA figure set × all six applications.
fn grid() -> Vec<SweepCell> {
    let mut cells = Vec::new();
    for app in all_apps() {
        for arch in ArchKind::FA_FIGURES {
            cells.push(SweepCell {
                app: app.clone(),
                arch,
                n_chips: 1,
                seed: SEED,
                scale: SCALE,
                sched: "static".to_string(),
            });
        }
    }
    cells
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let warm_reps = if test_mode { 1 } else { 3 };
    let cells = grid();

    let dir = std::env::temp_dir().join(format!("csmt_sweep_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = ResultCache::new(&dir).expect("temp cache dir");
    let engine = SweepEngine::new(SweepEngine::from_env().threads(), Some(cache));

    // Cold: every cell simulates and stores.
    let t0 = Instant::now();
    let cold = engine.run(&cells);
    let cold_secs = t0.elapsed().as_secs_f64();
    assert_eq!(cold.misses, cells.len(), "cold run must start empty");
    let total_cycles: u64 = cold.results.iter().map(|r| r.cycles).sum();
    let cold_cps = cells.len() as f64 / cold_secs;
    println!(
        "sweep/cold: {cold_cps:.2} cells/sec ({} cells, {total_cycles} total cycles, {cold_secs:.2}s)",
        cells.len()
    );

    // Warm: every cell is a verified cache hit; results bit-identical.
    let t0 = Instant::now();
    let mut warm_cycles = 0;
    for _ in 0..warm_reps {
        let warm = engine.run(&cells);
        assert_eq!(warm.hits, cells.len(), "warm run must be pure hits");
        warm_cycles = warm.results.iter().map(|r| r.cycles).sum();
    }
    let warm_secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        warm_cycles, total_cycles,
        "cached results must be bit-identical to simulated ones"
    );
    let warm_cps = (cells.len() * warm_reps) as f64 / warm_secs;
    let ratio = warm_cps / cold_cps;
    println!("sweep/warm: {warm_cps:.0} cells/sec ({warm_reps} rep(s), {warm_secs:.3}s)");
    println!(
        "sweep: warm/cold {ratio:.0}x on {} worker(s)",
        engine.threads()
    );

    if let Some(path) = std::env::var_os("CSMT_BENCH_JSON") {
        let body = format!(
            "[\n    {{\"scenario\": \"sweep_cold\", \"steps_per_sec\": {cold_cps:.2}, \
             \"cycles_per_run\": {total_cycles}}},\n    \
             {{\"scenario\": \"sweep_warm\", \"steps_per_sec\": {warm_cps:.0}, \
             \"cycles_per_run\": {warm_cycles}, \"warm_over_cold\": {ratio:.1}}}\n]\n"
        );
        std::fs::write(&path, body).expect("CSMT_BENCH_JSON must be writable");
        eprintln!("wrote {}", std::path::Path::new(&path).display());
    }
    let _ = std::fs::remove_dir_all(&dir);
}
