//! Criterion bench for Figure 4's sweep: each (application × architecture)
//! cell of the low-end FA-vs-SMT2 comparison, at a reduced work scale so
//! the whole figure benches in minutes. The *cycle counts* the figure
//! reports are deterministic (regenerate with
//! `cargo run --release --bin fig4_fa_lowend`); this bench tracks the
//! simulator's wall-clock throughput on each cell.

use criterion::{criterion_group, criterion_main, Criterion};
use csmt_core::ArchKind;
use csmt_workloads::{all_apps, simulate};
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.1;

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_fa_lowend");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for app in all_apps() {
        for arch in ArchKind::FA_FIGURES {
            g.bench_function(format!("{}/{}", app.name, arch.name()), |b| {
                b.iter(|| black_box(simulate(&app, arch, 1, SCALE, 7).cycles));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
