//! A/B cost of the observability layer (csmt-trace): the same SMT2 run
//! with (a) the default [`csmt_trace::NullProbe`] — the path every figure
//! bench takes, which must monomorphize to the pre-probe code —
//! (b) a counting probe taking every event, and (c) an interval sampler
//! writing heartbeats to a sink. (a) is the number that must not regress:
//! the acceptance bar is ≤2% over historical figure-bench timings, and
//! since `simulate` *is* the NullProbe instantiation, any probe cost that
//! leaks into it shows up here first.

use criterion::{criterion_group, criterion_main, Criterion};
use csmt_core::ArchKind;
use csmt_trace::{
    CacheEvent, CycleStats, FetchEvent, IntervalSampler, NullProbe, Probe, StageEvent, SyncEvent,
};
use csmt_workloads::{by_name, simulate, simulate_probed};
use std::hint::black_box;
use std::time::Duration;

const SCALE: f64 = 0.02;

/// Counts every event kind — the cheapest probe that still forces all
/// event construction and dispatch to happen.
#[derive(Default)]
struct CountingProbe {
    insts: u64,
    cache: u64,
    cycles: u64,
}

impl Probe for CountingProbe {
    fn fetch(&mut self, _e: FetchEvent) {
        self.insts += 1;
    }
    fn rename(&mut self, _e: StageEvent) {
        self.insts += 1;
    }
    fn issue(&mut self, _e: StageEvent) {
        self.insts += 1;
    }
    fn writeback(&mut self, _e: StageEvent) {
        self.insts += 1;
    }
    fn commit(&mut self, _e: StageEvent) {
        self.insts += 1;
    }
    fn squash(&mut self, _e: StageEvent) {
        self.insts += 1;
    }
    fn cache_access(&mut self, _e: CacheEvent) {
        self.cache += 1;
    }
    fn sync_event(&mut self, _e: SyncEvent) {
        self.insts += 1;
    }
    fn cycle_end(&mut self, _cycle: u64, _stats: Option<&CycleStats>) {
        self.cycles += 1;
    }
}

fn fast(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

fn bench_probe_overhead(c: &mut Criterion) {
    let app = by_name("mgrid").expect("paper app");
    let chip = ArchKind::Smt2.chip();
    let mem = csmt_mem::MemConfig::table3;

    let mut g = c.benchmark_group("probe_overhead");
    fast(&mut g);
    g.bench_function("null_probe", |b| {
        b.iter(|| black_box(simulate(&app, ArchKind::Smt2, 1, SCALE, 7)));
    });
    g.bench_function("explicit_null_probe", |b| {
        // Must be identical to `null_probe`: same monomorphization.
        b.iter(|| {
            black_box(simulate_probed(
                &app,
                chip,
                1,
                SCALE,
                7,
                mem(),
                &mut NullProbe,
            ))
        });
    });
    g.bench_function("counting_probe", |b| {
        b.iter(|| {
            let mut p = CountingProbe::default();
            let r = simulate_probed(&app, chip, 1, SCALE, 7, mem(), &mut p);
            black_box((r.cycles, p.insts, p.cache, p.cycles))
        });
    });
    g.bench_function("interval_sampler_sink", |b| {
        b.iter(|| {
            let mut p = IntervalSampler::new(std::io::sink(), 1000);
            let r = simulate_probed(&app, chip, 1, SCALE, 7, mem(), &mut p);
            p.finish().unwrap();
            black_box(r.cycles)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_probe_overhead);
criterion_main!(benches);
