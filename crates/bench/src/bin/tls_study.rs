//! Thread-level-speculation study (extension; the authors' companion work,
//! paper reference [7]).
//!
//! A sequential pointer-chasing loop (no static parallelism, ILP ≈ 1.5) is
//! run speculatively across the contexts of each architecture; violations
//! replay their epoch and commits serialize through a token. Sweeping the
//! loop-carried dependence density shows where speculation pays.

use csmt_core::ArchKind;
use csmt_workloads::{simulate_tls, TlsLoop};

fn main() {
    let epochs: u64 = csmt_bench::arg_or(1, 240);
    let seq = simulate_tls(&TlsLoop::demo(epochs, 0.0), ArchKind::Fa1.chip(), 7);
    println!(
        "sequential baseline (FA1, 1 thread): {} cycles for {} epochs\n",
        seq.run.cycles, epochs
    );
    println!(
        "{:<8} {:<6} {:>10} {:>9} {:>11} {:>11}",
        "dep", "arch", "cycles", "speedup", "violations", "efficiency"
    );
    for dep in [0.0, 0.1, 0.3, 0.6, 0.9] {
        for arch in [
            ArchKind::Fa8,
            ArchKind::Smt4,
            ArchKind::Smt2,
            ArchKind::Smt1,
        ] {
            let l = TlsLoop::demo(epochs, dep);
            let r = simulate_tls(&l, arch.chip(), 7);
            println!(
                "{:<8.1} {:<6} {:>10} {:>8.2}x {:>11} {:>10.0}%",
                dep,
                arch.name(),
                r.run.cycles,
                seq.run.cycles as f64 / r.run.cycles as f64,
                r.violated_epochs,
                r.speculative_efficiency() * 100.0
            );
        }
        println!();
    }
    println!(
        "Dependence-free loops approach the thread count's speedup; rising\n\
         dependence density burns it in replays — the trade-off the\n\
         companion speculation paper explores on this same architecture."
    );
}
