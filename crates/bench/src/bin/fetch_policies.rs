//! Fetch-bottleneck ablation (paper §5.2 discussion).
//!
//! "This fetch bottleneck has been discussed in great detail by Tullsen et
//! al. They suggest several alternatives, such as partitioning the fetch
//! unit or using instruction count feedback techniques to use the fetch
//! unit more intelligently. The centralized SMT is more susceptible to this
//! problem than the clustered SMTs."
//!
//! This harness runs the SMT architectures under the three policies —
//! round-robin (paper baseline), ICOUNT feedback, and a 2-port partitioned
//! fetch — to quantify that susceptibility.

use csmt_core::ArchKind;
use csmt_cpu::FetchPolicy;
use csmt_mem::MemConfig;
use csmt_workloads::{all_apps, runner::simulate_with_chip};

fn main() {
    let scale = csmt_bench::scale_from_args_or(0.5);
    let policies = [
        ("round-robin", FetchPolicy::RoundRobin),
        ("icount", FetchPolicy::ICount),
        ("partitioned-2", FetchPolicy::Partitioned2),
    ];
    println!(
        "{:<6} {:<14} {:>14} {:>10} {:>10}",
        "arch", "fetch policy", "total cycles", "vs RR", "fetch-haz"
    );
    for arch in [ArchKind::Smt4, ArchKind::Smt2, ArchKind::Smt1] {
        let mut baseline = 0u64;
        for (name, policy) in policies {
            let chip = arch.chip().with_fetch_policy(policy);
            let mut cycles = 0u64;
            let mut fetch_haz = 0.0;
            for app in all_apps() {
                let r = simulate_with_chip(&app, chip, 1, scale, 7, MemConfig::table3());
                cycles += r.cycles;
                fetch_haz += r.hazard_fraction(csmt_cpu::Hazard::Fetch);
            }
            if policy == FetchPolicy::RoundRobin {
                baseline = cycles;
            }
            println!(
                "{:<6} {:<14} {:>14} {:>9.1}% {:>9.2}%",
                arch.name(),
                name,
                cycles,
                100.0 * cycles as f64 / baseline as f64 - 100.0,
                fetch_haz / 6.0 * 100.0
            );
        }
        println!();
    }
    println!(
        "A negative 'vs RR' means the smarter policy recovered part of the\n\
         fetch bottleneck; the centralized SMT1 should benefit the most,\n\
         the clustered SMT4 the least — the paper's susceptibility ordering."
    );
}
