//! Figure 7: centralized vs clustered SMT processors on the low-end
//! machine. SMT8 (= FA8), SMT4, SMT2 and the centralized SMT1, normalized
//! to SMT8 = 100.
//!
//! Paper shape to verify: cycles improve monotonically SMT8 → SMT1; SMT2 is
//! within 0–9% of SMT1; the fetch hazard grows from SMT4 toward SMT1 (the
//! shared-queue fetch bottleneck of Tullsen et al.).

use csmt_bench::{fetch_fraction, render_figure, run_figure, write_json};
use csmt_core::ArchKind;
use csmt_workloads::all_apps;

fn main() {
    let scale = csmt_bench::scale_from_args();
    let rows = run_figure(
        &ArchKind::SMT_FIGURES,
        &all_apps(),
        1,
        ArchKind::Smt8,
        scale,
    );
    if let Some(p) = write_json(&rows, "fig7") {
        eprintln!("wrote {}", p.display());
    }
    print!(
        "{}",
        render_figure(
            "Figure 7 — centralized vs clustered SMT, low-end machine (normalized to SMT8)",
            &rows
        )
    );
    for row in &rows {
        let smt1 = row.cell(ArchKind::Smt1);
        let smt2 = row.cell(ArchKind::Smt2);
        println!(
            "{:<8} SMT2 = {:.0} vs SMT1 = {:.0} ({:+.1}%)  fetch: SMT4 {:.1}% → SMT2 {:.1}% → SMT1 {:.1}%",
            row.app,
            smt2.normalized,
            smt1.normalized,
            100.0 * (smt2.normalized - smt1.normalized) / smt1.normalized,
            fetch_fraction(row.cell(ArchKind::Smt4)) * 100.0,
            fetch_fraction(smt2) * 100.0,
            fetch_fraction(smt1) * 100.0,
        );
    }
}
