//! Figure 6: ILP versus thread parallelism for the six applications,
//! measured exactly as the paper does — thread parallelism as the average
//! number of running threads on FA8 (the architecture enabling the most
//! thread parallelism), ILP as the average IPC on FA1 (the architecture
//! enabling the most ILP) — for the low-end (a) and high-end (b) machines.
//!
//! The analytic model (§2) is consulted for each measured point: which
//! architecture the model predicts best, versus which the simulator found
//! best, closing the loop of the paper's §5.1.1.

use csmt_bench::FIGURE_SEED;
use csmt_core::ArchKind;
use csmt_model::{AppPoint, ArchModel};
use csmt_workloads::{all_apps, simulate};

fn measure(n_chips: usize, scale: f64) {
    println!(
        "{:<8} {:>8} {:>8}   {:>12} {:>12}",
        "app", "threads", "ilp", "model best", "sim best FA"
    );
    for app in all_apps() {
        let fa8 = simulate(&app, ArchKind::Fa8, n_chips, scale, FIGURE_SEED);
        let fa1 = simulate(&app, ArchKind::Fa1, n_chips, scale, FIGURE_SEED);
        // Per-chip averages, as the paper plots single-processor charts.
        let threads = (fa8.avg_running_threads / n_chips as f64).max(0.05);
        let ilp = (fa1.ipc() / n_chips as f64).max(0.05);
        let point = AppPoint::new(threads, ilp);
        let fas = [
            ArchModel::Fa { clusters: 8 },
            ArchModel::Fa { clusters: 4 },
            ArchModel::Fa { clusters: 2 },
            ArchModel::Fa { clusters: 1 },
        ];
        let model_best = csmt_model::ranking(&fas, point)[0].0.name();
        // Simulated best FA.
        let mut best = (ArchKind::Fa8, u64::MAX);
        for arch in [ArchKind::Fa8, ArchKind::Fa4, ArchKind::Fa2, ArchKind::Fa1] {
            let r = simulate(&app, arch, n_chips, scale, FIGURE_SEED);
            if r.cycles < best.1 {
                best = (arch, r.cycles);
            }
        }
        println!(
            "{:<8} {:>8.2} {:>8.2}   {:>12} {:>12}",
            app.name,
            threads,
            ilp,
            model_best,
            best.0.name()
        );
    }
}

fn main() {
    let scale = csmt_bench::scale_from_args_or(1.0);
    println!("== Figure 6(a) — low-end machine ==");
    measure(1, scale);
    println!("\n== Figure 6(b) — high-end machine (per-chip averages) ==");
    measure(4, scale);
}
