//! Multiprogrammed-mix study (extension; the evaluation mode of the SMT
//! papers the paper builds on — Tullsen et al. [16], Lo et al. [9]).
//!
//! A fixed set of 8 independent sequential jobs is run on every
//! architecture; chips with fewer hardware contexts run the set in
//! capacity-sized batches (FA2 = 4 batches of 2), so the total work is
//! identical everywhere. With no barriers coupling the contexts this
//! isolates pure *resource-sharing* adaptivity: FA chips strand the slots
//! of whichever cluster's job stalls, SMT chips let any job absorb them.

use csmt_core::ArchKind;
use csmt_workloads::{all_apps, simulate_job_batches};

/// The studied architectures, in display order (FA8 is the baseline).
const ARCHS: [ArchKind; 7] = [
    ArchKind::Fa8,
    ArchKind::Fa4,
    ArchKind::Fa2,
    ArchKind::Fa1,
    ArchKind::Smt4,
    ArchKind::Smt2,
    ArchKind::Smt1,
];

fn main() {
    let scale = csmt_bench::scale_from_args_or(0.3);
    let apps = all_apps();
    let mixes: Vec<(&str, Vec<usize>)> = vec![
        ("8 jobs of swim+vpenta", vec![0, 3]),
        ("8 jobs of swim+vpenta+tomcatv+ocean", vec![0, 3, 1, 5]),
        ("8 jobs over all six applications", vec![0, 1, 2, 3, 4, 5]),
    ];
    const JOBS: usize = 8;
    // The full (mix × arch) grid through the bounded work-stealing sweep
    // pool; results come back in grid order, so output is byte-identical
    // to the old serial loop.
    let grids: Vec<Vec<_>> = {
        let mix_specs: Vec<Vec<_>> = mixes
            .iter()
            .map(|(_, idxs)| idxs.iter().map(|&i| apps[i].clone()).collect())
            .collect();
        let flat = csmt_sweep::pool::run_jobs(
            mix_specs.len() * ARCHS.len(),
            csmt_sweep::SweepEngine::from_env().threads(),
            |i| {
                let arch = ARCHS[i % ARCHS.len()];
                simulate_job_batches(&mix_specs[i / ARCHS.len()], JOBS, arch.chip(), 1, scale, 7)
            },
            |_, _| {},
        );
        flat.chunks(ARCHS.len()).map(<[_]>::to_vec).collect()
    };
    for ((name, _), row) in mixes.iter().zip(&grids) {
        println!("== {name} ==");
        println!(
            "{:<6} {:>8} {:>12} {:>12} {:>8}",
            "arch", "batches", "total cyc", "throughput", "vs FA8"
        );
        let base = row[0].total_cycles;
        for (arch, r) in ARCHS.iter().zip(row) {
            println!(
                "{:<6} {:>8} {:>12} {:>11.2} {:>7.0}%",
                arch.name(),
                r.batches,
                r.total_cycles,
                r.throughput(),
                100.0 * r.total_cycles as f64 / base as f64
            );
        }
        println!();
    }
    println!(
        "With independent jobs the SMT chips convert every stalled slot into\n\
         another job's progress; the FA chips cannot. This is the pure\n\
         resource-sharing half of the paper's flexibility argument, with the\n\
         thread-parallelism half (barriers, serial sections) removed."
    );
}
