//! §5.2 cycle-time adjustment: the paper's charts compare cycle counts at
//! equal clock, then argue that per Palacharla & Jouppi [12] an 8-issue
//! cluster's cycle time is about 2× a 4-issue cluster's (0.18 µm), while
//! 4-issue and narrower clusters cycle alike. This harness applies those
//! factors, turning the near-tie between SMT2 and SMT1 into the decisive
//! SMT2 win the paper concludes with.

use csmt_bench::{adjusted_time, cycle_time_factor, run_figure};
use csmt_core::ArchKind;
use csmt_workloads::all_apps;

fn main() {
    let scale = csmt_bench::scale_from_args();
    let archs = [
        ArchKind::Fa8,
        ArchKind::Fa4,
        ArchKind::Fa2,
        ArchKind::Fa1,
        ArchKind::Smt4,
        ArchKind::Smt2,
        ArchKind::Smt1,
    ];
    println!(
        "clock factors: {}",
        archs
            .map(|a| format!("{}={}", a.name(), cycle_time_factor(a)))
            .join("  ")
    );
    let rows = run_figure(&archs, &all_apps(), 1, ArchKind::Fa8, scale);
    println!(
        "\n{:<8} {:<6} {:>10} {:>12} {:>10}",
        "app", "arch", "cycles", "adj time", "adj norm"
    );
    for row in &rows {
        let base = adjusted_time(row.cell(ArchKind::Fa8));
        let mut best: Option<(&str, f64)> = None;
        for cell in &row.cells {
            let t = adjusted_time(cell);
            println!(
                "{:<8} {:<6} {:>10} {:>12.0} {:>10.0}",
                row.app,
                cell.arch.name(),
                cell.result.cycles,
                t,
                100.0 * t / base
            );
            if best.is_none_or(|(_, bt)| t < bt) {
                best = Some((cell.arch.name(), t));
            }
        }
        println!(
            "{:<8} -> best after clock adjustment: {}\n",
            row.app,
            best.unwrap().0
        );
    }
}
