//! Diagnostic sweep (not a paper figure): one application across the five
//! Figure-4 architectures with full memory-system detail — the tool used to
//! calibrate the workload models against the paper's hazard profiles.
//!
//! Usage: `diagnose [app] [scale] [chips]` (defaults: vpenta, 0.3, 1).
use csmt_core::ArchKind;
use csmt_workloads::{by_name, simulate};

fn main() {
    let mut args = std::env::args().skip(1);
    let app_name = args.next().unwrap_or_else(|| "vpenta".into());
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.3);
    let chips: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let app = by_name(&app_name).expect("unknown application");
    for arch in [ArchKind::Fa8, ArchKind::Fa4, ArchKind::Fa2, ArchKind::Fa1, ArchKind::Smt2] {
        let r = simulate(&app, arch, chips, scale, 1);
        let b = r.breakdown();
        println!(
            "{:<5} cycles={:>8} ipc={:.2} useful={:.1}% mem={:.1}% data={:.1}% sync={:.1}% fetch={:.1}% struct={:.1}%",
            arch.name(), r.cycles, r.ipc(), b[0]*100.0, b[3]*100.0, b[4]*100.0, b[6]*100.0, b[7]*100.0, b[2]*100.0
        );
        let m = &r.mem;
        println!(
            "      acc={} l1={} l2={} locmem={} merges={} tlb={} wb={} contention={} (per-acc {:.1})",
            m.accesses, m.l1_hits, m.l2_hits, m.local_mem, m.mshr_merges, m.tlb_misses, m.writebacks,
            m.contention_wait, m.contention_wait as f64 / m.accesses.max(1) as f64
        );
    }
}
