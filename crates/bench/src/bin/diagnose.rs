//! Diagnostic sweep (not a paper figure): one application across the five
//! Figure-4 architectures with full memory-system detail — the tool used to
//! calibrate the workload models against the paper's hazard profiles.
//!
//! Usage: `diagnose [app] [scale] [chips]` (defaults: vpenta, 0.3, 1);
//! `diagnose --help` prints usage plus the consolidated table of every
//! `CSMT_*` environment knob (`csmt_bench::ENV_KNOBS` — the same table
//! README.md documents). The knobs this binary honors: `CSMT_TRACE_OUT`
//! (heartbeat + Konata pipeview traces per architecture),
//! `CSMT_TRACE_INTERVAL`, `CSMT_VERIFY`, `CSMT_FASTFORWARD`,
//! `CSMT_SELF_PROFILE` (host-phase wall-clock profile, aggregated over
//! the sweep), and `CSMT_JSON_DIR`. See the Observability section of
//! DESIGN.md.
//!
//! Always writes a machine-readable summary, `BENCH_diagnose.json`, into
//! `CSMT_JSON_DIR` (or the current directory): per architecture the full
//! serialized `RunResult` plus the derived cycles/IPC/hazard-fraction
//! summary row.
use std::path::PathBuf;

use csmt_core::{ArchKind, RunResult};
use csmt_cpu::Hazard;
use csmt_trace::{IntervalSampler, PipeviewProbe, StatsRegistry};
use csmt_verify::InvariantProbe;
use csmt_workloads::{by_name, simulate_probed, AppSpec};
use serde::Value;

/// Keeps O3PipeView output bounded (~200 bytes/record).
const PIPEVIEW_MAX_RECORDS: u64 = 200_000;

/// The env-selected observers of one sweep (`CSMT_TRACE_*`, `CSMT_VERIFY`).
struct Observe {
    trace_dir: Option<PathBuf>,
    interval: u64,
    verify: bool,
}

fn observe_config() -> Observe {
    Observe {
        trace_dir: std::env::var_os("CSMT_TRACE_OUT").map(PathBuf::from),
        interval: std::env::var("CSMT_TRACE_INTERVAL")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1000),
        verify: verify_enabled(),
    }
}

fn verify_enabled() -> bool {
    env_flag("CSMT_VERIFY")
}

fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| v != "0" && !v.is_empty())
}

/// Drain an [`InvariantProbe`] after a run: print the clean summary, or
/// the first violations and exit 2 — a diagnose sweep that breaks the
/// machine's own invariants has nothing trustworthy to report.
fn check_invariants(probe: InvariantProbe, arch: ArchKind) {
    match probe.finish() {
        Ok(s) => println!(
            "      verify: clean ({} cycles, {} committed, {} events)",
            s.cycles, s.committed, s.events
        ),
        Err(violations) => {
            eprintln!(
                "{}: {} invariant violation(s):",
                arch.name(),
                violations.len()
            );
            for v in violations.iter().take(10) {
                eprintln!("  {v}");
            }
            std::process::exit(2);
        }
    }
}

/// Run one architecture, composing the requested observers. `extra` is
/// an additional probe threaded into every path (the host self-profiler,
/// or `NullProbe` — callers pick the monomorphization, so the plain
/// no-observer path still compiles to the uninstrumented pipeline).
fn run_one<P: csmt_trace::Probe>(
    app: &AppSpec,
    arch: ArchKind,
    chips: usize,
    scale: f64,
    obs: &Observe,
    extra: &mut P,
) -> RunResult {
    let mem = csmt_mem::MemConfig::table3();
    match (obs.trace_dir.as_ref(), obs.verify) {
        (None, false) => simulate_probed(app, arch.chip(), chips, scale, 1, mem, extra),
        (None, true) => {
            let mut probe = (InvariantProbe::new(&arch.chip(), chips), extra);
            let r = simulate_probed(app, arch.chip(), chips, scale, 1, mem, &mut probe);
            check_invariants(probe.0, arch);
            r
        }
        (Some(dir), verify) => {
            let mut probe = (
                (
                    (
                        IntervalSampler::create(
                            dir.join(format!("heartbeat_{}.jsonl", arch.name())),
                            obs.interval,
                        )
                        .expect("CSMT_TRACE_OUT must be writable"),
                        PipeviewProbe::with_limit(
                            std::io::BufWriter::new(
                                std::fs::File::create(
                                    dir.join(format!("pipeview_{}.trace", arch.name())),
                                )
                                .expect("CSMT_TRACE_OUT must be writable"),
                            ),
                            PIPEVIEW_MAX_RECORDS,
                        ),
                    ),
                    verify.then(|| InvariantProbe::new(&arch.chip(), chips)),
                ),
                extra,
            );
            let r = simulate_probed(app, arch.chip(), chips, scale, 1, mem, &mut probe);
            probe.0 .0 .0.finish().expect("heartbeat flush");
            probe.0 .0 .1.finish().expect("pipeview flush");
            if let Some(inv) = probe.0 .1 {
                check_invariants(inv, arch);
            }
            r
        }
    }
}

/// The summary row of one architecture: cycles, IPC, hazard fractions.
fn summary_row(r: &RunResult) -> Value {
    let b = r.breakdown();
    let mut hazards = vec![("useful".to_string(), Value::F64(b[0]))];
    for h in Hazard::ALL {
        hazards.push((h.label().to_string(), Value::F64(b[1 + h.index()])));
    }
    Value::Object(vec![
        ("arch".into(), Value::Str(r.arch.clone())),
        ("cycles".into(), Value::U64(r.cycles)),
        ("ipc".into(), Value::F64(r.ipc())),
        ("fractions".into(), Value::Object(hazards)),
    ])
}

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!(
            "diagnose: one application across the five Figure-4 architectures\n\
             \n\
             usage: diagnose [app] [scale] [chips]   (defaults: vpenta 0.3 1)\n\
             \n\
             {}",
            csmt_bench::render_env_knobs()
        );
        return;
    }
    csmt_bench::validate_sched_env();
    let app_name: String = csmt_bench::arg_or(1, "vpenta".into());
    let scale: f64 = csmt_bench::arg_or(2, 0.3);
    let chips: usize = csmt_bench::arg_or(3, 1);
    let app = by_name(&app_name).expect("unknown application");
    let obs = observe_config();
    let mut profiler = env_flag("CSMT_SELF_PROFILE").then(csmt_metrics::HostProfiler::new);
    if let Some(dir) = &obs.trace_dir {
        std::fs::create_dir_all(dir).expect("CSMT_TRACE_OUT must be creatable");
    }
    if !csmt_core::Machine::fastforward_env_enabled() {
        println!("fast-forward disabled (CSMT_FASTFORWARD=0): stepping every cycle");
    }
    println!("{}", csmt_core::par_step::describe_env());

    let mut registry = StatsRegistry::new();
    registry.record("app", app.name);
    registry.record("scale", &scale);
    registry.record("chips", &(chips as u64));
    let mut summaries = Vec::new();
    for arch in [
        ArchKind::Fa8,
        ArchKind::Fa4,
        ArchKind::Fa2,
        ArchKind::Fa1,
        ArchKind::Smt2,
    ] {
        // The profiler accumulates across the whole sweep; without it the
        // `NullProbe` monomorphization keeps the timers compiled out.
        let r = if let Some(p) = profiler.as_mut() {
            run_one(&app, arch, chips, scale, &obs, p)
        } else {
            run_one(&app, arch, chips, scale, &obs, &mut csmt_trace::NullProbe)
        };
        let b = r.breakdown();
        println!(
            "{:<5} cycles={:>8} ipc={:.2} useful={:.1}% mem={:.1}% data={:.1}% sync={:.1}% fetch={:.1}% struct={:.1}%",
            arch.name(), r.cycles, r.ipc(), b[0]*100.0, b[3]*100.0, b[4]*100.0, b[6]*100.0, b[7]*100.0, b[2]*100.0
        );
        let m = &r.mem;
        println!(
            "      acc={} l1={} l2={} locmem={} merges={} tlb={} wb={} contention={} (per-acc {:.1})",
            m.accesses, m.l1_hits, m.l2_hits, m.local_mem, m.mshr_merges, m.tlb_misses, m.writebacks,
            m.contention_wait, m.contention_wait as f64 / m.accesses.max(1) as f64
        );
        summaries.push(summary_row(&r));
        registry.record(&format!("result_{}", arch.name()), &r);
    }
    registry.record_value("summary", Value::Array(summaries));
    if let Some(p) = &profiler {
        print!("{}", p.render_text());
        registry.record_value("host_profile", p.to_value());
    }

    let out_dir = std::env::var_os("CSMT_JSON_DIR")
        .map(PathBuf::from)
        .unwrap_or_default();
    let path = out_dir.join("BENCH_diagnose.json");
    registry
        .write_json(&path)
        .expect("summary JSON must be writable");
    println!("wrote {}", path.display());
    if let Some(dir) = &obs.trace_dir {
        println!(
            "traces in {} (heartbeat_*.jsonl, pipeview_*.trace)",
            dir.display()
        );
    }
}
