//! Diagnostic sweep (not a paper figure): one application across the five
//! Figure-4 architectures with full memory-system detail — the tool used to
//! calibrate the workload models against the paper's hazard profiles.
//!
//! Usage: `diagnose [app] [scale] [chips]` (defaults: vpenta, 0.3, 1).
//!
//! Observability (see `csmt-trace` and the Observability section of
//! DESIGN.md):
//!
//! * `CSMT_TRACE_OUT=<dir>` — write per-architecture traces into `<dir>`:
//!   `heartbeat_<arch>.jsonl` (interval heartbeats) and
//!   `pipeview_<arch>.trace` (gem5 O3PipeView format, loadable in Konata;
//!   capped at 200k instruction records per architecture).
//! * `CSMT_TRACE_INTERVAL=<n>` — heartbeat interval in cycles
//!   (default 1000).
//! * `CSMT_VERIFY=1` — attach `csmt-verify`'s `InvariantProbe` to every
//!   run (composes with tracing). On any invariant violation the first
//!   ten reports are printed and the process exits with status 2.
//! * `CSMT_FASTFORWARD=0` — disable the event-driven stall fast-forward
//!   and step every cycle (results are bit-for-bit identical either way;
//!   the escape hatch exists for timing comparisons and for isolating the
//!   skip path when debugging).
//!
//! Always writes a machine-readable summary, `BENCH_diagnose.json`, into
//! `CSMT_JSON_DIR` (or the current directory): per architecture the full
//! serialized `RunResult` plus the derived cycles/IPC/hazard-fraction
//! summary row.
use std::path::PathBuf;

use csmt_core::{ArchKind, RunResult};
use csmt_cpu::Hazard;
use csmt_trace::{IntervalSampler, PipeviewProbe, StatsRegistry};
use csmt_verify::InvariantProbe;
use csmt_workloads::{by_name, simulate_probed, AppSpec};
use serde::Value;

/// Keeps O3PipeView output bounded (~200 bytes/record).
const PIPEVIEW_MAX_RECORDS: u64 = 200_000;

fn trace_config() -> (Option<PathBuf>, u64) {
    let dir = std::env::var_os("CSMT_TRACE_OUT").map(PathBuf::from);
    let interval = std::env::var("CSMT_TRACE_INTERVAL")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1000);
    (dir, interval)
}

fn verify_enabled() -> bool {
    std::env::var_os("CSMT_VERIFY").is_some_and(|v| v != "0" && !v.is_empty())
}

/// Drain an [`InvariantProbe`] after a run: print the clean summary, or
/// the first violations and exit 2 — a diagnose sweep that breaks the
/// machine's own invariants has nothing trustworthy to report.
fn check_invariants(probe: InvariantProbe, arch: ArchKind) {
    match probe.finish() {
        Ok(s) => println!(
            "      verify: clean ({} cycles, {} committed, {} events)",
            s.cycles, s.committed, s.events
        ),
        Err(violations) => {
            eprintln!(
                "{}: {} invariant violation(s):",
                arch.name(),
                violations.len()
            );
            for v in violations.iter().take(10) {
                eprintln!("  {v}");
            }
            std::process::exit(2);
        }
    }
}

fn run_one(
    app: &AppSpec,
    arch: ArchKind,
    chips: usize,
    scale: f64,
    trace_dir: Option<&PathBuf>,
    interval: u64,
    verify: bool,
) -> RunResult {
    let mem = csmt_mem::MemConfig::table3();
    match (trace_dir, verify) {
        // The plain path stays on `NullProbe`, compiling to the
        // uninstrumented pipeline.
        (None, false) => simulate_probed(
            app,
            arch.chip(),
            chips,
            scale,
            1,
            mem,
            &mut csmt_trace::NullProbe,
        ),
        (None, true) => {
            let mut probe = InvariantProbe::new(&arch.chip(), chips);
            let r = simulate_probed(app, arch.chip(), chips, scale, 1, mem, &mut probe);
            check_invariants(probe, arch);
            r
        }
        (Some(dir), verify) => {
            let mut probe = (
                (
                    IntervalSampler::create(
                        dir.join(format!("heartbeat_{}.jsonl", arch.name())),
                        interval,
                    )
                    .expect("CSMT_TRACE_OUT must be writable"),
                    PipeviewProbe::with_limit(
                        std::io::BufWriter::new(
                            std::fs::File::create(
                                dir.join(format!("pipeview_{}.trace", arch.name())),
                            )
                            .expect("CSMT_TRACE_OUT must be writable"),
                        ),
                        PIPEVIEW_MAX_RECORDS,
                    ),
                ),
                verify.then(|| InvariantProbe::new(&arch.chip(), chips)),
            );
            let r = simulate_probed(app, arch.chip(), chips, scale, 1, mem, &mut probe);
            probe.0 .0.finish().expect("heartbeat flush");
            probe.0 .1.finish().expect("pipeview flush");
            if let Some(inv) = probe.1 {
                check_invariants(inv, arch);
            }
            r
        }
    }
}

/// The summary row of one architecture: cycles, IPC, hazard fractions.
fn summary_row(r: &RunResult) -> Value {
    let b = r.breakdown();
    let mut hazards = vec![("useful".to_string(), Value::F64(b[0]))];
    for h in Hazard::ALL {
        hazards.push((h.label().to_string(), Value::F64(b[1 + h.index()])));
    }
    Value::Object(vec![
        ("arch".into(), Value::Str(r.arch.clone())),
        ("cycles".into(), Value::U64(r.cycles)),
        ("ipc".into(), Value::F64(r.ipc())),
        ("fractions".into(), Value::Object(hazards)),
    ])
}

fn main() {
    let app_name: String = csmt_bench::arg_or(1, "vpenta".into());
    let scale: f64 = csmt_bench::arg_or(2, 0.3);
    let chips: usize = csmt_bench::arg_or(3, 1);
    let app = by_name(&app_name).expect("unknown application");
    let (trace_dir, interval) = trace_config();
    let verify = verify_enabled();
    if let Some(dir) = &trace_dir {
        std::fs::create_dir_all(dir).expect("CSMT_TRACE_OUT must be creatable");
    }
    if !csmt_core::Machine::fastforward_env_enabled() {
        println!("fast-forward disabled (CSMT_FASTFORWARD=0): stepping every cycle");
    }

    let mut registry = StatsRegistry::new();
    registry.record("app", app.name);
    registry.record("scale", &scale);
    registry.record("chips", &(chips as u64));
    let mut summaries = Vec::new();
    for arch in [
        ArchKind::Fa8,
        ArchKind::Fa4,
        ArchKind::Fa2,
        ArchKind::Fa1,
        ArchKind::Smt2,
    ] {
        let r = run_one(
            &app,
            arch,
            chips,
            scale,
            trace_dir.as_ref(),
            interval,
            verify,
        );
        let b = r.breakdown();
        println!(
            "{:<5} cycles={:>8} ipc={:.2} useful={:.1}% mem={:.1}% data={:.1}% sync={:.1}% fetch={:.1}% struct={:.1}%",
            arch.name(), r.cycles, r.ipc(), b[0]*100.0, b[3]*100.0, b[4]*100.0, b[6]*100.0, b[7]*100.0, b[2]*100.0
        );
        let m = &r.mem;
        println!(
            "      acc={} l1={} l2={} locmem={} merges={} tlb={} wb={} contention={} (per-acc {:.1})",
            m.accesses, m.l1_hits, m.l2_hits, m.local_mem, m.mshr_merges, m.tlb_misses, m.writebacks,
            m.contention_wait, m.contention_wait as f64 / m.accesses.max(1) as f64
        );
        summaries.push(summary_row(&r));
        registry.record(&format!("result_{}", arch.name()), &r);
    }
    registry.record_value("summary", Value::Array(summaries));

    let out_dir = std::env::var_os("CSMT_JSON_DIR")
        .map(PathBuf::from)
        .unwrap_or_default();
    let path = out_dir.join("BENCH_diagnose.json");
    registry
        .write_json(&path)
        .expect("summary JSON must be writable");
    println!("wrote {}", path.display());
    if let Some(dir) = &trace_dir {
        println!(
            "traces in {} (heartbeat_*.jsonl, pipeview_*.trace)",
            dir.display()
        );
    }
}
