//! Ablation study (deterministic cycle counts): how the memory-system
//! design choices affect the headline SMT2-vs-FA comparison.
//!
//! * **bank count** — Table 3's 7 banks vs a single-ported cache vs 16
//!   banks: how much of SMT2's advantage is bank-level parallelism;
//! * **MSHRs** — the §3.1 32-outstanding-loads budget vs a nearly blocking
//!   cache (4);
//! * **remote latency** — doubling Table 3's remote latencies (a larger or
//!   slower interconnect than the paper's 4-node machine);
//! * **fill occupancy** — disabling the 8-cycle fill reservation;
//! * **replacement policy** — LRU (default) vs FIFO vs random.

use csmt_core::ArchKind;
use csmt_mem::MemConfig;
use csmt_workloads::{all_apps, runner::simulate_with_mem};

fn main() {
    let scale = csmt_bench::scale_from_args_or(0.5);
    let variants: Vec<(&str, MemConfig)> = vec![
        ("table3 (baseline)", MemConfig::table3()),
        (
            "1 bank/level",
            MemConfig {
                l1_banks: 1,
                l2_banks: 1,
                ..MemConfig::table3()
            },
        ),
        (
            "16 banks/level",
            MemConfig {
                l1_banks: 16,
                l2_banks: 16,
                ..MemConfig::table3()
            },
        ),
        (
            "4 MSHRs",
            MemConfig {
                max_outstanding_loads: 4,
                ..MemConfig::table3()
            },
        ),
        (
            "2x remote latency",
            MemConfig {
                remote_mem_latency: 120,
                remote_l2_latency: 150,
                ..MemConfig::table3()
            },
        ),
        (
            "no fill occupancy",
            MemConfig {
                fill_time: 0,
                ..MemConfig::table3()
            },
        ),
        (
            "FIFO replacement",
            MemConfig {
                replacement: csmt_mem::Replacement::Fifo,
                ..MemConfig::table3()
            },
        ),
        (
            "random replacement",
            MemConfig {
                replacement: csmt_mem::Replacement::Random,
                ..MemConfig::table3()
            },
        ),
    ];
    for chips in [1usize, 4] {
        println!(
            "== {} machine ==",
            if chips == 1 {
                "low-end"
            } else {
                "high-end (4-chip)"
            }
        );
        println!(
            "{:<20} {:>10} {:>10} {:>12}",
            "variant", "FA2 (cyc)", "SMT2 (cyc)", "SMT2 speedup"
        );
        for (name, cfg) in &variants {
            let mut fa2 = 0u64;
            let mut smt2 = 0u64;
            for app in all_apps() {
                fa2 += simulate_with_mem(&app, ArchKind::Fa2, chips, scale, 7, cfg.clone()).cycles;
                smt2 +=
                    simulate_with_mem(&app, ArchKind::Smt2, chips, scale, 7, cfg.clone()).cycles;
            }
            println!(
                "{:<20} {:>10} {:>10} {:>11.2}x",
                name,
                fa2,
                smt2,
                fa2 as f64 / smt2 as f64
            );
        }
        println!();
    }
}
