//! Figure 9 (extension): dynamic thread-to-cluster allocation on the
//! clustered SMT chip.
//!
//! The paper fixes thread-to-cluster assignment at fork and notes the
//! clustered design "allows a simpler thread scheduler" — this study asks
//! what moving threads *during* execution buys. Every workload runs on
//! SMT2 under each scheduling policy (static round-robin, barrier
//! rebalance, hazard pairing) and on FA4 under static, all with the same
//! seed; execution time is normalized to SMT2/static = 100 (lower is
//! better).
//!
//! Workloads: the six applications (threads = hardware contexts, as in
//! Figs 4–8) plus one multiprogrammed mix of eight independent sequential
//! jobs. For the mix, FA4's four contexts run the eight jobs in two
//! capacity-sized batches so total work matches SMT2's single batch.
//!
//! ```text
//! cargo run --release --bin fig9_dynamic_alloc [scale] [--smoke] [--sched <policy>]
//! ```
//!
//! `--smoke` uses a small scale (0.05) for CI; `--sched` restricts the
//! dynamic policies run (the SMT2/static baseline always runs).

use csmt_bench::{render_env_knobs, FIGURE_SCALE, FIGURE_SEED};
use csmt_core::sched::{by_name, POLICY_NAMES};
use csmt_core::ArchKind;
use csmt_workloads::{
    all_apps, simulate_job_batches, simulate_multiprogram_with_sched, simulate_with_sched, AppSpec,
};
use serde::Serialize;

/// Scale used by `--smoke` (CI gate).
const SMOKE_SCALE: f64 = 0.05;
/// Jobs in the multiprogrammed mix row.
const MIX_JOBS: usize = 8;

/// One measured cell of the figure.
#[derive(Debug, Clone, Serialize)]
struct Fig9Cell {
    workload: String,
    variant: String,
    cycles: u64,
    normalized: f64,
    ipc: f64,
    migrations: u64,
    migration_wait_cycles: u64,
}

/// A workload row: either one parallel application or the job mix.
enum Workload {
    App(AppSpec),
    Mix(&'static str, Vec<AppSpec>),
}

impl Workload {
    fn name(&self) -> &str {
        match self {
            Workload::App(a) => a.name,
            Workload::Mix(n, _) => n,
        }
    }

    /// Run this workload on SMT2 under `policy`, or on FA4/static when
    /// `policy` is `None`.
    fn run(&self, policy: Option<&str>, scale: f64) -> (u64, f64, u64, u64) {
        match (self, policy) {
            (Workload::App(app), Some(p)) => {
                let sched = by_name(p).expect("known policy");
                let r = simulate_with_sched(app, ArchKind::Smt2, 1, scale, FIGURE_SEED, sched);
                (r.cycles, r.ipc(), r.migrations, r.migration_wait_cycles)
            }
            (Workload::App(app), None) => {
                let sched = by_name("static").expect("static policy");
                let r = simulate_with_sched(app, ArchKind::Fa4, 1, scale, FIGURE_SEED, sched);
                (r.cycles, r.ipc(), 0, 0)
            }
            (Workload::Mix(_, mix), Some(p)) => {
                let sched = by_name(p).expect("known policy");
                let r = simulate_multiprogram_with_sched(
                    mix,
                    ArchKind::Smt2,
                    1,
                    scale,
                    FIGURE_SEED,
                    sched,
                );
                (r.cycles, r.ipc(), r.migrations, r.migration_wait_cycles)
            }
            (Workload::Mix(_, mix), None) => {
                // FA4 has 4 contexts: the 8-job set runs as 2 batches with
                // the same per-job streams SMT2 sees, so work is identical.
                let r = simulate_job_batches(
                    mix,
                    MIX_JOBS,
                    ArchKind::Fa4.chip(),
                    1,
                    scale,
                    FIGURE_SEED,
                );
                (r.total_cycles, r.throughput(), 0, 0)
            }
        }
    }
}

fn usage() -> String {
    format!(
        "usage: fig9_dynamic_alloc [scale] [--smoke] [--sched <policy>]\n\
         \n\
         policies: {}\n\
         --smoke      small scale ({SMOKE_SCALE}) for CI\n\
         --sched <p>  run only dynamic policy <p> (baseline always runs)\n\
         \n\
         {}",
        POLICY_NAMES.join(", "),
        render_env_knobs()
    )
}

fn main() {
    let mut scale: Option<f64> = None;
    let mut smoke = false;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--sched" => {
                let Some(p) = args.next() else {
                    eprintln!("--sched needs a policy name\n\n{}", usage());
                    std::process::exit(2);
                };
                if !POLICY_NAMES.contains(&p.as_str()) {
                    eprintln!(
                        "unknown scheduling policy {p:?} (valid policies: {})",
                        POLICY_NAMES.join(", ")
                    );
                    std::process::exit(2);
                }
                only = Some(p);
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return;
            }
            s => scale = Some(s.parse().expect("scale must be a float")),
        }
    }
    let scale = scale.unwrap_or(if smoke { SMOKE_SCALE } else { FIGURE_SCALE });
    csmt_bench::validate_sched_env();

    let apps = all_apps();
    let mix: Vec<AppSpec> = vec![
        apps[0].clone(), // swim
        apps[3].clone(), // vpenta
        apps[1].clone(), // tomcatv
        apps[5].clone(), // ocean
    ];
    let mut workloads: Vec<Workload> = apps.into_iter().map(Workload::App).collect();
    workloads.push(Workload::Mix("mix4x2", mix));

    // Column order: SMT2 under each policy, then the FA4 reference.
    let mut variants: Vec<(String, Option<String>)> =
        vec![("SMT2/static".into(), Some("static".into()))];
    for p in POLICY_NAMES {
        if p == "static" {
            continue;
        }
        if only.as_deref().is_none_or(|o| o == p) {
            variants.push((format!("SMT2/{p}"), Some(p.to_string())));
        }
    }
    variants.push(("FA4/static".into(), None));

    // Every cell is an independent deterministic simulation: run the
    // flattened grid through the bounded work-stealing sweep pool
    // (CSMT_SWEEP_THREADS workers) and reassemble rows in order.
    let ncols = variants.len();
    let flat = csmt_sweep::pool::run_jobs(
        workloads.len() * ncols,
        csmt_sweep::SweepEngine::from_env().threads(),
        |i| workloads[i / ncols].run(variants[i % ncols].1.as_deref(), scale),
        |_, _| {},
    );
    let grid: Vec<Vec<(u64, f64, u64, u64)>> = flat.chunks(ncols).map(<[_]>::to_vec).collect();

    let mut cells: Vec<Fig9Cell> = Vec::new();
    for (w, row) in workloads.iter().zip(&grid) {
        let base = row[0].0;
        for ((variant, _), &(cycles, ipc, migrations, wait)) in variants.iter().zip(row) {
            cells.push(Fig9Cell {
                workload: w.name().to_string(),
                variant: variant.clone(),
                cycles,
                normalized: 100.0 * cycles as f64 / base as f64,
                ipc,
                migrations,
                migration_wait_cycles: wait,
            });
        }
    }

    println!(
        "== Figure 9 — dynamic thread-to-cluster allocation, low-end machine \
         (scale {scale}, normalized to SMT2/static = 100) =="
    );
    println!(
        "{:<8} {:<20} {:>12} {:>7} {:>6} {:>6} {:>10}",
        "workload", "variant", "cycles", "norm", "ipc", "migr", "wait/migr"
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 && i % variants.len() == 0 {
            println!();
        }
        let per = if c.migrations == 0 {
            "-".to_string()
        } else {
            format!(
                "{:.0}",
                c.migration_wait_cycles as f64 / c.migrations as f64
            )
        };
        println!(
            "{:<8} {:<20} {:>12} {:>7.1} {:>6.2} {:>6} {:>10}",
            c.workload, c.variant, c.cycles, c.normalized, c.ipc, c.migrations, per
        );
    }

    // Per-workload verdict: did any dynamic policy beat the static seam?
    println!();
    for (w, row) in workloads.iter().zip(&grid) {
        let base = row[0].0;
        let best_dyn = variants
            .iter()
            .zip(row)
            .skip(1)
            .filter(|((_, p), _)| p.is_some())
            .min_by_key(|(_, r)| r.0);
        if let Some(((name, _), r)) = best_dyn {
            let delta = 100.0 * (r.0 as f64 - base as f64) / base as f64;
            println!(
                "{:<8} best dynamic: {name} at {:+.2}% vs SMT2/static ({} migrations)",
                w.name(),
                delta,
                r.2
            );
        }
    }

    if let Some(dir) = std::env::var_os("CSMT_JSON_DIR") {
        let path = std::path::Path::new(&dir).join("fig9_dynamic_alloc.json");
        let body = serde_json::to_string_pretty(&cells).expect("serializable");
        std::fs::write(&path, body).expect("CSMT_JSON_DIR must be writable");
        eprintln!("wrote {}", path.display());
    }
}
