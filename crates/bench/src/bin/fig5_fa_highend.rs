//! Figure 5: FA processors vs the clustered SMT2 on the high-end machine —
//! four chips on a DASH-like CC-NUMA (Figure 3), so FA8/SMT2 run 32
//! threads, FA4 16, FA2 8, FA1 4. Normalized to FA8 = 100.
//!
//! Paper shape to verify: for the least parallel applications (swim,
//! tomcatv, mgrid) the FA sweet spot moves toward wide issue (FA1); for
//! highly parallel ones (vpenta) FA1 gets relatively worse; SMT2 has the
//! lowest execution time and the most stable performance.

use csmt_bench::{render_figure, run_figure, write_json};
use csmt_core::ArchKind;
use csmt_workloads::all_apps;

fn main() {
    let scale = csmt_bench::scale_from_args();
    let rows = run_figure(&ArchKind::FA_FIGURES, &all_apps(), 4, ArchKind::Fa8, scale);
    if let Some(p) = write_json(&rows, "fig5") {
        eprintln!("wrote {}", p.display());
    }
    print!(
        "{}",
        render_figure(
            "Figure 5 — FA vs clustered SMT, high-end machine (4 chips, normalized to FA8)",
            &rows
        )
    );
    for row in &rows {
        let best_fa = row
            .cells
            .iter()
            .filter(|c| c.arch != ArchKind::Smt2)
            .min_by(|a, b| a.normalized.partial_cmp(&b.normalized).unwrap())
            .unwrap();
        let smt2 = row.cell(ArchKind::Smt2);
        println!(
            "{:<8} best FA = {} ({:.0}), SMT2 = {:.0}  ({:+.1}% vs best FA)",
            row.app,
            best_fa.arch.name(),
            best_fa.normalized,
            smt2.normalized,
            100.0 * (smt2.normalized - best_fa.normalized) / best_fa.normalized,
        );
    }
}
