//! Figure 1: the model of parallelism (paper §2).
//!
//! Renders, as text, the architecture boxes/envelopes of Figure 1-(b)/(e),
//! the delivered-performance geometry for an example application, and the
//! three-region classification of Figure 1-(d)/(g).

use csmt_model::{envelope, AppPoint, ArchModel, Region};

fn main() {
    println!("== Figure 1 — model of parallelism (8-issue chips) ==\n");

    println!("-- (b) Fixed-assignment boxes: threads × ILP/thread --");
    for clusters in [8u32, 4, 2, 1] {
        let m = ArchModel::Fa { clusters };
        println!(
            "  {:<4} box = {} threads × {} ILP  (area {})",
            m.name(),
            m.max_threads(),
            m.max_ilp(),
            m.max_threads() * m.max_ilp()
        );
    }

    println!("\n-- (e) SMT envelopes: hyperbola x·y = 8, capped at the cluster width --");
    for clusters in [1u32, 2, 4, 8] {
        let m = ArchModel::Smt { clusters };
        let pts = envelope(m, 8);
        let line: Vec<String> = pts
            .iter()
            .map(|(x, y)| format!("({x:.1},{y:.1})"))
            .collect();
        println!("  {:<5} {}", m.name(), line.join(" "));
    }

    println!("\n-- (c)/(f) Example application A = (6 threads, 5 ILP) --");
    let a = AppPoint::new(6.0, 5.0);
    println!("  potential performance = {:.0}", a.potential());
    for m in [
        ArchModel::Fa { clusters: 2 },
        ArchModel::Smt { clusters: 2 },
        ArchModel::Smt { clusters: 1 },
    ] {
        println!(
            "  delivered by {:<5} = {:>4.1}  (utilization {:>4.0}%)",
            m.name(),
            m.delivered(a),
            m.utilization(a) * 100.0
        );
    }

    println!("\n-- (d)/(g) Region classification --");
    let probes = [
        AppPoint::new(1.0, 2.0), // small app
        AppPoint::new(4.0, 8.0), // engulfs the chip
        AppPoint::new(8.0, 1.0), // thread-rich, ILP-poor
        AppPoint::new(2.0, 6.0), // ILP-rich, thread-poor
    ];
    println!(
        "  {:<14} {:>10} {:>10} {:>10} {:>10}",
        "app (t, ilp)", "FA2", "FA8", "SMT2", "SMT1"
    );
    for p in probes {
        let tag = |r: Region| match r {
            Region::AppExploited => "app-max",
            Region::Optimal => "OPTIMAL",
            Region::BothUnderUtilized => "under",
        };
        println!(
            "  ({:>3.0},{:>3.0})      {:>10} {:>10} {:>10} {:>10}",
            p.threads,
            p.ilp,
            tag(ArchModel::Fa { clusters: 2 }.region(p)),
            tag(ArchModel::Fa { clusters: 8 }.region(p)),
            tag(ArchModel::Smt { clusters: 2 }.region(p)),
            tag(ArchModel::Smt { clusters: 1 }.region(p)),
        );
    }
    println!(
        "\nConclusion (§2): the SMT optimal regions are supersets of the FA\n\
         optimal regions, so SMT and clustered SMT should deliver more\n\
         performance than FA for the same application mix."
    );
}
