//! Branch-predictor ablation (extension).
//!
//! The paper fixes a 2K-entry 2-bit bimodal table (§3.1). This study swaps
//! in a static-taken predictor (lower bound) and an 8-bit gshare (the
//! natural mid-90s upgrade) to measure how much of each architecture's
//! performance rides on prediction quality — wide single-thread machines
//! (FA1) lean hardest on speculation depth, many-context machines least.

use csmt_core::ArchKind;
use csmt_cpu::PredictorKind;
use csmt_mem::MemConfig;
use csmt_workloads::{all_apps, runner::simulate_with_chip};

fn main() {
    let scale = csmt_bench::scale_from_args_or(0.5);
    let predictors = [
        ("static-taken", PredictorKind::StaticTaken),
        ("bimodal-2bit", PredictorKind::Bimodal),
        ("gshare-8", PredictorKind::GShare { history_bits: 8 }),
    ];
    println!(
        "{:<6} {:<14} {:>14} {:>10} {:>12}",
        "arch", "predictor", "total cycles", "vs bimod", "mispred rate"
    );
    for arch in [ArchKind::Fa8, ArchKind::Fa1, ArchKind::Smt2, ArchKind::Smt1] {
        let mut baseline = 0u64;
        // Bimodal first to establish the baseline.
        let order = [1usize, 0, 2];
        let mut rows = Vec::new();
        for &i in &order {
            let (name, kind) = predictors[i];
            let chip = arch.chip().with_predictor(kind);
            let mut cycles = 0u64;
            let mut lookups = 0u64;
            let mut wrong = 0u64;
            for app in all_apps() {
                let r = simulate_with_chip(&app, chip, 1, scale, 7, MemConfig::table3());
                cycles += r.cycles;
                lookups += r.branch_lookups;
                wrong += r.branch_mispredicts;
            }
            if kind == PredictorKind::Bimodal {
                baseline = cycles;
            }
            rows.push((i, name, cycles, wrong as f64 / lookups.max(1) as f64));
        }
        rows.sort_by_key(|r| r.0);
        for (_, name, cycles, rate) in rows {
            println!(
                "{:<6} {:<14} {:>14} {:>9.1}% {:>11.2}%",
                arch.name(),
                name,
                cycles,
                100.0 * cycles as f64 / baseline as f64 - 100.0,
                rate * 100.0
            );
        }
        println!();
    }
}
