//! Figure 4: FA processors vs the clustered SMT2 on a low-end (single-chip)
//! machine. Execution time normalized to FA8 = 100, with the §4.1 hazard
//! breakdown per bar.
//!
//! Paper shape to verify: SMT2 takes the fewest cycles on all six
//! applications; FA curves are U-shaped (FA8 best for vpenta/ocean, mid
//! FAs for swim/fmm/tomcatv/mgrid); sync shrinks and data+memory grow as
//! clusters get wider.

use csmt_bench::{render_figure, run_figure, write_json};
use csmt_core::ArchKind;
use csmt_workloads::all_apps;

fn main() {
    let scale = csmt_bench::scale_from_args();
    let rows = run_figure(&ArchKind::FA_FIGURES, &all_apps(), 1, ArchKind::Fa8, scale);
    if let Some(p) = write_json(&rows, "fig4") {
        eprintln!("wrote {}", p.display());
    }
    print!(
        "{}",
        render_figure(
            "Figure 4 — FA vs clustered SMT, low-end machine (normalized to FA8)",
            &rows
        )
    );
    // Paper headline: SMT2 best on every application; report the margin.
    for row in &rows {
        let best_fa = row
            .cells
            .iter()
            .filter(|c| c.arch != ArchKind::Smt2)
            .min_by(|a, b| a.normalized.partial_cmp(&b.normalized).unwrap())
            .unwrap();
        let smt2 = row.cell(ArchKind::Smt2);
        println!(
            "{:<8} best FA = {} ({:.0}), SMT2 = {:.0}  ({:+.1}% vs best FA)",
            row.app,
            best_fa.arch.name(),
            best_fa.normalized,
            smt2.normalized,
            100.0 * (smt2.normalized - best_fa.normalized) / best_fa.normalized,
        );
    }
}
