//! Figure 8: centralized vs clustered SMT processors on the high-end
//! machine (4 chips, 32 threads for every SMT variant), normalized to
//! SMT8 = 100.
//!
//! Paper shape to verify: same conclusions as Figure 7 — SMT2 only slightly
//! slower than SMT1 in cycles, which the §5.2 clock-frequency argument then
//! turns into a decisive SMT2 win.

use csmt_bench::{render_figure, run_figure, write_json};
use csmt_core::ArchKind;
use csmt_workloads::all_apps;

fn main() {
    let scale = csmt_bench::scale_from_args();
    let rows = run_figure(
        &ArchKind::SMT_FIGURES,
        &all_apps(),
        4,
        ArchKind::Smt8,
        scale,
    );
    if let Some(p) = write_json(&rows, "fig8") {
        eprintln!("wrote {}", p.display());
    }
    print!("{}", render_figure("Figure 8 — centralized vs clustered SMT, high-end machine (4 chips, normalized to SMT8)", &rows));
    for row in &rows {
        let smt1 = row.cell(ArchKind::Smt1);
        let smt2 = row.cell(ArchKind::Smt2);
        println!(
            "{:<8} SMT2 = {:.0} vs SMT1 = {:.0} ({:+.1}%)",
            row.app,
            smt2.normalized,
            smt1.normalized,
            100.0 * (smt2.normalized - smt1.normalized) / smt1.normalized,
        );
    }
}
