//! Calibration probe (not a paper figure): prints each application's
//! measured Figure 6 coordinates and the raw Figure 4 table so workload
//! parameters can be tuned against the paper's targets.

use csmt_bench::{render_figure, run_figure};
use csmt_core::ArchKind;
use csmt_workloads::{all_apps, simulate};

fn main() {
    let scale = csmt_bench::scale_from_args_or(0.3);
    println!("scale = {scale}\n");

    println!("-- Figure 6 coordinates (low-end) --");
    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>10}",
        "app", "threads", "ilp", "fa8_cyc", "fa1_cyc"
    );
    for app in all_apps() {
        let fa8 = simulate(&app, ArchKind::Fa8, 1, scale, 1);
        let fa1 = simulate(&app, ArchKind::Fa1, 1, scale, 1);
        println!(
            "{:<8} {:>8.2} {:>8.2} {:>10} {:>10}",
            app.name,
            fa8.avg_running_threads,
            fa1.ipc(),
            fa8.cycles,
            fa1.cycles
        );
    }

    println!("\n-- Figure 4 (low-end, FA vs SMT2) --");
    let rows = run_figure(&ArchKind::FA_FIGURES, &all_apps(), 1, ArchKind::Fa8, scale);
    print!("{}", render_figure("fig4", &rows));
}
