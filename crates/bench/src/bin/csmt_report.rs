//! `csmt-report` — run one Table-2 arch × app cell with the
//! `csmt-metrics` collector attached and print the top-down bottleneck
//! breakdown, or replay a saved heartbeat JSONL stream.
//!
//! Usage:
//!
//! ```text
//! csmt-report [arch] [app] [scale] [chips]   (defaults: SMT2 mgrid 0.2 1)
//! csmt-report --from <heartbeat.jsonl>       (attribution from a stream)
//! csmt-report --help
//! ```
//!
//! Live runs print the stall-attribution tree, the latency/occupancy
//! histograms, and the IPC-timeline envelope. With `CSMT_METRICS_OUT`
//! set, the full JSON report and the Perfetto trace land in that
//! directory (drag the `perfetto_*.json` file into ui.perfetto.dev).
//! `--from` mode reconstructs the attribution tree and IPC timeline from
//! a heartbeat stream recorded earlier via `CSMT_TRACE_OUT` (histograms
//! need the live event stream, so the replay omits them). `--help`
//! doubles as the one-stop table of every `CSMT_*` environment knob.

use std::path::PathBuf;

use csmt_core::ArchKind;
use csmt_metrics::{AttributionTree, HostProfiler, MetricsProbe, MetricsReport};
use csmt_trace::HAZARD_LABELS;
use csmt_verify::InvariantProbe;
use csmt_workloads::{by_name, simulate_probed};
use serde::Value;

fn usage() -> String {
    format!(
        "csmt-report: top-down bottleneck analysis for one arch x app cell\n\
         \n\
         usage:\n\
         \x20 csmt-report [arch] [app] [scale] [chips]   run one cell (defaults: SMT2 mgrid 0.2 1)\n\
         \x20 csmt-report --from <heartbeat.jsonl>       attribution from a saved heartbeat stream\n\
         \x20 csmt-report --help                         this text\n\
         \n\
         archs: {}\n\
         \n\
         {}",
        ArchKind::ALL.map(ArchKind::name).join(" "),
        csmt_bench::render_env_knobs()
    )
}

fn arch_by_name(name: &str) -> Option<ArchKind> {
    ArchKind::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

fn sample_interval() -> u64 {
    std::env::var("CSMT_TRACE_INTERVAL")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1000)
}

fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| v != "0" && !v.is_empty())
}

/// Rebuild the attribution tree by telescoping a heartbeat JSONL stream:
/// raw slot counts across records sum to the run's final `SlotStats`
/// (the sampler guarantees this), so the replayed tree equals the live
/// one. Also returns the per-record `(cycle, ipc)` timeline.
fn replay_heartbeat(path: &str) -> (AttributionTree, Vec<(u64, f64)>) {
    let body = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("reading heartbeat stream {path}: {e}"));
    let (mut useful, mut wasted) = (0.0f64, [0.0f64; 7]);
    let (mut slots, mut cycles, mut committed) = (0u64, 0u64, 0u64);
    let mut timeline = Vec::new();
    for (n, line) in body.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("{path}:{}: bad heartbeat JSON: {e}", n + 1));
        let f = |key: &str| rec.get(key).and_then(Value::as_f64).unwrap_or(0.0);
        let u = |key: &str| rec.get(key).and_then(Value::as_u64).unwrap_or(0);
        useful += f("useful_slots");
        slots += u("slots");
        cycles += u("cycles");
        committed += u("committed");
        if let Some(w) = rec.get("wasted_slots") {
            for (i, label) in HAZARD_LABELS.iter().enumerate() {
                wasted[i] += w.get(label).and_then(Value::as_f64).unwrap_or(0.0);
            }
        }
        timeline.push((u("cycle"), f("ipc")));
    }
    (
        AttributionTree::from_slots(useful, &wasted, slots, cycles, committed),
        timeline,
    )
}

/// Write the JSON report and Perfetto trace into `$CSMT_METRICS_OUT`
/// (if set), returning the paths for the closing summary line.
fn export(report: &MetricsReport, arch: ArchKind, app: &str) -> Option<(PathBuf, PathBuf)> {
    let dir = PathBuf::from(std::env::var_os("CSMT_METRICS_OUT")?);
    std::fs::create_dir_all(&dir).expect("CSMT_METRICS_OUT must be creatable");
    let json = dir.join(format!("metrics_{}_{app}.json", arch.name()));
    let trace = dir.join(format!("perfetto_{}_{app}.json", arch.name()));
    report
        .write_json(&json)
        .expect("metrics JSON must be writable");
    report
        .write_perfetto(&trace)
        .expect("perfetto trace must be writable");
    Some((json, trace))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return;
    }
    if args.get(1).is_some_and(|a| a == "--from") {
        let path = args.get(2).unwrap_or_else(|| {
            eprintln!("{}", usage());
            std::process::exit(2);
        });
        let (tree, timeline) = replay_heartbeat(path);
        println!("== csmt-report: replay of {path} ==");
        print!("{}", tree.render_text());
        println!(
            "ipc timeline: {} heartbeat records (histograms need a live run)",
            timeline.len()
        );
        return;
    }

    csmt_bench::validate_sched_env();
    let arch_name: String = csmt_bench::arg_or(1, "SMT2".into());
    let app_name: String = csmt_bench::arg_or(2, "mgrid".into());
    let scale: f64 = csmt_bench::arg_or(3, 0.2);
    let chips: usize = csmt_bench::arg_or(4, 1);
    let Some(arch) = arch_by_name(&arch_name) else {
        eprintln!("unknown arch {arch_name:?}\n\n{}", usage());
        std::process::exit(2);
    };
    let Some(app) = by_name(&app_name) else {
        eprintln!("unknown application {app_name:?}\n\n{}", usage());
        std::process::exit(2);
    };

    let self_profile = env_flag("CSMT_SELF_PROFILE");
    let verify = env_flag("CSMT_VERIFY");
    let mut probe = (
        MetricsProbe::new(sample_interval()),
        (
            self_profile.then(HostProfiler::new),
            verify.then(|| InvariantProbe::new(&arch.chip(), chips)),
        ),
    );
    let r = simulate_probed(
        &app,
        arch.chip(),
        chips,
        scale,
        csmt_bench::FIGURE_SEED,
        csmt_mem::MemConfig::table3(),
        &mut probe,
    );
    let (metrics, (profiler, invariants)) = probe;
    if let Some(inv) = invariants {
        match inv.finish() {
            Ok(s) => println!("verify: clean ({} events)", s.events),
            Err(violations) => {
                eprintln!(
                    "{}: {} invariant violation(s):",
                    arch.name(),
                    violations.len()
                );
                for v in violations.iter().take(10) {
                    eprintln!("  {v}");
                }
                std::process::exit(2);
            }
        }
    }
    let report = metrics.finish();

    println!(
        "== csmt-report: {} on {} ({} chip(s), scale {scale}, seed {:#x}) ==",
        app.name,
        arch.name(),
        chips,
        csmt_bench::FIGURE_SEED
    );
    println!(
        "fast-forward: {}  {}",
        if csmt_core::Machine::fastforward_env_enabled() {
            "on"
        } else {
            "off (CSMT_FASTFORWARD=0)"
        },
        csmt_core::par_step::describe_env()
    );
    println!(
        "cycles {}  committed {}  ipc {:.2}  threads {}",
        r.cycles,
        r.slots.committed,
        r.ipc(),
        r.threads
    );
    print!("{}", report.render_text());
    if let Some(p) = &profiler {
        print!("{}", p.render_text());
    }
    if let Some((json, trace)) = export(&report, arch, app.name) {
        println!("wrote {}", json.display());
        println!("wrote {} (drag into ui.perfetto.dev)", trace.display());
    }
}
