//! `bench_gate` — fail CI when simulator throughput regresses.
//!
//! Compares a fresh `CSMT_BENCH_JSON` dump (from the `machine_step` or
//! `cluster_step` bench) against the committed `BENCH_*.json` baseline:
//!
//! ```text
//! bench_gate <fresh.json> <BENCH_baseline.json> [tolerance]
//! ```
//!
//! For every scenario in the baseline's `gate.results` (the smoke-mode
//! floor recorded for this purpose; falls back to
//! `post_refactor.results` for baseline files that predate the gate),
//! the fresh throughput must be at least `(1 - tolerance)` of the
//! recorded figure (default tolerance 0.25 — generous because smoke
//! mode is noisy and CI machines are slower than the recording machine
//! — so only real structural regressions trip it, not scheduler
//! jitter), and `cycles_per_run` must match *exactly*: a drifted cycle
//! count means simulated behavior changed, which no tolerance excuses.
//!
//! Exit status: 0 all gates pass, 1 regression or cycle drift, 2 bad
//! input. Driven by `scripts/bench_gate.sh`.

use serde::Value;

/// The throughput field of one fresh result: `steps_per_sec`
/// (cluster_step) or `fastforward_cycles_per_sec` (machine_step's
/// default-configuration number, which is what the baselines record as
/// `steps_per_sec`).
fn throughput(rec: &Value) -> Option<f64> {
    rec.get("steps_per_sec")
        .or_else(|| rec.get("fastforward_cycles_per_sec"))
        .and_then(Value::as_f64)
}

fn scenario(rec: &Value) -> &str {
    rec.get("scenario").and_then(Value::as_str).unwrap_or("?")
}

fn load(path: &str) -> Value {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_gate: reading {path}: {e}");
        std::process::exit(2);
    });
    serde_json::from_str(&body).unwrap_or_else(|e| {
        eprintln!("bench_gate: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (Some(fresh_path), Some(base_path)) = (args.get(1), args.get(2)) else {
        eprintln!("usage: bench_gate <fresh.json> <BENCH_baseline.json> [tolerance]");
        std::process::exit(2);
    };
    let tolerance: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.25);

    let fresh = load(fresh_path);
    let base = load(base_path);
    let Some(fresh_results) = fresh.as_array() else {
        eprintln!("bench_gate: {fresh_path} must be a JSON array of scenario results");
        std::process::exit(2);
    };
    // Every gating section present in the baseline contributes scenarios:
    // `gate` (the original smoke-mode floors), `sched_overhead` (the
    // scheduler-seam scenarios) and `parallel` (the two-phase parallel
    // step's serial-vs-parallel points, gated on the parallel-mode
    // throughput). Files predating the gate fall back to `post_refactor`.
    let mut base_results: Vec<&Value> = Vec::new();
    for key in ["gate", "sched_overhead", "parallel"] {
        if let Some(arr) = base
            .get(key)
            .and_then(|p| p.get("results"))
            .and_then(Value::as_array)
        {
            base_results.extend(arr);
        }
    }
    if base_results.is_empty() {
        if let Some(arr) = base
            .get("post_refactor")
            .and_then(|p| p.get("results"))
            .and_then(Value::as_array)
        {
            base_results.extend(arr);
        }
    }
    if base_results.is_empty() {
        eprintln!("bench_gate: {base_path} has neither gate.results nor post_refactor.results");
        std::process::exit(2);
    }

    let mut failures = 0u32;
    for b in base_results {
        let name = scenario(b);
        let Some(f) = fresh_results.iter().find(|f| scenario(f) == name) else {
            eprintln!("FAIL {name}: scenario missing from fresh results");
            failures += 1;
            continue;
        };
        let base_tp = b
            .get("steps_per_sec")
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let fresh_tp = throughput(f).unwrap_or(0.0);
        let floor = base_tp * (1.0 - tolerance);
        let ratio = if base_tp > 0.0 {
            fresh_tp / base_tp
        } else {
            0.0
        };
        let base_cycles = b.get("cycles_per_run").and_then(Value::as_u64);
        let fresh_cycles = f.get("cycles_per_run").and_then(Value::as_u64);
        let cycles_ok = base_cycles == fresh_cycles;
        let tp_ok = fresh_tp >= floor;
        println!(
            "{} {name}: {fresh_tp:.0}/s vs baseline {base_tp:.0}/s ({:.0}%), cycles {} vs {}",
            if tp_ok && cycles_ok { "ok  " } else { "FAIL" },
            ratio * 100.0,
            fresh_cycles.map_or("?".into(), |c| c.to_string()),
            base_cycles.map_or("?".into(), |c| c.to_string()),
        );
        if !tp_ok {
            eprintln!(
                "  throughput regressed more than {:.0}% (floor {floor:.0}/s)",
                tolerance * 100.0
            );
            failures += 1;
        }
        if !cycles_ok {
            eprintln!("  cycles_per_run drifted: simulated behavior changed");
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("bench_gate: {failures} gate failure(s)");
        std::process::exit(1);
    }
    println!("bench_gate: all scenarios within {:.0}%", tolerance * 100.0);
}
