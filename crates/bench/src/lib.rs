//! # csmt-bench — figure/table regeneration harness
//!
//! Shared plumbing for the `fig*` binaries and criterion benches: running
//! one figure's sweep (architectures × applications), normalizing to the
//! paper's baseline, rendering the stacked-bar breakdowns as text tables,
//! and applying the §5.2 clock-frequency adjustment.

use csmt_core::{ArchKind, RunResult};
use csmt_cpu::Hazard;
use csmt_sweep::{SweepCell, SweepEngine};
use csmt_workloads::AppSpec;
use serde::Serialize;

/// Work scale used by the figure binaries (full figure quality).
pub const FIGURE_SCALE: f64 = 1.0;
/// Seed used by all figure runs.
pub const FIGURE_SEED: u64 = 0xC5_317;

/// Every `CSMT_*` environment knob the binaries honor, in one table:
/// `(name, which binaries, what it does)`. Printed by `--help` output
/// (see [`render_env_knobs`]) and mirrored in README.md — keep the three
/// in sync.
pub const ENV_KNOBS: &[(&str, &str, &str)] = &[
    (
        "CSMT_TRACE_OUT=<dir>",
        "diagnose",
        "write heartbeat_<arch>.jsonl + pipeview_<arch>.trace (Konata) into <dir>",
    ),
    (
        "CSMT_TRACE_INTERVAL=<n>",
        "diagnose, csmt-report",
        "heartbeat/counter sampling interval in cycles (default 1000)",
    ),
    (
        "CSMT_METRICS_OUT=<dir>",
        "csmt-report",
        "write metrics_<arch>_<app>.json + perfetto_<arch>_<app>.json into <dir>",
    ),
    (
        "CSMT_SELF_PROFILE=1",
        "diagnose, csmt-report",
        "time the simulator's own phases (fetch/issue/commit/memory) and print the host profile",
    ),
    (
        "CSMT_VERIFY=1",
        "diagnose, csmt-report",
        "attach csmt-verify's InvariantProbe; exit 2 on any invariant violation",
    ),
    (
        "CSMT_FASTFORWARD=0",
        "all simulators",
        "disable the event-driven stall fast-forward (results are identical either way)",
    ),
    (
        "CSMT_PARALLEL=0|1",
        "all simulators",
        "force the two-phase parallel cluster step off/on (default: on iff the host has >1 CPU; results are identical either way)",
    ),
    (
        "CSMT_THREADS=<n>",
        "all simulators",
        "worker-thread count for the parallel cluster phase (default: host parallelism, clamped to the machine's cluster count)",
    ),
    (
        "CSMT_SCHED=<policy>",
        "all simulators",
        "thread-to-cluster allocation policy: static (default), barrier, hazard_pairing; dynamic policies fall back to static on fixed-assignment archs; an unknown name exits 2 with the valid names",
    ),
    (
        "CSMT_SWEEP_CACHE=<dir>",
        "fig*, csmt-sweep",
        "content-addressed result cache: previously computed sweep cells are file reads (results are identical either way)",
    ),
    (
        "CSMT_SWEEP_THREADS=<n>",
        "fig*, csmt-sweep",
        "worker count of the sweep engine's work-stealing pool (default: host parallelism; results are identical at any count)",
    ),
    (
        "CSMT_JSON_DIR=<dir>",
        "fig*, diagnose",
        "also write each figure/sweep as <dir>/<name>.json for external plotting",
    ),
    (
        "CSMT_BENCH_JSON=<path>",
        "machine_step, cluster_step benches",
        "dump the throughput summary as JSON (input format of bench_gate)",
    ),
];

/// The [`ENV_KNOBS`] table rendered as aligned help text.
pub fn render_env_knobs() -> String {
    use std::fmt::Write;
    let mut out = String::from("environment knobs:\n");
    for (name, bins, what) in ENV_KNOBS {
        let _ = writeln!(out, "  {name:<26} [{bins}]\n      {what}");
    }
    out
}

/// Validate the `CSMT_SCHED` selection before a sweep starts: on an
/// unknown policy name, print the valid names and exit 2 (the
/// `CSMT_VERIFY` convention) instead of panicking mid-run from inside
/// machine construction. Call this early in every binary `main` that
/// simulates.
pub fn validate_sched_env() {
    if let Err(e) = csmt_core::sched::policy_from_env() {
        eprintln!("error: {e} (from CSMT_SCHED)");
        std::process::exit(2);
    }
}

/// Parse argv[`n`] as a `T`, falling back to `default` when the argument
/// is absent or unparsable (the argv convention shared by every bench
/// binary).
pub fn arg_or<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Work scale from the binary's first CLI argument, defaulting to
/// [`FIGURE_SCALE`] (the `fig*` binaries all take `[scale]` this way).
pub fn scale_from_args() -> f64 {
    arg_or(1, FIGURE_SCALE)
}

/// [`scale_from_args`] with a binary-specific default (the study binaries
/// default below full figure scale).
pub fn scale_from_args_or(default: f64) -> f64 {
    arg_or(1, default)
}

/// One figure cell: an application simulated on one architecture.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Architecture simulated.
    pub arch: ArchKind,
    /// Full run statistics.
    pub result: RunResult,
    /// Execution time normalized to the figure's baseline (=100).
    pub normalized: f64,
}

/// All architectures of one figure for one application.
#[derive(Debug, Clone)]
pub struct AppRow {
    /// Application name.
    pub app: &'static str,
    /// One cell per architecture, in figure order.
    pub cells: Vec<Cell>,
}

impl AppRow {
    /// The architecture with the lowest cycle count.
    pub fn best(&self) -> &Cell {
        self.cells
            .iter()
            .min_by_key(|c| c.result.cycles)
            .expect("non-empty row")
    }

    /// Cell for a given architecture.
    pub fn cell(&self, arch: ArchKind) -> &Cell {
        self.cells
            .iter()
            .find(|c| c.arch == arch)
            .expect("arch in row")
    }
}

/// Run one figure: `archs` × `apps` on `n_chips` chips, normalizing each
/// application to `baseline` (FA8 for Figs 4/5, SMT8 for Figs 7/8).
///
/// The grid runs through the environment-configured [`SweepEngine`]
/// (bounded work-stealing pool, `CSMT_SWEEP_THREADS` workers, optional
/// `CSMT_SWEEP_CACHE` result cache) — a slow cell (e.g. ocean on FA1)
/// overlaps other cells without the old one-OS-thread-per-cell fan-out,
/// and a repeat run with a cache attached is ~pure file reads. Results
/// come back in (apps, archs) order, byte-identical to a sequential
/// sweep at any worker count, cached or not.
pub fn run_figure(
    archs: &[ArchKind],
    apps: &[AppSpec],
    n_chips: usize,
    baseline: ArchKind,
    scale: f64,
) -> Vec<AppRow> {
    run_figure_with_engine(
        &SweepEngine::from_env(),
        archs,
        apps,
        n_chips,
        baseline,
        scale,
    )
}

/// [`run_figure`] on an explicit engine (tests pin the worker count and
/// cache instead of inheriting the environment's).
pub fn run_figure_with_engine(
    engine: &SweepEngine,
    archs: &[ArchKind],
    apps: &[AppSpec],
    n_chips: usize,
    baseline: ArchKind,
    scale: f64,
) -> Vec<AppRow> {
    let sched = csmt_core::sched::policy_name_from_env()
        .unwrap_or_else(|e| panic!("{e} (from CSMT_SCHED)"));
    let cells: Vec<SweepCell> = apps
        .iter()
        .flat_map(|app| {
            archs.iter().map(|&arch| SweepCell {
                app: app.clone(),
                arch,
                n_chips,
                seed: FIGURE_SEED,
                scale,
                sched: sched.to_string(),
            })
        })
        .collect();
    let results = engine.run(&cells).results;
    apps.iter()
        .zip(results.chunks(archs.len().max(1)))
        .map(|(app, chunk)| {
            let results = chunk.to_vec();
            let base_cycles = archs
                .iter()
                .zip(&results)
                .find(|(a, _)| **a == baseline)
                .map(|(_, r)| r.cycles)
                .expect("baseline in archs");
            AppRow {
                app: app.name,
                cells: archs
                    .iter()
                    .zip(results)
                    .map(|(&arch, result)| Cell {
                        arch,
                        normalized: 100.0 * result.cycles as f64 / base_cycles as f64,
                        result,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// §5.2 clock-frequency adjustment. Palacharla & Jouppi [12]: an 8-issue
/// cluster's cycle time is ~2× a 4-issue cluster's at 0.18 µm, while 4-issue
/// and narrower clusters cycle alike. Returns the relative cycle-time factor
/// (1.0 = fast clock).
pub fn cycle_time_factor(arch: ArchKind) -> f64 {
    match arch.chip().cluster.issue_width {
        8 => 2.0,
        _ => 1.0,
    }
}

/// Wall-clock-equivalent time: cycles × cycle-time factor.
pub fn adjusted_time(cell: &Cell) -> f64 {
    cell.result.cycles as f64 * cycle_time_factor(cell.arch)
}

/// Render one figure as the paper prints it: normalized execution time with
/// the §4.1 breakdown per bar.
pub fn render_figure(title: &str, rows: &[AppRow]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(
        out,
        "{:<8} {:<6} {:>6}  {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "app", "arch", "norm", "useful", "other", "struct", "mem", "data", "ctrl", "sync", "fetch"
    );
    for row in rows {
        for cell in &row.cells {
            let b = cell.result.breakdown();
            let _ = writeln!(
                out,
                "{:<8} {:<6} {:>6.0}  {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}% {:>5.1}%",
                row.app,
                cell.arch.name(),
                cell.normalized,
                b[0] * 100.0,
                b[1] * 100.0,
                b[2] * 100.0,
                b[3] * 100.0,
                b[4] * 100.0,
                b[5] * 100.0,
                b[6] * 100.0,
                b[7] * 100.0,
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Flat, serializable view of one figure cell (for `CSMT_JSON_DIR` dumps).
#[derive(Debug, Serialize)]
pub struct FlatCell {
    /// Application name.
    pub app: String,
    /// Architecture name.
    pub arch: String,
    /// Execution time in cycles.
    pub cycles: u64,
    /// Normalized to the figure's baseline (=100).
    pub normalized: f64,
    /// Useful IPC.
    pub ipc: f64,
    /// Slot breakdown `[useful, other, structural, memory, data, control, sync, fetch]`.
    pub breakdown: [f64; 8],
    /// Average running threads.
    pub avg_running_threads: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
}

/// If the `CSMT_JSON_DIR` environment variable is set, write the figure's
/// cells as `<dir>/<name>.json` for external plotting. Returns the path
/// written, if any.
pub fn write_json(rows: &[AppRow], name: &str) -> Option<std::path::PathBuf> {
    let dir = std::env::var_os("CSMT_JSON_DIR")?;
    let flat: Vec<FlatCell> = rows
        .iter()
        .flat_map(|row| {
            row.cells.iter().map(move |c| FlatCell {
                app: row.app.to_string(),
                arch: c.arch.name().to_string(),
                cycles: c.result.cycles,
                normalized: c.normalized,
                ipc: c.result.ipc(),
                breakdown: c.result.breakdown(),
                avg_running_threads: c.result.avg_running_threads,
                mispredict_rate: c.result.mispredict_rate(),
            })
        })
        .collect();
    let path = std::path::Path::new(&dir).join(format!("{name}.json"));
    let body = serde_json::to_string_pretty(&flat).expect("serializable");
    std::fs::write(&path, body).expect("CSMT_JSON_DIR must be writable");
    Some(path)
}

/// Average, over applications, of a per-row metric.
pub fn mean_over_rows(rows: &[AppRow], f: impl Fn(&AppRow) -> f64) -> f64 {
    rows.iter().map(f).sum::<f64>() / rows.len() as f64
}

/// The sync-hazard fraction of one cell (used by trend assertions).
pub fn sync_fraction(c: &Cell) -> f64 {
    c.result.hazard_fraction(Hazard::Sync)
}

/// The fetch-hazard fraction of one cell.
pub fn fetch_fraction(c: &Cell) -> f64 {
    c.result.hazard_fraction(Hazard::Fetch)
}

/// Data+memory hazard fraction of one cell.
pub fn data_mem_fraction(c: &Cell) -> f64 {
    c.result.hazard_fraction(Hazard::Data) + c.result.hazard_fraction(Hazard::Memory)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmt_workloads::by_name;

    #[test]
    fn run_figure_normalizes_baseline_to_100() {
        let apps = vec![by_name("vpenta").unwrap()];
        let rows = run_figure(
            &[ArchKind::Fa8, ArchKind::Smt2],
            &apps,
            1,
            ArchKind::Fa8,
            0.02,
        );
        let base = rows[0].cell(ArchKind::Fa8);
        assert!((base.normalized - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cycle_time_factors_follow_palacharla_jouppi() {
        assert_eq!(cycle_time_factor(ArchKind::Fa1), 2.0);
        assert_eq!(cycle_time_factor(ArchKind::Smt1), 2.0);
        assert_eq!(cycle_time_factor(ArchKind::Smt2), 1.0);
        assert_eq!(cycle_time_factor(ArchKind::Fa8), 1.0);
    }

    #[test]
    fn write_json_respects_env_and_roundtrips() {
        let apps = vec![by_name("vpenta").unwrap()];
        let rows = run_figure(&[ArchKind::Fa8], &apps, 1, ArchKind::Fa8, 0.02);
        // Without the env var: no write.
        std::env::remove_var("CSMT_JSON_DIR");
        assert!(write_json(&rows, "test_fig").is_none());
        // With it: file appears and parses.
        let dir = std::env::temp_dir().join("csmt_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("CSMT_JSON_DIR", &dir);
        let path = write_json(&rows, "test_fig").expect("written");
        std::env::remove_var("CSMT_JSON_DIR");
        let body = std::fs::read_to_string(path).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 1);
        assert_eq!(parsed[0]["arch"], "FA8");
    }

    #[test]
    fn run_figure_matches_direct_simulation_bit_for_bit() {
        // The sweep-engine path (explicit "static" policy via
        // simulate_with_sched_name) must be indistinguishable from the
        // plain `simulate` the figures used before the engine existed.
        let apps = vec![by_name("vpenta").unwrap(), by_name("fmm").unwrap()];
        let archs = [ArchKind::Fa8, ArchKind::Smt2];
        let rows = run_figure(&archs, &apps, 1, ArchKind::Fa8, 0.02);
        for (row, app) in rows.iter().zip(&apps) {
            for cell in &row.cells {
                let direct = csmt_workloads::simulate(app, cell.arch, 1, 0.02, FIGURE_SEED);
                assert_eq!(
                    serde_json::to_string(&cell.result).unwrap(),
                    serde_json::to_string(&direct).unwrap(),
                    "{} on {}",
                    app.name,
                    cell.arch.name()
                );
            }
        }
    }

    #[test]
    fn run_figure_serial_equals_pooled() {
        // Same grid, 1 worker vs a real pool (the host may be 1-CPU, so
        // force the worker count): every cell and every normalization
        // must be bit-for-bit identical.
        let apps = vec![by_name("mgrid").unwrap(), by_name("swim").unwrap()];
        let archs = [ArchKind::Fa8, ArchKind::Fa2, ArchKind::Smt2];
        let serial = run_figure_with_engine(
            &csmt_sweep::SweepEngine::new(1, None),
            &archs,
            &apps,
            1,
            ArchKind::Fa8,
            0.02,
        );
        let pooled = run_figure_with_engine(
            &csmt_sweep::SweepEngine::new(4, None),
            &archs,
            &apps,
            1,
            ArchKind::Fa8,
            0.02,
        );
        for (a, b) in serial.iter().zip(&pooled) {
            assert_eq!(a.app, b.app);
            for (ca, cb) in a.cells.iter().zip(&b.cells) {
                assert_eq!(ca.arch, cb.arch);
                assert!((ca.normalized - cb.normalized).abs() == 0.0);
                assert_eq!(
                    serde_json::to_string(&ca.result).unwrap(),
                    serde_json::to_string(&cb.result).unwrap()
                );
            }
        }
    }

    #[test]
    fn render_produces_a_row_per_arch() {
        let apps = vec![by_name("mgrid").unwrap()];
        let rows = run_figure(
            &[ArchKind::Fa8, ArchKind::Fa4],
            &apps,
            1,
            ArchKind::Fa8,
            0.02,
        );
        let text = render_figure("test", &rows);
        assert!(text.contains("FA8"));
        assert!(text.contains("FA4"));
        assert!(text.contains("mgrid"));
    }
}
