//! Property-based tests of the cluster pipeline: for *any* valid program on
//! *any* Table 2 cluster shape, the pipeline must commit exactly the
//! correct-path instructions, never deadlock, conserve issue slots, and be
//! deterministic.

use csmt_cpu::{Cluster, ClusterConfig, ClusterEvent};
use csmt_isa::stream::VecStream;
use csmt_isa::{ArchReg, DynInst, OpClass, SplitMix64};
use csmt_mem::{MemConfig, MemorySystem};
use proptest::prelude::*;

/// A compact description of one random instruction.
#[derive(Debug, Clone)]
enum Op {
    Int { dest: u8, src: u8 },
    Fp { dest: u8, src: u8 },
    Mul { dest: u8, src: u8 },
    Div { dest: u8, src: u8 },
    Load { dest: u8, addr: u16, addr_src: u8 },
    Store { addr: u16, val_src: u8 },
    Branch { taken: bool, src: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u8..30, 0u8..30).prop_map(|(dest, src)| Op::Int { dest, src }),
        4 => (0u8..30, 0u8..30).prop_map(|(dest, src)| Op::Fp { dest, src }),
        1 => (1u8..30, 0u8..30).prop_map(|(dest, src)| Op::Mul { dest, src }),
        1 => (1u8..30, 0u8..30).prop_map(|(dest, src)| Op::Div { dest, src }),
        3 => (0u8..30, any::<u16>(), 0u8..30)
            .prop_map(|(dest, addr, addr_src)| Op::Load { dest, addr, addr_src }),
        2 => (any::<u16>(), 0u8..30).prop_map(|(addr, val_src)| Op::Store { addr, val_src }),
        2 => (any::<bool>(), 0u8..30).prop_map(|(taken, src)| Op::Branch { taken, src }),
    ]
}

fn build(ops: &[Op]) -> Vec<DynInst> {
    ops.iter()
        .enumerate()
        .map(|(i, op)| {
            let pc = i as u64 * 4;
            match *op {
                Op::Int { dest, src } => DynInst::alu(
                    pc,
                    OpClass::IntAlu,
                    Some(ArchReg::Int(dest)),
                    [Some(ArchReg::Int(src)), None],
                ),
                Op::Fp { dest, src } => DynInst::alu(
                    pc,
                    OpClass::FpAdd,
                    Some(ArchReg::Fp(dest)),
                    [Some(ArchReg::Fp(src)), None],
                ),
                Op::Mul { dest, src } => DynInst::alu(
                    pc,
                    OpClass::IntMul,
                    Some(ArchReg::Int(dest)),
                    [Some(ArchReg::Int(src)), None],
                ),
                Op::Div { dest, src } => DynInst::alu(
                    pc,
                    OpClass::IntDiv,
                    Some(ArchReg::Int(dest)),
                    [Some(ArchReg::Int(src)), None],
                ),
                Op::Load {
                    dest,
                    addr,
                    addr_src,
                } => DynInst::load(
                    pc,
                    ArchReg::Fp(dest),
                    addr as u64 * 8,
                    [Some(ArchReg::Int(addr_src)), None],
                ),
                Op::Store { addr, val_src } => {
                    DynInst::store(pc, addr as u64 * 8, [Some(ArchReg::Int(val_src)), None])
                }
                Op::Branch { taken, src } => {
                    DynInst::branch(pc, taken, 0, [Some(ArchReg::Int(src)), None])
                }
            }
        })
        .collect()
}

fn run_cluster(
    width: usize,
    hw_threads: usize,
    programs: &[Vec<DynInst>],
    seed: u64,
) -> (u64, Vec<u64>, csmt_cpu::SlotStats) {
    let mut c = Cluster::new(ClusterConfig::for_width(width, hw_threads), seed);
    let mut mem = MemorySystem::new(MemConfig::table3(), 1, seed ^ 0xA5);
    for (t, p) in programs.iter().enumerate() {
        c.attach_thread(t, Box::new(VecStream::new(p.clone())));
    }
    let mut events: Vec<ClusterEvent> = Vec::new();
    let mut now = 0u64;
    // Generous bound: every instruction could serialize behind a cold miss.
    let bound = 5_000 + programs.iter().map(|p| p.len() as u64).sum::<u64>() * 200;
    while c.busy() {
        assert!(now < bound, "pipeline deadlock after {now} cycles");
        c.step(now, &mut mem, 0, &mut events);
        now += 1;
    }
    let committed = (0..programs.len()).map(|t| c.thread_committed(t)).collect();
    (now, committed, c.stats().clone())
}

fn arb_width() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4), Just(8)]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Exactly every correct-path instruction commits, once.
    #[test]
    fn all_instructions_commit_exactly_once(
        ops in prop::collection::vec(arb_op(), 1..300),
        width in arb_width(),
    ) {
        let program = build(&ops);
        let (_, committed, stats) = run_cluster(width, 1, std::slice::from_ref(&program), 7);
        prop_assert_eq!(committed[0], program.len() as u64);
        prop_assert_eq!(stats.committed, program.len() as u64);
    }

    /// Slot accounting conserves: useful + wasted == total slots.
    #[test]
    fn slot_accounting_conserves(
        ops in prop::collection::vec(arb_op(), 1..200),
        width in arb_width(),
    ) {
        let program = build(&ops);
        let (_, _, stats) = run_cluster(width, 1, &[program], 7);
        let accounted = stats.useful + stats.wasted.iter().sum::<f64>();
        prop_assert!((accounted - stats.slots as f64).abs() < 1e-6,
            "accounted {} vs slots {}", accounted, stats.slots);
    }

    /// SMT: several threads with independent random programs all complete,
    /// and the total commit count is the sum of program lengths.
    #[test]
    fn smt_threads_commit_independently(
        progs in prop::collection::vec(prop::collection::vec(arb_op(), 1..80), 2..5),
        width in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let programs: Vec<Vec<DynInst>> = progs.iter().map(|p| build(p)).collect();
        let hw = programs.len().max(2);
        let (_, committed, _) = run_cluster(width, hw, &programs, 3);
        for (t, p) in programs.iter().enumerate() {
            prop_assert_eq!(committed[t], p.len() as u64, "thread {}", t);
        }
    }

    /// Determinism: identical inputs produce identical cycle counts & stats.
    #[test]
    fn runs_are_deterministic(
        ops in prop::collection::vec(arb_op(), 1..150),
        width in arb_width(),
        seed in 0u64..1000,
    ) {
        let program = build(&ops);
        let a = run_cluster(width, 1, std::slice::from_ref(&program), seed);
        let b = run_cluster(width, 1, &[program], seed);
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.2, b.2);
    }

    /// A wider cluster never takes more cycles than a 1-issue cluster on
    /// the same single-thread program (monotonicity in issue width for a
    /// fixed thread count; resources scale with width per Table 2).
    #[test]
    fn wider_clusters_are_not_slower(
        ops in prop::collection::vec(arb_op(), 1..150),
    ) {
        let program = build(&ops);
        let (narrow, _, _) = run_cluster(1, 1, std::slice::from_ref(&program), 7);
        let (wide, _, _) = run_cluster(8, 1, &[program], 7);
        // Allow a small absolute slack: wrong-path pollution after a
        // mispredict differs with width and can cost a few cycles.
        prop_assert!(wide <= narrow + 64, "wide {} vs narrow {}", wide, narrow);
    }
}

/// Deterministic fuzz sweep with a fixed-seed RNG across many shapes —
/// catches shape-specific deadlocks that proptest's case budget may miss.
#[test]
fn fuzz_many_shapes_complete() {
    let mut rng = SplitMix64::new(0xF00D);
    for &(width, threads) in &[
        (1usize, 1usize),
        (2, 1),
        (2, 2),
        (4, 1),
        (4, 4),
        (8, 1),
        (8, 8),
    ] {
        for round in 0..4 {
            let programs: Vec<Vec<DynInst>> = (0..threads)
                .map(|t| {
                    let n = 30 + rng.below(120);
                    (0..n)
                        .map(|i| {
                            let pc = ((t as u64) << 20) | (i * 4);
                            match rng.below(6) {
                                0 => DynInst::alu(
                                    pc,
                                    OpClass::FpMul,
                                    Some(ArchReg::Fp((rng.below(30)) as u8)),
                                    [Some(ArchReg::Fp(rng.below(30) as u8)), None],
                                ),
                                1 => DynInst::load(
                                    pc,
                                    ArchReg::Int(1 + rng.below(29) as u8),
                                    rng.below(1 << 20),
                                    [Some(ArchReg::Int(rng.below(30) as u8)), None],
                                ),
                                2 => DynInst::store(
                                    pc,
                                    rng.below(1 << 20),
                                    [Some(ArchReg::Int(rng.below(30) as u8)), None],
                                ),
                                3 => DynInst::branch(
                                    pc,
                                    rng.chance(0.5),
                                    0,
                                    [Some(ArchReg::Int(rng.below(30) as u8)), None],
                                ),
                                _ => DynInst::alu(
                                    pc,
                                    OpClass::IntAlu,
                                    Some(ArchReg::Int(1 + rng.below(29) as u8)),
                                    [Some(ArchReg::Int(rng.below(30) as u8)), None],
                                ),
                            }
                        })
                        .collect()
                })
                .collect();
            let (_, committed, _) = run_cluster(width, threads, &programs, round);
            for (t, p) in programs.iter().enumerate() {
                assert_eq!(
                    committed[t],
                    p.len() as u64,
                    "w{width} t{threads} r{round} thread {t}"
                );
            }
        }
    }
}
