//! Property-based tests of the hazard taxonomy and the §4.1 proportional
//! wasted-slot division: for *any* sequence of recorded cycles — any
//! width, any useful/wrong-path split, any hazard weight vector — slot
//! accounting must conserve (useful + Σ wasted == width × cycles), stay
//! non-negative, survive merging, and keep the legend/index/label
//! contract the trace layer depends on.

use csmt_cpu::{Hazard, SlotStats};
use proptest::prelude::*;

/// One recorded cycle: issue width, issued counts, hazard weights.
#[derive(Debug, Clone)]
struct Cycle {
    width: usize,
    useful: usize,
    other: usize,
    weights: [f64; 7],
}

fn arb_cycle() -> impl Strategy<Value = Cycle> {
    let weight = prop_oneof![
        3 => Just(0.0f64),
        5 => 0.0f64..10.0,
    ];
    (
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        0usize..9,
        0usize..9,
        prop::collection::vec(weight, 7..8),
    )
        .prop_map(|(width, a, b, w)| {
            // Clamp the issued counts into the width so the record_cycle
            // precondition (useful + other <= width) always holds.
            let useful = a.min(width);
            let other = b.min(width - useful);
            let mut weights = [0.0; 7];
            weights.copy_from_slice(&w);
            Cycle {
                width,
                useful,
                other,
                weights,
            }
        })
}

fn record_all(cycles: &[Cycle]) -> SlotStats {
    let mut s = SlotStats::default();
    for c in cycles {
        s.record_cycle(c.width, c.useful, c.other, &c.weights);
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// §4.1 conservation: the proportional division hands out *exactly*
    /// the wasted slots — useful + Σ wasted == issue_width × cycles for
    /// any weight vectors, including all-zero ones (fetch fallback).
    #[test]
    fn proportional_division_conserves_slots(
        cycles in prop::collection::vec(arb_cycle(), 1..200),
    ) {
        let s = record_all(&cycles);
        let expected: u64 = cycles.iter().map(|c| c.width as u64).sum();
        prop_assert_eq!(s.slots, expected);
        prop_assert_eq!(s.cycles, cycles.len() as u64);
        let accounted = s.useful + s.wasted.iter().sum::<f64>();
        // 1e-9 relative: f64 division residue only, no lost slots.
        prop_assert!(
            (accounted - expected as f64).abs() <= 1e-9 * expected.max(1) as f64,
            "accounted {} vs slots {}", accounted, expected
        );
    }

    /// Every accumulator stays non-negative, and the breakdown fractions
    /// sum to 1 whenever any slot was recorded.
    #[test]
    fn breakdown_is_a_distribution(
        cycles in prop::collection::vec(arb_cycle(), 1..100),
    ) {
        let s = record_all(&cycles);
        prop_assert!(s.useful >= 0.0);
        for (i, w) in s.wasted.iter().enumerate() {
            prop_assert!(*w >= 0.0, "wasted[{}] = {}", i, w);
        }
        let b = s.breakdown();
        prop_assert!(b.iter().all(|f| (0.0..=1.0 + 1e-12).contains(f)));
        prop_assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// Merging per-cluster accumulators equals recording everything into
    /// one (slots, useful, wasted; cycles is the lockstep max).
    #[test]
    fn merge_matches_single_accumulator(
        a in prop::collection::vec(arb_cycle(), 1..60),
        b in prop::collection::vec(arb_cycle(), 1..60),
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));
        let mut joint = record_all(&a);
        for c in &b {
            joint.record_cycle(c.width, c.useful, c.other, &c.weights);
        }
        prop_assert_eq!(merged.slots, joint.slots);
        prop_assert!((merged.useful - joint.useful).abs() < 1e-9);
        for i in 0..7 {
            prop_assert!((merged.wasted[i] - joint.wasted[i]).abs() < 1e-9);
        }
        prop_assert_eq!(merged.cycles, a.len().max(b.len()) as u64);
    }

    /// An unissued slot lands on exactly the hazards with nonzero weight,
    /// proportionally — never on a zero-weight hazard (except the fetch
    /// fallback when *all* weights are zero).
    #[test]
    fn zero_weight_hazards_get_nothing(
        c in arb_cycle(),
    ) {
        let s = record_all(std::slice::from_ref(&c));
        let any_weight = c.weights.iter().sum::<f64>() > 0.0;
        for h in Hazard::ALL {
            let i = h.index();
            let charged = s.wasted[i]
                - if h == Hazard::Other { c.other as f64 } else { 0.0 };
            if c.weights[i] == 0.0 && (any_weight || h != Hazard::Fetch) {
                prop_assert!(charged.abs() < 1e-12, "{}: {}", h.label(), charged);
            }
        }
    }
}

/// The legend order is the dense index order (0..7), and labels are unique
/// and agree with the trace crate's heartbeat keys.
#[test]
fn legend_order_is_dense_and_labels_unique() {
    assert_eq!(Hazard::ALL.len(), 7);
    let mut labels = Vec::new();
    for (i, h) in Hazard::ALL.iter().enumerate() {
        assert_eq!(h.index(), i, "{h:?} out of legend order");
        assert_eq!(h.label(), csmt_trace::HAZARD_LABELS[i]);
        labels.push(h.label());
    }
    let mut dedup = labels.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), labels.len(), "duplicate hazard labels");
}
