//! Behavioral tests for the cluster pipeline, exercised through the
//! public [`Cluster`] API (they predate the pipeline-module split and
//! pin the same behavior across it).

use csmt_cpu::{Cluster, ClusterConfig, ClusterEvent, FetchPolicy, Hazard, ThreadState};
use csmt_isa::stream::VecStream;
use csmt_isa::{ArchReg, DynInst, OpClass, SyncOp};
use csmt_mem::{MemConfig, MemorySystem};

fn mem1() -> MemorySystem {
    MemorySystem::new(MemConfig::table3(), 1, 7)
}

fn alu(pc: u64, dest: u8, src: u8) -> DynInst {
    DynInst::alu(
        pc,
        OpClass::IntAlu,
        Some(ArchReg::Int(dest)),
        [Some(ArchReg::Int(src)), None],
    )
}

/// Run until all threads are done; returns cycles taken.
fn run(cluster: &mut Cluster, mem: &mut MemorySystem, max: u64) -> u64 {
    let mut events = Vec::new();
    for now in 0..max {
        cluster.step(now, mem, 0, &mut events);
        if !cluster.busy() {
            return now;
        }
    }
    panic!("did not finish within {max} cycles");
}

#[test]
fn independent_alus_approach_full_issue_width() {
    let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
    let mut mem = mem1();
    // 400 independent ALU ops (distinct dest, src = $0-equivalent none).
    let insts: Vec<DynInst> = (0..400)
        .map(|i| {
            DynInst::alu(
                i * 4,
                OpClass::IntAlu,
                Some(ArchReg::Int(1 + (i % 8) as u8)),
                [None, None],
            )
        })
        .collect();
    c.attach_thread(0, Box::new(VecStream::new(insts)));
    let cycles = run(&mut c, &mut mem, 10_000);
    assert_eq!(c.thread_committed(0), 400);
    // 4 int FUs, fetch 4/cycle: should finish in a little over 100 cycles.
    assert!(cycles < 140, "took {cycles}");
}

#[test]
fn dependence_chain_limits_ipc_to_one() {
    let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
    let mut mem = mem1();
    // r1 <- r1 chain of 300 ops.
    let insts: Vec<DynInst> = (0..300).map(|i| alu(i * 4, 1, 1)).collect();
    c.attach_thread(0, Box::new(VecStream::new(insts)));
    let cycles = run(&mut c, &mut mem, 10_000);
    assert!(cycles >= 299, "chain cannot beat 1 IPC: {cycles}");
    assert!(cycles < 400, "but should stay close to it: {cycles}");
}

#[test]
fn load_use_pays_memory_latency() {
    let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
    let mut mem = mem1();
    // A single load (cold: TLB walk + local memory) then a dependent op.
    let insts = vec![
        DynInst::load(0, ArchReg::Int(1), 0x100, [None, None]),
        alu(4, 2, 1),
    ];
    c.attach_thread(0, Box::new(VecStream::new(insts)));
    let cycles = run(&mut c, &mut mem, 10_000);
    // ~30 (TLB) + 40 (memory) plus pipeline overhead.
    assert!(
        cycles >= 70,
        "cold load must expose memory latency: {cycles}"
    );
    assert!(cycles < 100, "{cycles}");
}

#[test]
fn store_forwarding_hides_memory_latency() {
    let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
    let mut mem = mem1();
    // Store to X then load from X: the load forwards, no 40-cycle trip.
    let insts = vec![
        DynInst::store(0, 0x8000, [None, None]),
        DynInst::load(4, ArchReg::Int(1), 0x8000, [None, None]),
        alu(8, 2, 1),
    ];
    c.attach_thread(0, Box::new(VecStream::new(insts)));
    let cycles = run(&mut c, &mut mem, 10_000);
    assert!(cycles < 20, "forwarded load should be fast: {cycles}");
}

#[test]
fn mispredicted_branch_squashes_and_still_commits_exact_count() {
    let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
    let mut mem = mem1();
    // Alternating taken/not-taken branches defeat the 2-bit counter
    // part of the time; all correct-path instructions must still commit
    // exactly once.
    let mut insts = Vec::new();
    for i in 0..100u64 {
        insts.push(alu(i * 16, 1, 1));
        insts.push(DynInst::branch(
            i * 16 + 4,
            i % 2 == 0,
            0,
            [Some(ArchReg::Int(1)), None],
        ));
    }
    c.attach_thread(0, Box::new(VecStream::new(insts)));
    run(&mut c, &mut mem, 50_000);
    assert_eq!(c.thread_committed(0), 200);
    let (_, mispredicts) = c.bpred_stats();
    assert!(
        mispredicts > 20,
        "alternating pattern must mispredict: {mispredicts}"
    );
    // Wrong-path issue shows up as `other` slots.
    assert!(c.stats().wasted[Hazard::Other.index()] > 0.0);
}

#[test]
fn well_predicted_loop_commits_cleanly() {
    let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
    let mut mem = mem1();
    // Same backward branch, always taken: predictor locks on.
    let mut insts = Vec::new();
    for _ in 0..200u64 {
        insts.push(alu(0, 1, 1));
        insts.push(DynInst::branch(4, true, 0, [Some(ArchReg::Int(1)), None]));
    }
    c.attach_thread(0, Box::new(VecStream::new(insts)));
    run(&mut c, &mut mem, 50_000);
    assert_eq!(c.thread_committed(0), 400);
    let (_, mispredicts) = c.bpred_stats();
    assert!(
        mispredicts <= 3,
        "loop branch should be learned: {mispredicts}"
    );
}

#[test]
fn sync_marker_drains_then_reports_and_resumes() {
    let mut c = Cluster::new(ClusterConfig::for_width(4, 2), 1);
    let mut mem = mem1();
    let insts = vec![
        alu(0, 1, 1),
        DynInst::sync(4, SyncOp::Barrier(3)),
        alu(8, 2, 2),
    ];
    c.attach_thread(0, Box::new(VecStream::new(insts)));
    let mut events = Vec::new();
    let mut reached_at = None;
    for now in 0..200 {
        events.clear();
        c.step(now, &mut mem, 0, &mut events);
        if let Some(ClusterEvent::SyncReached { thread, op }) = events.first() {
            assert_eq!(*thread, 0);
            assert_eq!(*op, SyncOp::Barrier(3));
            reached_at = Some(now);
            break;
        }
    }
    let reached_at = reached_at.expect("barrier reached");
    assert_eq!(c.thread_state(0), ThreadState::WaitingSync);
    assert_eq!(c.thread_committed(0), 1, "drained before reporting");
    // Spin a while: parked thread must not advance.
    for now in reached_at + 1..reached_at + 20 {
        events.clear();
        c.step(now, &mut mem, 0, &mut events);
    }
    assert_eq!(c.thread_committed(0), 1);
    // Sync slots accumulated while spinning.
    assert!(c.stats().wasted[Hazard::Sync.index()] > 0.0);
    c.resume_thread(0);
    let mut done = false;
    for now in reached_at + 20..reached_at + 200 {
        events.clear();
        c.step(now, &mut mem, 0, &mut events);
        if events
            .iter()
            .any(|e| matches!(e, ClusterEvent::ThreadDone { thread: 0 }))
        {
            done = true;
            break;
        }
    }
    assert!(done);
    assert_eq!(c.thread_committed(0), 2);
}

#[test]
fn two_threads_share_the_cluster_faster_than_one_each() {
    let chain = |base: u64| -> Vec<DynInst> { (0..300).map(|i| alu(base + i * 4, 1, 1)).collect() };
    // One thread alone: latency-bound chain, IPC 1.
    let mut c1 = Cluster::new(ClusterConfig::for_width(4, 4), 1);
    let mut mem = mem1();
    c1.attach_thread(0, Box::new(VecStream::new(chain(0))));
    let solo = run(&mut c1, &mut mem, 10_000);
    // Two threads with independent chains: SMT overlaps them.
    let mut c2 = Cluster::new(ClusterConfig::for_width(4, 4), 1);
    let mut mem2 = mem1();
    c2.attach_thread(0, Box::new(VecStream::new(chain(0))));
    c2.attach_thread(1, Box::new(VecStream::new(chain(0x10000))));
    let duo = run(&mut c2, &mut mem2, 10_000);
    assert!(
        (duo as f64) < solo as f64 * 1.4,
        "two chains should overlap, not serialize: solo={solo} duo={duo}"
    );
    assert_eq!(c2.thread_committed(0) + c2.thread_committed(1), 600);
}

#[test]
fn narrow_cluster_cannot_exploit_wide_ilp() {
    // 8 independent streams of work inside one thread on a 1-issue
    // cluster: IPC pinned at 1 regardless of ILP.
    let mut c = Cluster::new(ClusterConfig::for_width(1, 1), 1);
    let mut mem = mem1();
    let insts: Vec<DynInst> = (0..200)
        .map(|i| {
            DynInst::alu(
                i * 4,
                OpClass::IntAlu,
                Some(ArchReg::Int(1 + (i % 8) as u8)),
                [None, None],
            )
        })
        .collect();
    c.attach_thread(0, Box::new(VecStream::new(insts)));
    let cycles = run(&mut c, &mut mem, 10_000);
    assert!(cycles >= 199, "1-issue cluster: {cycles}");
}

#[test]
fn rename_pressure_throttles_but_does_not_deadlock() {
    // Tiny window/rename budget via the 1-wide config, long stream of
    // destination-writing ops.
    let mut c = Cluster::new(ClusterConfig::for_width(1, 1), 1);
    let mut mem = mem1();
    let insts: Vec<DynInst> = (0..500).map(|i| alu(i * 4, 1 + (i % 4) as u8, 1)).collect();
    c.attach_thread(0, Box::new(VecStream::new(insts)));
    run(&mut c, &mut mem, 50_000);
    assert_eq!(c.thread_committed(0), 500);
}

#[test]
fn deterministic_repeat_runs() {
    let build = || {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 2), 99);
        let mut mem = mem1();
        let mut insts = Vec::new();
        for i in 0..150u64 {
            insts.push(DynInst::load(
                i * 12,
                ArchReg::Fp(1),
                (i * 712) % 65536,
                [None, None],
            ));
            insts.push(DynInst::alu(
                i * 12 + 4,
                OpClass::FpAdd,
                Some(ArchReg::Fp(2)),
                [Some(ArchReg::Fp(1)), None],
            ));
            insts.push(DynInst::branch(i * 12 + 8, i % 7 == 0, 0, [None, None]));
        }
        c.attach_thread(0, Box::new(VecStream::new(insts.clone())));
        c.attach_thread(1, Box::new(VecStream::new(insts)));
        let cycles = run(&mut c, &mut mem, 100_000);
        (cycles, c.stats().clone())
    };
    let (c1, s1) = build();
    let (c2, s2) = build();
    assert_eq!(c1, c2);
    assert_eq!(s1, s2);
}

#[test]
fn slot_accounting_is_conservative() {
    // useful + wasted must equal total slots.
    let mut c = Cluster::new(ClusterConfig::for_width(4, 2), 1);
    let mut mem = mem1();
    let insts: Vec<DynInst> = (0..100)
        .map(|i| {
            DynInst::load(
                i * 4,
                ArchReg::Int(1),
                (i * 64) % 32768,
                [Some(ArchReg::Int(1)), None],
            )
        })
        .collect();
    c.attach_thread(0, Box::new(VecStream::new(insts)));
    run(&mut c, &mut mem, 100_000);
    let s = c.stats();
    let accounted = s.useful + s.wasted.iter().sum::<f64>();
    assert!(
        (accounted - s.slots as f64).abs() < 1e-6,
        "accounted {accounted} vs slots {}",
        s.slots
    );
}

#[test]
fn icount_policy_balances_window_occupancy() {
    // Thread 0 runs a long-latency dependent chain (clogs slowly);
    // thread 1 runs independent ops. Under ICOUNT the starved thread
    // gets priority, so total completion is no worse than round-robin.
    let mk = |policy: FetchPolicy| {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 2).with_fetch_policy(policy), 1);
        let mut mem = mem1();
        let chain: Vec<DynInst> = (0..200)
            .map(|i| {
                DynInst::alu(
                    i * 4,
                    OpClass::FpDivDouble,
                    Some(ArchReg::Fp(2)),
                    [Some(ArchReg::Fp(2)), None],
                )
            })
            .collect();
        let indep: Vec<DynInst> = (0..200)
            .map(|i| {
                DynInst::alu(
                    0x8000 + i * 4,
                    OpClass::IntAlu,
                    Some(ArchReg::Int(1 + (i % 8) as u8)),
                    [None, None],
                )
            })
            .collect();
        c.attach_thread(0, Box::new(VecStream::new(chain)));
        c.attach_thread(1, Box::new(VecStream::new(indep)));
        run(&mut c, &mut mem, 100_000)
    };
    let rr = mk(FetchPolicy::RoundRobin);
    let ic = mk(FetchPolicy::ICount);
    assert!(
        ic <= rr + 8,
        "ICOUNT must not lose to RR here: {ic} vs {rr}"
    );
}

#[test]
fn partitioned_fetch_feeds_two_threads_per_cycle() {
    // With 8 threads of pure independent work on an 8-wide cluster,
    // partitioned fetch sustains two streams per cycle and must not be
    // slower than single-thread round-robin fetch.
    let mk = |policy: FetchPolicy| {
        let mut c = Cluster::new(ClusterConfig::for_width(8, 8).with_fetch_policy(policy), 1);
        let mut mem = mem1();
        for t in 0..8 {
            let insts: Vec<DynInst> = (0..100)
                .map(|i| {
                    DynInst::alu(
                        ((t as u64) << 16) | (i * 4),
                        if i % 2 == 0 {
                            OpClass::IntAlu
                        } else {
                            OpClass::FpAdd
                        },
                        Some(ArchReg::Int(1 + (i % 8) as u8)),
                        [None, None],
                    )
                })
                .collect();
            c.attach_thread(t, Box::new(VecStream::new(insts)));
        }
        run(&mut c, &mut mem, 100_000)
    };
    let rr = mk(FetchPolicy::RoundRobin);
    let part = mk(FetchPolicy::Partitioned2);
    assert!(part <= rr + 16, "partitioned {part} vs rr {rr}");
}

#[test]
fn all_policies_commit_everything() {
    for policy in [
        FetchPolicy::RoundRobin,
        FetchPolicy::ICount,
        FetchPolicy::Partitioned2,
    ] {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 4).with_fetch_policy(policy), 1);
        let mut mem = mem1();
        for t in 0..4 {
            let insts: Vec<DynInst> = (0..150)
                .map(|i| {
                    DynInst::alu(
                        ((t as u64) << 16) | (i * 4),
                        OpClass::IntAlu,
                        Some(ArchReg::Int(1)),
                        [Some(ArchReg::Int(1)), None],
                    )
                })
                .collect();
            c.attach_thread(t, Box::new(VecStream::new(insts)));
        }
        run(&mut c, &mut mem, 100_000);
        for t in 0..4 {
            assert_eq!(c.thread_committed(t), 150, "{policy:?} thread {t}");
        }
    }
}

#[test]
fn tiny_store_buffer_throttles_store_bursts() {
    // A stream of stores to distinct lines (every one a cache miss):
    // with a 1-entry store buffer, commits serialize behind the misses.
    let mk = |buf: usize| {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 1).with_store_buffer(buf), 1);
        let mut mem = mem1();
        let insts: Vec<DynInst> = (0..100)
            .map(|i| DynInst::store(i * 4, 0x100_000 + i * 64, [None, None]))
            .collect();
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        run(&mut c, &mut mem, 1_000_000)
    };
    let roomy = mk(16);
    let tight = mk(1);
    assert!(
        tight > roomy * 3,
        "1-entry buffer must serialize misses: {tight} vs {roomy}"
    );
    // Everything still commits.
}

#[test]
fn idle_cluster_accumulates_sync_slots() {
    let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
    let mut mem = mem1();
    let mut events = Vec::new();
    for now in 0..10 {
        c.step(now, &mut mem, 0, &mut events);
    }
    let s = c.stats();
    assert_eq!(s.useful, 0.0);
    assert_eq!(s.wasted[Hazard::Sync.index()], 40.0);
}
