//! Functional-unit pools.
//!
//! Each cluster owns `fu_counts = [int, ldst, fp]` units (Table 2). Units
//! are pipelined — a new operation can start every cycle — except the
//! dividers, which occupy their unit for the full latency (Table 1 via
//! [`OpClass::fu_occupancy`]).

use csmt_isa::OpClass;

/// The functional units of one cluster.
#[derive(Debug, Clone)]
pub struct FuPool {
    /// busy-until cycle per unit instance, grouped per kind.
    busy: [Vec<u64>; 3],
    issued: [u64; 3],
    structural_stalls: u64,
}

impl FuPool {
    /// Pool with `counts[k]` units of each [`FuKind`].
    pub fn new(counts: [usize; 3]) -> Self {
        assert!(counts.iter().all(|&c| c >= 1), "every kind needs ≥1 unit");
        FuPool {
            busy: [vec![0; counts[0]], vec![0; counts[1]], vec![0; counts[2]]],
            issued: [0; 3],
            structural_stalls: 0,
        }
    }

    /// Whether a unit for `op` is free at `now`. Ops needing no unit
    /// (sync markers) are always accepted.
    pub fn can_issue(&self, op: OpClass, now: u64) -> bool {
        match op.fu_kind() {
            None => true,
            Some(k) => self.busy[k.index()].iter().any(|&b| b <= now),
        }
    }

    /// Occupy a unit for `op` starting at `now`. Caller must have checked
    /// [`Self::can_issue`]. Returns the cycle execution completes for
    /// non-memory ops (`now + latency`).
    pub fn issue(&mut self, op: OpClass, now: u64) -> u64 {
        if let Some(k) = op.fu_kind() {
            let slot = self.busy[k.index()]
                .iter_mut()
                .find(|b| **b <= now)
                .expect("can_issue checked");
            *slot = now + op.fu_occupancy() as u64;
            self.issued[k.index()] += 1;
        }
        now + op.latency() as u64
    }

    /// Record that an instruction was ready but found no unit this cycle.
    pub fn note_structural_stall(&mut self) {
        self.structural_stalls += 1;
    }

    /// (per-kind issue counts, structural stall events).
    pub fn stats(&self) -> ([u64; 3], u64) {
        (self.issued, self.structural_stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_unit_accepts_every_cycle() {
        let mut p = FuPool::new([1, 1, 1]);
        assert!(p.can_issue(OpClass::FpAdd, 0));
        p.issue(OpClass::FpAdd, 0);
        // Occupancy 1: free again next cycle, even though latency is 1.
        assert!(p.can_issue(OpClass::FpAdd, 1));
        // But not in the same cycle.
        assert!(!p.can_issue(OpClass::FpMul, 0));
    }

    #[test]
    fn divider_blocks_its_unit_for_full_latency() {
        let mut p = FuPool::new([1, 1, 1]);
        let done = p.issue(OpClass::IntDiv, 0);
        assert_eq!(done, 8);
        for t in 0..8 {
            assert!(!p.can_issue(OpClass::IntAlu, t), "cycle {t}");
        }
        assert!(p.can_issue(OpClass::IntAlu, 8));
    }

    #[test]
    fn kinds_do_not_interfere() {
        let mut p = FuPool::new([1, 1, 1]);
        p.issue(OpClass::IntDiv, 0);
        assert!(p.can_issue(OpClass::Load, 0));
        assert!(p.can_issue(OpClass::FpAdd, 0));
    }

    #[test]
    fn multiple_units_of_a_kind_issue_in_parallel() {
        let mut p = FuPool::new([2, 1, 1]);
        assert!(p.can_issue(OpClass::IntAlu, 0));
        p.issue(OpClass::IntAlu, 0);
        assert!(p.can_issue(OpClass::IntAlu, 0));
        p.issue(OpClass::IntAlu, 0);
        assert!(!p.can_issue(OpClass::IntAlu, 0));
    }

    #[test]
    fn sync_ops_need_no_unit() {
        let mut p = FuPool::new([1, 1, 1]);
        p.issue(OpClass::IntDiv, 0); // int unit fully busy
        assert!(p.can_issue(OpClass::Sync, 3));
        assert_eq!(p.issue(OpClass::Sync, 3), 4);
    }

    #[test]
    fn issue_returns_completion_per_table1() {
        let mut p = FuPool::new([2, 2, 2]);
        assert_eq!(p.issue(OpClass::IntAlu, 10), 11);
        assert_eq!(p.issue(OpClass::IntMul, 10), 12);
        assert_eq!(p.issue(OpClass::FpDivDouble, 10), 17);
    }

    #[test]
    fn stats_track_per_kind_issues() {
        let mut p = FuPool::new([2, 2, 2]);
        p.issue(OpClass::IntAlu, 0);
        p.issue(OpClass::Load, 0);
        p.issue(OpClass::FpMul, 0);
        p.issue(OpClass::FpAdd, 1);
        let (counts, _) = p.stats();
        assert_eq!(counts, [1, 1, 2]);
    }
}
