//! Branch prediction (paper §3.1).
//!
//! "A 2K-entry direct-mapped branch prediction table, with each entry having
//! a 2-bit saturating counter and addressed by the low-order bits of the PC,
//! allows multiple branch predictions to be performed even when there are
//! pending unresolved branches."
//!
//! We add the branch target buffer of Figure 2: a predicted-taken branch
//! whose target is absent from the BTB cannot be fetched past, which the
//! pipeline treats like a misprediction (fetch resumes at resolution).

/// 2-bit saturating counter states. Strong-not-taken is the implicit
/// floor (0) that `saturating_sub` clamps to, so it needs no name.
const WEAK_NT: u8 = 1;
const WEAK_T: u8 = 2;
const STRONG_T: u8 = 3;

/// Direction-prediction scheme.
///
/// The paper's core uses the 2-bit bimodal table quoted above; `GShare`
/// (global history XOR PC) and `StaticTaken` are provided for the
/// predictor ablation (`cargo run --release --bin predictor_study`) —
/// gshare is the natural mid-1990s upgrade, static-taken the lower bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PredictorKind {
    /// 2K-entry bimodal, 2-bit saturating counters — the paper's design.
    #[default]
    Bimodal,
    /// Gshare: PHT indexed by PC XOR a global history register. The
    /// history register is shared by all threads of the cluster (as a real
    /// SMT front end would share it), so cross-thread interference is
    /// modelled. History updates at resolution.
    GShare {
        /// Bits of global history folded into the index.
        history_bits: u32,
    },
    /// Predict taken always (with BTB): the no-hardware baseline.
    StaticTaken,
}

/// Direct-mapped pattern history table + BTB.
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    kind: PredictorKind,
    counters: Vec<u8>,
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    /// Speculative global history (gshare): updated at predict with the
    /// predicted outcome, repaired from `arch_ghr` when a misprediction
    /// resolves (mirroring the pipeline squash).
    ghr: u64,
    /// Architectural global history: updated only at resolution with true
    /// outcomes.
    arch_ghr: u64,
    lookups: u64,
    mispredicts: u64,
}

/// PHT entries (paper: 2K).
pub const PHT_ENTRIES: usize = 2048;
/// BTB entries (paper Figure 2 shows a BTB but gives no size; 512 is the
/// period-typical choice, documented in DESIGN.md).
pub const BTB_ENTRIES: usize = 512;

impl Default for BranchPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor {
    /// Fresh predictor of the paper's bimodal kind.
    pub fn new() -> Self {
        Self::with_kind(PredictorKind::Bimodal)
    }

    /// Fresh predictor of the given kind.
    pub fn with_kind(kind: PredictorKind) -> Self {
        BranchPredictor {
            kind,
            counters: vec![WEAK_NT; PHT_ENTRIES],
            btb_tags: vec![u64::MAX; BTB_ENTRIES],
            btb_targets: vec![0; BTB_ENTRIES],
            ghr: 0,
            arch_ghr: 0,
            lookups: 0,
            mispredicts: 0,
        }
    }

    #[inline]
    fn pht_index_with(&self, pc: u64, history: u64) -> usize {
        let base = (pc >> 2) as usize;
        match self.kind {
            PredictorKind::Bimodal | PredictorKind::StaticTaken => base & (PHT_ENTRIES - 1),
            PredictorKind::GShare { history_bits } => {
                let hist = (history & ((1u64 << history_bits) - 1)) as usize;
                (base ^ hist) & (PHT_ENTRIES - 1)
            }
        }
    }

    #[inline]
    fn btb_index(pc: u64) -> usize {
        ((pc >> 2) as usize) & (BTB_ENTRIES - 1)
    }

    /// Direction prediction for the branch at `pc`.
    #[inline]
    pub fn predict(&mut self, pc: u64) -> bool {
        self.lookups += 1;
        if self.kind == PredictorKind::StaticTaken {
            return true;
        }
        let pred = self.counters[self.pht_index_with(pc, self.ghr)] >= WEAK_T;
        if matches!(self.kind, PredictorKind::GShare { .. }) {
            // Speculative history update with the prediction.
            self.ghr = (self.ghr << 1) | u64::from(pred);
        }
        pred
    }

    /// Whether the BTB can supply `target` for a predicted-taken branch.
    #[inline]
    pub fn btb_hit(&self, pc: u64, target: u64) -> bool {
        let i = Self::btb_index(pc);
        self.btb_tags[i] == pc && self.btb_targets[i] == target
    }

    /// Resolve the branch at `pc`: train the counter, fill the BTB for taken
    /// branches, and count mispredictions.
    pub fn resolve(&mut self, pc: u64, taken: bool, target: u64, was_mispredicted: bool) {
        // Train at the index the prediction-time history implied: the
        // architectural history leading into this branch (exact on the
        // correct path, the standard approximation after squashes).
        let idx = self.pht_index_with(pc, self.arch_ghr);
        let c = &mut self.counters[idx];
        *c = if taken {
            (*c + 1).min(STRONG_T)
        } else {
            c.saturating_sub(1)
        };
        if matches!(self.kind, PredictorKind::GShare { .. }) {
            self.arch_ghr = (self.arch_ghr << 1) | u64::from(taken);
            if was_mispredicted {
                // Squash repair: speculative history restarts from the
                // architectural one.
                self.ghr = self.arch_ghr;
            }
        }
        if taken {
            let i = Self::btb_index(pc);
            self.btb_tags[i] = pc;
            self.btb_targets[i] = target;
        }
        if was_mispredicted {
            self.mispredicts += 1;
        }
    }

    /// (lookups, mispredictions).
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.mispredicts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_prediction_is_not_taken() {
        let mut p = BranchPredictor::new();
        assert!(!p.predict(0x1000));
    }

    #[test]
    fn counter_saturates_toward_taken() {
        let mut p = BranchPredictor::new();
        let pc = 0x44;
        p.resolve(pc, true, 0x10, false); // WEAK_NT -> WEAK_T
        assert!(p.predict(pc));
        p.resolve(pc, true, 0x10, false); // -> STRONG_T
        p.resolve(pc, false, 0x10, false); // -> WEAK_T: still predicts taken
        assert!(p.predict(pc));
        p.resolve(pc, false, 0x10, false); // -> WEAK_NT
        assert!(!p.predict(pc));
    }

    #[test]
    fn loop_branch_learns_after_two_takens() {
        let mut p = BranchPredictor::new();
        let pc = 0x88;
        let mut wrong = 0;
        for _ in 0..100 {
            let pred = p.predict(pc);
            if !pred {
                wrong += 1;
            }
            p.resolve(pc, true, 0x40, !pred);
        }
        assert_eq!(wrong, 1, "only the cold prediction misses");
    }

    #[test]
    fn aliasing_maps_to_same_counter() {
        let mut p = BranchPredictor::new();
        let pc = 0x100;
        let alias = pc + (PHT_ENTRIES as u64) * 4;
        for _ in 0..3 {
            p.resolve(pc, true, 0x0, false);
        }
        assert!(p.predict(alias), "aliased PC shares the trained counter");
    }

    #[test]
    fn btb_filled_only_by_taken_branches() {
        let mut p = BranchPredictor::new();
        let pc = 0x200;
        assert!(!p.btb_hit(pc, 0x40));
        p.resolve(pc, false, 0x40, false);
        assert!(!p.btb_hit(pc, 0x40));
        p.resolve(pc, true, 0x40, false);
        assert!(p.btb_hit(pc, 0x40));
        assert!(!p.btb_hit(pc, 0x44), "target must match");
    }

    #[test]
    fn static_taken_always_predicts_taken() {
        let mut p = BranchPredictor::with_kind(PredictorKind::StaticTaken);
        assert!(p.predict(0x10));
        p.resolve(0x10, false, 0, true);
        assert!(p.predict(0x10), "no learning in the static predictor");
    }

    #[test]
    fn gshare_learns_an_alternating_pattern_bimodal_cannot() {
        // taken, not-taken, taken, not-taken...: bimodal oscillates around
        // ~50% accuracy; gshare keys off the previous outcome and converges.
        let run = |kind: PredictorKind| {
            let mut p = BranchPredictor::with_kind(kind);
            let pc = 0x40;
            let mut wrong = 0;
            for i in 0..400u64 {
                let actual = i % 2 == 0;
                let pred = p.predict(pc);
                if pred != actual {
                    wrong += 1;
                }
                p.resolve(pc, actual, 0x80, pred != actual);
            }
            wrong
        };
        let bimodal = run(PredictorKind::Bimodal);
        let gshare = run(PredictorKind::GShare { history_bits: 8 });
        assert!(gshare < 20, "gshare should converge: {gshare}");
        assert!(bimodal > 100, "bimodal should thrash: {bimodal}");
    }

    #[test]
    fn gshare_still_learns_loop_branches() {
        let mut p = BranchPredictor::with_kind(PredictorKind::GShare { history_bits: 6 });
        let pc = 0x88;
        let mut wrong = 0;
        for _ in 0..200 {
            let pred = p.predict(pc);
            if !pred {
                wrong += 1;
            }
            p.resolve(pc, true, 0x40, !pred);
        }
        assert!(wrong <= 8, "all-taken history saturates quickly: {wrong}");
    }

    #[test]
    fn mispredict_stat_counts_resolutions() {
        let mut p = BranchPredictor::new();
        p.resolve(0, true, 0, true);
        p.resolve(0, true, 0, false);
        p.resolve(0, false, 0, true);
        assert_eq!(p.stats().1, 2);
    }
}
