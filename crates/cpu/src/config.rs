//! Per-cluster resource budgets (the columns of paper Table 2).
//!
//! A chip is `n` identical clusters; chip-level constructors live in
//! `csmt-core::configs`. The invariant running through Table 2 is that the
//! whole chip always sums to (about) the same hardware: 8 issue slots, 128
//! window/ROB entries, 128+128 renaming registers, 8/8/8 functional units —
//! except FA1/SMT1, whose single 8-issue cluster has 6/4/4 units, exactly as
//! the paper specifies for the conventional superscalar.

/// How the cluster's fetch unit chooses threads each cycle.
///
/// The paper's architectures fetch from one thread per cycle in round-robin
/// order (§3.2); its §5.2 discussion of the fetch bottleneck cites Tullsen
/// et al.'s alternatives — "partitioning the fetch unit or using
/// instruction count feedback techniques" — which are provided here for the
/// corresponding ablation (`cargo run --release --bin fetch_policies`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FetchPolicy {
    /// One thread per cycle, strict round-robin — the paper's baseline.
    #[default]
    RoundRobin,
    /// Instruction-count feedback (ICOUNT): fetch for the thread with the
    /// fewest instructions in flight, so no thread clogs the shared window.
    ICount,
    /// Partitioned fetch: two threads fetch per cycle, half the width each.
    Partitioned2,
}

/// Resource budget of one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Maximum instructions issued per cycle (also the per-thread fetch
    /// width: "each cluster has its own fetch unit, with a thread capable of
    /// fetching up to <issue width> instructions/cycle", §3.3).
    pub issue_width: usize,
    /// Hardware thread contexts in this cluster (1 for FA clusters).
    pub hw_threads: usize,
    /// Functional units: `[integer, load/store, floating point]`.
    pub fu_counts: [usize; 3],
    /// Entries in the shared instruction window / reorder buffer (Table 2
    /// lists a single figure for both).
    pub window_entries: usize,
    /// Integer renaming registers.
    pub rename_int: usize,
    /// FP renaming registers.
    pub rename_fp: usize,
    /// Instructions retired per cycle (= issue width; §3.1 "fetch and retire
    /// up to n instructions each cycle").
    pub retire_width: usize,
    /// Fetch-unit thread-selection policy (paper baseline: round-robin).
    pub fetch_policy: FetchPolicy,
    /// Branch-direction predictor (paper baseline: 2-bit bimodal).
    pub predictor: crate::bpred::PredictorKind,
    /// Store-buffer entries: committed stores whose cache write is still in
    /// flight. A full buffer stalls store commit (a structural hazard).
    /// The paper does not size one; 16 is generous enough to be invisible
    /// in the baseline and exists for the backpressure ablation.
    pub store_buffer: usize,
}

impl ClusterConfig {
    /// A cluster of the given issue width with Table 2's proportional
    /// budgets: `width × 16` window entries and rename registers of each
    /// kind, `width` FUs of each kind (capped per the 8-issue special case).
    pub fn for_width(issue_width: usize, hw_threads: usize) -> Self {
        assert!(
            matches!(issue_width, 1 | 2 | 4 | 8),
            "paper uses widths 1/2/4/8"
        );
        assert!(hw_threads >= 1);
        let fu_counts = if issue_width == 8 {
            // Table 2: the 8-issue cluster (FA1 / SMT1) has 6/4/4 units.
            [6, 4, 4]
        } else {
            [issue_width, issue_width, issue_width]
        };
        ClusterConfig {
            issue_width,
            hw_threads,
            fu_counts,
            window_entries: issue_width * 16,
            rename_int: issue_width * 16,
            rename_fp: issue_width * 16,
            retire_width: issue_width,
            fetch_policy: FetchPolicy::RoundRobin,
            predictor: crate::bpred::PredictorKind::Bimodal,
            store_buffer: 16,
        }
    }

    /// The same budget with a different store-buffer capacity.
    pub fn with_store_buffer(self, store_buffer: usize) -> Self {
        assert!(store_buffer >= 1);
        ClusterConfig {
            store_buffer,
            ..self
        }
    }

    /// The same budget with a different branch predictor.
    pub fn with_predictor(self, predictor: crate::bpred::PredictorKind) -> Self {
        ClusterConfig { predictor, ..self }
    }

    /// The same budget with a different fetch policy.
    pub fn with_fetch_policy(self, fetch_policy: FetchPolicy) -> Self {
        ClusterConfig {
            fetch_policy,
            ..self
        }
    }

    /// Total issue slots per cycle (for slot accounting).
    pub fn slots_per_cycle(&self) -> usize {
        self.issue_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table 2's per-cluster rows.
    #[test]
    fn table2_cluster_budgets() {
        // FA8 / (SMT8): 1-issue clusters.
        let c1 = ClusterConfig::for_width(1, 1);
        assert_eq!(c1.fu_counts, [1, 1, 1]);
        assert_eq!(c1.window_entries, 16);
        assert_eq!((c1.rename_int, c1.rename_fp), (16, 16));
        // FA4 / SMT4: 2-issue clusters.
        let c2 = ClusterConfig::for_width(2, 2);
        assert_eq!(c2.fu_counts, [2, 2, 2]);
        assert_eq!(c2.window_entries, 32);
        assert_eq!((c2.rename_int, c2.rename_fp), (32, 32));
        // FA2 / SMT2: 4-issue clusters.
        let c4 = ClusterConfig::for_width(4, 4);
        assert_eq!(c4.fu_counts, [4, 4, 4]);
        assert_eq!(c4.window_entries, 64);
        assert_eq!((c4.rename_int, c4.rename_fp), (64, 64));
        // FA1 / SMT1: one 8-issue cluster with 6/4/4 units.
        let c8 = ClusterConfig::for_width(8, 8);
        assert_eq!(c8.fu_counts, [6, 4, 4]);
        assert_eq!(c8.window_entries, 128);
        assert_eq!((c8.rename_int, c8.rename_fp), (128, 128));
    }

    #[test]
    fn retire_width_tracks_issue_width() {
        for w in [1, 2, 4, 8] {
            let c = ClusterConfig::for_width(w, 1);
            assert_eq!(c.retire_width, w);
            assert_eq!(c.slots_per_cycle(), w);
        }
    }

    #[test]
    #[should_panic]
    fn odd_widths_rejected() {
        ClusterConfig::for_width(3, 1);
    }

    #[test]
    fn default_fetch_policy_is_the_papers_round_robin() {
        assert_eq!(
            ClusterConfig::for_width(4, 4).fetch_policy,
            FetchPolicy::RoundRobin
        );
        let c = ClusterConfig::for_width(4, 4).with_fetch_policy(FetchPolicy::ICount);
        assert_eq!(c.fetch_policy, FetchPolicy::ICount);
        assert_eq!(c.issue_width, 4);
    }
}
