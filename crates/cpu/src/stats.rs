//! Issue-slot accounting (paper §4.1).
//!
//! "We gather detailed statistics on an issue slot basis. For each
//! processor, we scan the entire instruction window every cycle and record
//! the type of hazard faced by each instruction that is unable to issue. At
//! the end, the wasted slots are divided proportionally among the different
//! types of hazards."
//!
//! The eight categories are exactly the paper's: `useful` plus the seven
//! hazard classes of its stacked bars.

use serde::Serialize;

/// One cluster's activity deltas for a single cycle, returned by the
/// stepping entry points so the machine can maintain its running
/// cycle-stats aggregates without re-merging every cluster's full
/// [`SlotStats`] each cycle.
///
/// Both counts are exact integers (bounded by the issue/retire width),
/// so folding them into `u64` accumulators and converting to `f64` at
/// emission reproduces the old full-merge values bit for bit: every
/// intermediate value is far below 2^53, where `f64` addition of
/// integers is exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleActivity {
    /// Useful (correct-path) instructions issued this cycle.
    pub useful: u32,
    /// Instructions committed this cycle.
    pub committed: u32,
}

/// Hazard categories of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hazard {
    /// Lack of functional units (or of issue bandwidth itself).
    Structural,
    /// Waiting on a memory access.
    Memory,
    /// Waiting on a register data dependence.
    Data,
    /// Branch mispredictions: redirect bubbles and stalled wrong-path work.
    Control,
    /// Spinning on barriers or locks.
    Sync,
    /// No instructions for a thread in the instruction window.
    Fetch,
    /// Squashed instructions and rename-register stalls.
    Other,
}

impl Hazard {
    /// All hazards, in the paper's legend order (top to bottom of the bars:
    /// other, structural, memory, data, control, sync, fetch).
    pub const ALL: [Hazard; 7] = [
        Hazard::Other,
        Hazard::Structural,
        Hazard::Memory,
        Hazard::Data,
        Hazard::Control,
        Hazard::Sync,
        Hazard::Fetch,
    ];

    /// Dense index for array-backed accumulators.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Hazard::Other => 0,
            Hazard::Structural => 1,
            Hazard::Memory => 2,
            Hazard::Data => 3,
            Hazard::Control => 4,
            Hazard::Sync => 5,
            Hazard::Fetch => 6,
        }
    }

    /// Lower-case label as used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Hazard::Other => "other",
            Hazard::Structural => "structural",
            Hazard::Memory => "memory",
            Hazard::Data => "data",
            Hazard::Control => "control",
            Hazard::Sync => "sync",
            Hazard::Fetch => "fetch",
        }
    }
}

/// Accumulated slot statistics for one cluster (or one whole machine after
/// merging). Wasted slots are divided *proportionally* among the hazards
/// observed in a cycle, so the accumulators are `f64`.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct SlotStats {
    /// Slots that issued useful (correct-path) instructions.
    pub useful: f64,
    /// Wasted slots by hazard (indexed by [`Hazard::index`]).
    pub wasted: [f64; 7],
    /// Total cycles accounted.
    pub cycles: u64,
    /// Total issue slots accounted (cycles × width).
    pub slots: u64,
    /// Useful instructions committed (architectural work, for IPC).
    pub committed: u64,
}

impl SlotStats {
    /// Record one cycle of `width` slots: `useful` issued correct-path,
    /// `other_issued` issued wrong-path (charged to `other`), and the rest
    /// split proportionally over `weights` (indexed by hazard). If all
    /// weights are zero the residue is charged to `fetch` (an empty window
    /// with nothing to blame means fetch could not keep up).
    pub fn record_cycle(
        &mut self,
        width: usize,
        useful: usize,
        other_issued: usize,
        weights: &[f64; 7],
    ) {
        debug_assert!(useful + other_issued <= width);
        self.cycles += 1;
        self.slots += width as u64;
        self.useful += useful as f64;
        self.wasted[Hazard::Other.index()] += other_issued as f64;
        let wasted = (width - useful - other_issued) as f64;
        if wasted <= 0.0 {
            return;
        }
        let total: f64 = weights.iter().sum();
        if total > 0.0 {
            for (acc, w) in self.wasted.iter_mut().zip(weights) {
                *acc += wasted * w / total;
            }
        } else {
            self.wasted[Hazard::Fetch.index()] += wasted;
        }
    }

    /// Merge another cluster's slots into this accumulator. `cycles` is
    /// taken as the max (clusters advance in lockstep).
    pub fn merge(&mut self, other: &SlotStats) {
        self.useful += other.useful;
        for (a, b) in self.wasted.iter_mut().zip(&other.wasted) {
            *a += b;
        }
        self.cycles = self.cycles.max(other.cycles);
        self.slots += other.slots;
        self.committed += other.committed;
    }

    /// Fraction of all slots in each category, `[useful, other, structural,
    /// memory, data, control, sync, fetch]`, summing to ~1.
    pub fn breakdown(&self) -> [f64; 8] {
        let total = self.slots as f64;
        if total == 0.0 {
            return [0.0; 8];
        }
        let mut out = [0.0; 8];
        out[0] = self.useful / total;
        for h in Hazard::ALL {
            out[1 + h.index()] = self.wasted[h.index()] / total;
        }
        out
    }

    /// Committed useful instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_indices_are_consistent() {
        let mut seen = [false; 7];
        for h in Hazard::ALL {
            assert!(!seen[h.index()]);
            seen[h.index()] = true;
            assert!(!h.label().is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn legend_order_matches_trace_labels() {
        // `ALL` is the paper's legend order AND the dense index order, and
        // the trace crate's label list (used for JSONL heartbeat keys) must
        // agree with both.
        for (i, h) in Hazard::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
            assert_eq!(h.label(), csmt_trace::HAZARD_LABELS[i]);
        }
    }

    #[test]
    fn serializes_all_fields() {
        let mut s = SlotStats::default();
        s.record_cycle(4, 2, 1, &[0.0; 7]);
        s.committed = 2;
        let v = serde::Serialize::to_value(&s);
        assert_eq!(v["useful"].as_f64(), Some(2.0));
        assert_eq!(v["wasted"][Hazard::Other.index()].as_f64(), Some(1.0));
        assert_eq!(v["cycles"].as_u64(), Some(1));
        assert_eq!(v["slots"].as_u64(), Some(4));
        assert_eq!(v["committed"].as_u64(), Some(2));
    }

    #[test]
    fn full_issue_cycle_is_all_useful() {
        let mut s = SlotStats::default();
        s.record_cycle(4, 4, 0, &[0.0; 7]);
        assert_eq!(s.useful, 4.0);
        assert_eq!(s.wasted.iter().sum::<f64>(), 0.0);
        assert_eq!(s.slots, 4);
    }

    #[test]
    fn wasted_slots_divide_proportionally() {
        let mut s = SlotStats::default();
        let mut w = [0.0; 7];
        w[Hazard::Data.index()] = 3.0;
        w[Hazard::Memory.index()] = 1.0;
        s.record_cycle(8, 4, 0, &w);
        assert!((s.wasted[Hazard::Data.index()] - 3.0).abs() < 1e-9);
        assert!((s.wasted[Hazard::Memory.index()] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_path_issue_charges_other() {
        let mut s = SlotStats::default();
        s.record_cycle(4, 1, 2, &[0.0; 7]);
        assert_eq!(s.useful, 1.0);
        assert_eq!(s.wasted[Hazard::Other.index()], 2.0);
        // The remaining slot with no weights goes to fetch.
        assert_eq!(s.wasted[Hazard::Fetch.index()], 1.0);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let mut s = SlotStats::default();
        let mut w = [0.0; 7];
        w[Hazard::Sync.index()] = 1.0;
        for _ in 0..10 {
            s.record_cycle(8, 3, 1, &w);
        }
        let b = s.breakdown();
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((b[0] - 3.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates_slots_and_commits() {
        let mut a = SlotStats::default();
        a.record_cycle(4, 2, 0, &[0.0; 7]);
        a.committed = 10;
        let mut b = SlotStats::default();
        b.record_cycle(4, 4, 0, &[0.0; 7]);
        b.record_cycle(4, 4, 0, &[0.0; 7]);
        b.committed = 5;
        a.merge(&b);
        assert_eq!(a.slots, 12);
        assert_eq!(a.cycles, 2); // lockstep: max, not sum
        assert_eq!(a.committed, 15);
        assert_eq!(a.useful, 10.0);
    }

    #[test]
    fn ipc_uses_committed_over_cycles() {
        let mut s = SlotStats::default();
        s.record_cycle(8, 8, 0, &[0.0; 7]);
        s.record_cycle(8, 0, 0, &[0.0; 7]);
        s.committed = 8;
        assert!((s.ipc() - 4.0).abs() < 1e-9);
    }
}
