//! # csmt-cpu — the SMT cluster pipeline
//!
//! A cycle-accurate model of one *cluster* of the paper's architectures: a
//! dynamic superscalar core (paper §3.1, Figure 2) extended with
//! simultaneous multithreading (§3.2). Every architecture in Table 2 — the
//! fixed-assignment FA8/FA4/FA2/FA1, the clustered SMT4/SMT2 and the
//! centralized SMT1 — is a set of these clusters with different widths,
//! thread counts and resource budgets; no resource is shared across
//! clusters (§3.3: "no resource sharing is done across clusters").
//!
//! Pipeline per cycle (see [`cluster::Cluster::step`]):
//!
//! 1. **complete** — functional units finishing this cycle wake dependents;
//!    mispredicted branches squash their thread's younger instructions and
//!    redirect fetch;
//! 2. **commit** — per-thread in-order retirement, up to the retire width;
//!    stores perform their cache access here;
//! 3. **issue** — oldest-first select over ready instructions in the shared
//!    associative window, constrained by FU availability and the
//!    32-outstanding-loads limit;
//! 4. **fetch/dispatch** — one thread per cycle (round-robin, §3.2) fetches
//!    up to the issue width, renaming through the int/fp rename pools into
//!    the window;
//! 5. **account** — wasted issue slots are attributed to hazard classes by
//!    scanning the window, per the paper's §4.1 methodology.

//! ```
//! use csmt_cpu::{Cluster, ClusterConfig};
//! use csmt_isa::stream::VecStream;
//! use csmt_isa::{ArchReg, DynInst, OpClass};
//! use csmt_mem::{MemConfig, MemorySystem};
//!
//! // A 4-issue SMT cluster running one small thread.
//! let mut cluster = Cluster::new(ClusterConfig::for_width(4, 4), 1);
//! let mut mem = MemorySystem::new(MemConfig::table3(), 1, 7);
//! let insts: Vec<DynInst> = (0..40)
//!     .map(|i| DynInst::alu(i * 4, OpClass::IntAlu, Some(ArchReg::Int(1)), [None, None]))
//!     .collect();
//! cluster.attach_thread(0, Box::new(VecStream::new(insts)));
//! let mut events = Vec::new();
//! let mut now = 0;
//! while cluster.busy() {
//!     cluster.step(now, &mut mem, 0, &mut events);
//!     now += 1;
//! }
//! assert_eq!(cluster.thread_committed(0), 40);
//! ```

pub mod bpred;
pub mod cluster;
pub mod config;
pub mod fu;
pub mod pipeline;
pub mod stats;

pub use bpred::{BranchPredictor, PredictorKind};
pub use cluster::{Cluster, ClusterEvent, DetachedThread, ThreadState, Wants};
pub use config::{ClusterConfig, FetchPolicy};
pub use stats::{CycleActivity, Hazard, SlotStats};
