//! The cluster pipeline, one module per stage.
//!
//! [`crate::cluster::Cluster`] is a thin façade that owns the stage state
//! and drives the per-cycle phase order
//! (complete → commit → issue → fetch → account); the logic lives here:
//!
//! - [`fetch`] — fetch policies (§3.2) and rename/dispatch into the window
//! - [`rename`] — the int/fp renaming-register free pools (Table 2)
//! - [`window`] — the shared instruction window / reorder buffer with its
//!   indexed scheduling structures (completion wheel, waiter lists, ready
//!   queue) driving complete, wakeup, squash and oldest-first select
//! - [`lsq`] — the committed-store buffer and store-to-load forwarding
//! - [`sink`] — the memory-access sink seam: live serial access vs the
//!   parallel cluster phase's intent tape
//! - [`commit`] — per-thread in-order retirement and sync-drain detection
//! - [`regs`] — cross-stage state (window entries, thread contexts, the
//!   dispatch sequence counter) and the §4.1 issue-slot accounting
//!
//! Every stage is behavior-identical to the pre-split monolith: cycle
//! counts, statistics and probe event sequences are bit-for-bit the same
//! (locked by `tests/golden_determinism.rs` at the workspace root).

pub(crate) mod commit;
pub(crate) mod fetch;
pub(crate) mod lsq;
pub(crate) mod regs;
pub(crate) mod rename;
pub(crate) mod sink;
pub(crate) mod window;
