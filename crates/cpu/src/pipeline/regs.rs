//! Cross-stage state shared by every pipeline stage: the instruction-window
//! entry record, per-context thread state (map table, in-flight FIFO,
//! wrong-path generator), and the §4.1 issue-slot accounting that scans it
//! all at the end of each cycle.

use crate::config::ClusterConfig;
use crate::stats::{Hazard, SlotStats};
use csmt_isa::stream::WrongPathGen;
use csmt_isa::{ArchReg, DynInst, InstStream, OpClass, SyncOp};
use std::collections::VecDeque;

use super::window::Window;

/// Externally visible state of a hardware thread context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// No software thread attached.
    Idle,
    /// Fetching the correct path.
    Running,
    /// An unresolved mispredicted branch is in flight; fetching wrong-path
    /// instructions that will be squashed.
    WrongPath,
    /// A sync marker was fetched; waiting for in-flight instructions to
    /// drain before reporting to the runtime.
    Draining,
    /// Drained at a sync point; the runtime decides when to resume.
    WaitingSync,
    /// The thread scheduler marked this context for migration; correct-path
    /// work drains through commit (wrong-path work is squashed by normal
    /// branch resolution) before the thread detaches.
    Migrating,
    /// Program finished.
    Done,
}

/// Execution state of a window entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EState {
    Waiting,
    Exec { done_at: u64 },
    Done,
}

/// Readiness of one source operand. `Wait(slot)` names the producing
/// window slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SrcState {
    Ready,
    Wait(u32),
}

/// One instruction window / reorder buffer entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Entry {
    pub valid: bool,
    pub thread: u8,
    /// Cluster-global dispatch order; doubles as per-thread program order.
    pub seq: u64,
    pub op: OpClass,
    pub pc: u64,
    pub state: EState,
    pub srcs: [SrcState; 2],
    pub dest: Option<ArchReg>,
    pub mem_addr: u64,
    pub is_store: bool,
    pub br_taken: bool,
    pub br_target: u64,
    pub has_branch: bool,
    pub mispredicted: bool,
    pub wrong_path: bool,
}

pub(crate) const DEAD: Entry = Entry {
    valid: false,
    thread: 0,
    seq: 0,
    op: OpClass::Nop,
    pc: 0,
    state: EState::Waiting,
    srcs: [SrcState::Ready, SrcState::Ready],
    dest: None,
    mem_addr: 0,
    is_store: false,
    br_taken: false,
    br_target: 0,
    has_branch: false,
    mispredicted: false,
    wrong_path: false,
};

/// One hardware thread context.
pub(crate) struct ThreadCtx {
    pub state: ThreadState,
    pub stream: Option<Box<dyn InstStream + Send>>,
    pub pending: Option<DynInst>,
    pub pending_sync: Option<SyncOp>,
    pub map: [Option<u32>; ArchReg::COUNT],
    pub fifo: VecDeque<u32>,
    pub wp_gen: WrongPathGen,
    pub wp_pc: u64,
    /// Cycle until which an empty window counts as a control (redirect)
    /// bubble rather than a fetch hazard.
    pub redirect_until: u64,
    pub committed: u64,
}

impl ThreadCtx {
    pub fn new(seed: u64) -> Self {
        ThreadCtx {
            state: ThreadState::Idle,
            stream: None,
            pending: None,
            pending_sync: None,
            map: [None; ArchReg::COUNT],
            fifo: VecDeque::with_capacity(128),
            wp_gen: WrongPathGen::new(seed),
            wp_pc: 0,
            redirect_until: 0,
            committed: 0,
        }
    }
}

/// The cross-stage register state: thread contexts, the dispatch sequence
/// counter, the fetch round-robin pointer, and the slot statistics.
pub(crate) struct Regs {
    pub threads: Vec<ThreadCtx>,
    pub fetch_rr: usize,
    pub seq_counter: u64,
    /// Set by the fetch stage when renaming ran out of registers this
    /// cycle; consumed by [`account`].
    pub rename_stalled: bool,
    pub stats: SlotStats,
}

impl Regs {
    pub fn new(threads: Vec<ThreadCtx>) -> Self {
        Regs {
            threads,
            fetch_rr: 0,
            seq_counter: 0,
            rename_stalled: false,
            stats: SlotStats::default(),
        }
    }
}

// ------------------------------------------------------------------
// account: §4.1 issue-slot attribution.
// ------------------------------------------------------------------
pub(crate) fn account(
    cfg: &ClusterConfig,
    regs: &mut Regs,
    win: &Window,
    now: u64,
    useful: usize,
    wrong: usize,
) {
    let w = hazard_weights(regs.rename_stalled, &regs.threads, win, now);
    regs.stats.record_cycle(cfg.issue_width, useful, wrong, &w);
}

/// The §4.1 per-thread hazard attribution for one cycle, factored out of
/// [`account`] so the stall fast-forward can compute a stalled cycle's
/// weights once and replay them bit-for-bit over the whole skipped span.
pub(crate) fn hazard_weights(
    rename_stalled: bool,
    threads: &[ThreadCtx],
    win: &Window,
    now: u64,
) -> [f64; 7] {
    let mut w = [0.0f64; 7];
    if rename_stalled {
        w[Hazard::Other.index()] += 1.0;
    }
    for t in threads {
        match t.state {
            ThreadState::Idle
            | ThreadState::Done
            | ThreadState::Draining
            | ThreadState::WaitingSync
            | ThreadState::Migrating => {
                // Parked threads waste their share of the cluster:
                // spinning at barriers/locks, gone, or draining toward a
                // migration (the migration cost shows up as sync slots,
                // keeping §4.1 conservation intact).
                w[Hazard::Sync.index()] += 1.0;
            }
            ThreadState::Running | ThreadState::WrongPath => {
                if t.fifo.is_empty() {
                    if now < t.redirect_until {
                        w[Hazard::Control.index()] += 1.0;
                    } else {
                        w[Hazard::Fetch.index()] += 1.0;
                    }
                    continue;
                }
                let mut any_weight = false;
                for &s in &t.fifo {
                    let e = &win.entries[s as usize];
                    match e.state {
                        EState::Waiting => {
                            any_weight = true;
                            if e.wrong_path {
                                w[Hazard::Control.index()] += 1.0;
                                continue;
                            }
                            let mut waiting_mem = false;
                            let mut waiting_data = false;
                            for src in &e.srcs {
                                if let SrcState::Wait(p) = src {
                                    let prod = &win.entries[*p as usize];
                                    if prod.op == OpClass::Load
                                        && matches!(prod.state, EState::Exec { .. })
                                    {
                                        waiting_mem = true;
                                    } else {
                                        waiting_data = true;
                                    }
                                }
                            }
                            if waiting_mem {
                                w[Hazard::Memory.index()] += 1.0;
                            } else if waiting_data {
                                w[Hazard::Data.index()] += 1.0;
                            } else {
                                // Ready but not issued: lack of FU or of
                                // issue bandwidth.
                                w[Hazard::Structural.index()] += 1.0;
                            }
                        }
                        EState::Exec { .. } => {
                            // An issued load still waiting on the memory
                            // system keeps its slice of the machine busy:
                            // charge it as a memory hazard, as the
                            // paper's window scan does for instructions
                            // held up by memory accesses.
                            if e.op == OpClass::Load {
                                w[Hazard::Memory.index()] += 1.0;
                                any_weight = true;
                            }
                        }
                        EState::Done => {}
                    }
                }
                if !any_weight {
                    // Window full of completed work awaiting retirement:
                    // the structural limit is the window/retire
                    // bandwidth itself.
                    w[Hazard::Structural.index()] += 1.0;
                }
            }
        }
    }
    w
}
