//! The shared instruction window / reorder buffer and its scheduling
//! machinery: completion, wakeup, and oldest-first select.
//!
//! Where the monolithic cluster rescanned the whole window every cycle,
//! this module keeps three indexed structures, all behavior-preserving:
//!
//! - a **completion wheel** (`wheel`): at issue, an instruction lands in
//!   the bucket for the first cycle `complete` can observe it; `complete`
//!   pops due buckets instead of scanning the window for finished
//!   executions;
//! - **per-producer waiter lists** (`waiters`): consumers register at
//!   dispatch; a completing result wakes only its actual consumers
//!   instead of broadcasting a tag match over every window entry;
//! - a **ready queue** (`ready`, ordered `(seq, slot)`): entries enter
//!   when their last operand arrives, so oldest-first select walks only
//!   ready instructions instead of rescanning non-ready entries.
//!
//! Stale references (a squash freed — and possibly refilled — a slot
//! after it was indexed) are filtered by re-checking the entry's `seq`:
//! sequence numbers are unique for the life of the cluster.

use crate::bpred::BranchPredictor;
use crate::fu::FuPool;
use csmt_isa::OpClass;
use csmt_trace::{Probe, StageEvent};
use std::collections::{BTreeMap, BTreeSet};

use super::lsq;
use super::regs::{EState, Entry, Regs, SrcState, ThreadState, DEAD};
use super::rename::{self, RenamePools};
use super::sink::MemPort;

pub(crate) struct Window {
    pub entries: Vec<Entry>,
    pub free_slots: Vec<u32>,
    /// Consumers of each producer slot's result: `(slot, seq)` of the
    /// waiting entry, registered at dispatch, drained at completion.
    waiters: Vec<Vec<(u32, u64)>>,
    /// Entries with every operand ready, awaiting issue. Ordered
    /// `(seq, slot)`, so iteration is the oldest-first select order.
    ready: BTreeSet<(u64, u32)>,
    /// Completion wheel: finish cycle → instructions finishing then.
    wheel: BTreeMap<u64, Vec<(u32, u64)>>,
    /// Recycled wheel buckets (no steady-state allocation).
    spare_buckets: Vec<Vec<(u32, u64)>>,
    /// Scratch: this cycle's completions, `(slot, seq)`.
    complete_buf: Vec<(u32, u64)>,
    /// Scratch: this cycle's issues, `(seq, slot, wheel bucket)`.
    issued_buf: Vec<(u64, u32, u64)>,
    /// Number of valid `Done` store entries — the commit-side term of
    /// the parallel pre-check's MSHR demand bound.
    done_stores: usize,
}

impl Window {
    pub fn new(n: usize) -> Self {
        Window {
            entries: vec![DEAD; n],
            free_slots: (0..n as u32).rev().collect(),
            waiters: (0..n).map(|_| Vec::new()).collect(),
            ready: BTreeSet::new(),
            wheel: BTreeMap::new(),
            spare_buckets: Vec::new(),
            complete_buf: Vec::with_capacity(n),
            issued_buf: Vec::with_capacity(n),
            done_stores: 0,
        }
    }

    /// True if dispatch has a slot to install into.
    pub fn has_free(&self) -> bool {
        !self.free_slots.is_empty()
    }

    /// True if no installed entry is ready to issue.
    pub fn ready_is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// Valid (installed) entries — window/ROB occupancy right now.
    pub fn occupancy(&self) -> usize {
        self.entries.len() - self.free_slots.len()
    }

    /// Entries with every operand available, awaiting an issue slot.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Earliest completion-wheel bucket, if any instruction is in flight.
    ///
    /// The wheel retains stale (squashed) references until their bucket is
    /// popped, so this is a conservative lower bound: the returned cycle
    /// may complete nothing, but nothing completes before it. That is
    /// exactly what the stall fast-forward needs.
    pub fn next_completion_cycle(&self) -> Option<u64> {
        self.wheel.keys().next().copied()
    }

    /// Install a dispatched entry, registering it with its producers'
    /// waiter lists (or the ready queue when every operand is already
    /// there). Caller has checked [`has_free`](Window::has_free).
    pub fn install(&mut self, e: Entry) -> u32 {
        let slot = self.free_slots.pop().expect("checked non-empty");
        let mut all_ready = true;
        for s in e.srcs {
            if let SrcState::Wait(p) = s {
                all_ready = false;
                self.waiters[p as usize].push((slot, e.seq));
            }
        }
        if all_ready {
            self.ready.insert((e.seq, slot));
        }
        self.entries[slot as usize] = e;
        slot
    }

    /// Free `slot` (commit or squash): return its rename register, clear
    /// its indexed state, and put the slot back on the free list.
    pub fn release(&mut self, slot: u32, rename: &mut RenamePools) {
        let e = &mut self.entries[slot as usize];
        debug_assert!(e.valid);
        if let Some(d) = e.dest {
            rename.release(d);
        }
        let seq = e.seq;
        let was_waiting = e.state == EState::Waiting;
        if e.is_store && e.state == EState::Done {
            // Covers both commit and the squash of a completed
            // wrong-path store.
            self.done_stores -= 1;
        }
        *e = DEAD;
        self.free_slots.push(slot);
        self.waiters[slot as usize].clear();
        if was_waiting {
            // Only un-issued entries can sit in the ready queue; wheel
            // entries are filtered lazily by their seq check instead.
            self.ready.remove(&(seq, slot));
        }
    }

    // ------------------------------------------------------------------
    // complete: retire execution, wake dependents, resolve branches.
    // ------------------------------------------------------------------
    pub fn complete_phase<P: Probe>(
        &mut self,
        regs: &mut Regs,
        rename: &mut RenamePools,
        bpred: &mut BranchPredictor,
        now: u64,
        probe: &mut P,
        cluster_id: u32,
    ) {
        // Pop every due wheel bucket (normally exactly one) and filter
        // out stale references — squashed since issue, slot possibly
        // reissued under a newer seq.
        self.complete_buf.clear();
        while let Some((&at, _)) = self.wheel.iter().next() {
            if at > now {
                break;
            }
            let mut bucket = self.wheel.remove(&at).expect("key just seen");
            self.complete_buf.append(&mut bucket);
            self.spare_buckets.push(bucket);
        }
        let entries = &self.entries;
        self.complete_buf.retain(|&(slot, seq)| {
            let e = &entries[slot as usize];
            e.valid && e.seq == seq && matches!(e.state, EState::Exec { .. })
        });
        // Mark Done and emit writebacks in slot order — the order the
        // monolith's ascending full-window scan produced.
        self.complete_buf.sort_unstable();
        for i in 0..self.complete_buf.len() {
            let (slot, seq) = self.complete_buf[i];
            self.entries[slot as usize].state = EState::Done;
            if self.entries[slot as usize].is_store {
                self.done_stores += 1;
            }
            if P::WANTS_INST_EVENTS {
                probe.writeback(StageEvent {
                    cycle: now,
                    cluster: cluster_id,
                    uid: seq,
                });
            }
        }
        // Wake dependents, resolve branches (oldest first so squashes are
        // handled in age order).
        self.complete_buf.sort_unstable_by_key(|&(_, seq)| seq);
        for i in 0..self.complete_buf.len() {
            let (slot, seq) = self.complete_buf[i];
            let e = &self.entries[slot as usize];
            if !e.valid || e.seq != seq {
                continue; // squashed by an older branch this same cycle
            }
            let (has_branch, pc, taken, target, mispredicted, thread) = (
                e.has_branch,
                e.pc,
                e.br_taken,
                e.br_target,
                e.mispredicted,
                e.thread as usize,
            );
            // Wake this result's registered consumers.
            let mut waiters = std::mem::take(&mut self.waiters[slot as usize]);
            for &(wslot, wseq) in &waiters {
                let w = &mut self.entries[wslot as usize];
                if !w.valid || w.seq != wseq {
                    continue; // waiter squashed since registering
                }
                let mut all_ready = true;
                for s in w.srcs.iter_mut() {
                    if *s == SrcState::Wait(slot) {
                        *s = SrcState::Ready;
                    }
                    if matches!(*s, SrcState::Wait(_)) {
                        all_ready = false;
                    }
                }
                if all_ready && w.state == EState::Waiting {
                    self.ready.insert((wseq, wslot));
                }
            }
            waiters.clear();
            self.waiters[slot as usize] = waiters; // keep the capacity
            if has_branch {
                bpred.resolve(pc, taken, target, mispredicted);
                if mispredicted {
                    self.squash_after(thread, seq, now, regs, rename, probe, cluster_id);
                }
            }
        }
    }

    /// Remove all of `thread`'s instructions younger than `seq` (the
    /// wrong-path fetches), rebuild its map table, resume correct-path
    /// fetch.
    #[allow(clippy::too_many_arguments)]
    pub fn squash_after<P: Probe>(
        &mut self,
        thread: usize,
        seq: u64,
        now: u64,
        regs: &mut Regs,
        rename: &mut RenamePools,
        probe: &mut P,
        cluster_id: u32,
    ) {
        while let Some(&back) = regs.threads[thread].fifo.back() {
            let victim_seq = self.entries[back as usize].seq;
            if victim_seq <= seq {
                break;
            }
            regs.threads[thread].fifo.pop_back();
            self.release(back, rename);
            if P::WANTS_INST_EVENTS {
                probe.squash(StageEvent {
                    cycle: now,
                    cluster: cluster_id,
                    uid: victim_seq,
                });
            }
        }
        let t = &mut regs.threads[thread];
        rename::rebuild_map(t, &self.entries);
        if t.state == ThreadState::WrongPath {
            t.state = ThreadState::Running;
        }
        t.redirect_until = now + 1;
    }

    // ------------------------------------------------------------------
    // issue: oldest-first over the ready queue.
    // ------------------------------------------------------------------
    pub fn issue_phase<S: MemPort + Probe>(
        &mut self,
        regs: &Regs,
        fu: &mut FuPool,
        sink: &mut S,
        now: u64,
        width: usize,
        cluster_id: u32,
    ) -> (usize, usize) {
        self.issued_buf.clear();
        let mut useful = 0;
        let mut wrong = 0;
        for &(seq, slot) in self.ready.iter() {
            if useful + wrong >= width {
                break;
            }
            let (op, addr, is_store, thread, wrong_path) = {
                let e = &self.entries[slot as usize];
                (
                    e.op,
                    e.mem_addr,
                    e.is_store,
                    e.thread as usize,
                    e.wrong_path,
                )
            };
            if !fu.can_issue(op, now) {
                fu.note_structural_stall();
                continue;
            }
            let done_at = if op == OpClass::Load {
                // Store-to-load forwarding within the thread's in-flight
                // stores (full load bypassing, §3.1).
                if lsq::store_forwards(&self.entries, &regs.threads[thread].fifo, seq, addr) {
                    fu.issue(op, now)
                } else {
                    if !sink.can_issue_load(now) {
                        // Outstanding-load limit reached: cannot issue.
                        continue;
                    }
                    fu.issue(op, now);
                    // A taped load has no completion yet: park the entry
                    // at the u64::MAX sentinel (never a real completion
                    // cycle); replay patches it via `schedule_fill`.
                    // Nothing reads `done_at` in between — hazard
                    // attribution matches on the `Exec` variant only.
                    sink.load(slot, seq, addr, now, op.latency() as u64)
                        .unwrap_or(u64::MAX)
                }
            } else if is_store {
                // Stores only compute their address/value here; the cache
                // write happens at commit.
                fu.issue(op, now)
            } else {
                fu.issue(op, now)
            };
            self.entries[slot as usize].state = EState::Exec { done_at };
            // The earliest complete() that can observe the instruction
            // runs next cycle, exactly as the monolith's scan did.
            self.issued_buf.push((seq, slot, done_at.max(now + 1)));
            if S::WANTS_INST_EVENTS {
                sink.issue(StageEvent {
                    cycle: now,
                    cluster: cluster_id,
                    uid: seq,
                });
            }
            if wrong_path {
                wrong += 1;
            } else {
                useful += 1;
            }
        }
        // Issued entries leave the ready queue and land on the wheel —
        // except sentinel (taped) loads, which land on the wheel at
        // replay once their real completion cycle is known.
        let issued = std::mem::take(&mut self.issued_buf);
        for &(seq, slot, at) in &issued {
            self.ready.remove(&(seq, slot));
            if at == u64::MAX {
                continue;
            }
            let spare = &mut self.spare_buckets;
            self.wheel
                .entry(at)
                .or_insert_with(|| spare.pop().unwrap_or_default())
                .push((slot, seq));
        }
        self.issued_buf = issued;
        (useful, wrong)
    }

    /// Replay-time completion of a taped load: patch the real `done_at`
    /// into the entry parked at the `u64::MAX` sentinel and land it on
    /// the completion wheel. Bucket-internal order does not matter —
    /// `complete_phase` sorts its due set before acting on it.
    ///
    /// Sound because nothing can invalidate the slot between issue and
    /// the same cycle's replay: squashes and commits both happen in
    /// phases that precede issue within a cycle.
    pub fn schedule_fill(&mut self, slot: u32, seq: u64, done_at: u64, now: u64) {
        let e = &mut self.entries[slot as usize];
        debug_assert!(
            e.valid && e.seq == seq && e.state == EState::Exec { done_at: u64::MAX },
            "tape replay fill hit a slot that changed since issue"
        );
        e.state = EState::Exec { done_at };
        let at = done_at.max(now + 1);
        let spare = &mut self.spare_buckets;
        self.wheel
            .entry(at)
            .or_insert_with(|| spare.pop().unwrap_or_default())
            .push((slot, seq));
    }

    /// Upper bound on the MSHR allocations this cluster can perform in
    /// the cycle about to run at `now` — the machine's parallel-safety
    /// pre-check sums this per chip against `free_mshrs`.
    ///
    /// Phase order matters: `complete` runs first and can wake waiters
    /// into the ready queue (and flip stores to `Done`), so the bound
    /// folds the due wheel buckets in rather than trusting the
    /// pre-cycle queue lengths:
    ///
    /// - issue side: at most `issue_width` instructions issue, drawn
    ///   from `ready` plus everything a due completion can wake;
    /// - commit side: at most `retire_width` stores commit, drawn from
    ///   stores already `Done` plus stores completing this cycle.
    ///
    /// Both are over-approximations (loads may forward, stores may not
    /// be at their FIFO head), which is exactly what a safety gate
    /// needs.
    pub fn mshr_demand_bound(&self, now: u64, issue_width: usize, retire_width: usize) -> usize {
        let mut wake = 0usize;
        let mut due_stores = 0usize;
        for bucket in self.wheel.range(..=now).map(|(_, b)| b) {
            for &(slot, seq) in bucket {
                let e = &self.entries[slot as usize];
                if e.valid && e.seq == seq && matches!(e.state, EState::Exec { .. }) {
                    wake += self.waiters[slot as usize].len();
                    if e.is_store {
                        due_stores += 1;
                    }
                }
            }
        }
        issue_width.min(self.ready.len() + wake) + retire_width.min(self.done_stores + due_stores)
    }
}
