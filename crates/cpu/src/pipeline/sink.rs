//! Memory-access sinks: the seam between the cluster pipeline and the
//! memory system that makes the parallel cluster phase possible.
//!
//! The pipeline body ([`crate::cluster::Cluster`]'s phase driver) is
//! generic over one sink type `S: MemPort + Probe`:
//!
//! - [`SerialSink`] is the live configuration: every memory intent goes
//!   straight to `&mut MemorySystem` and every probe event straight to
//!   the caller's probe — byte-for-byte today's serial stepping.
//! - [`TapeSink`] is the recording configuration for the parallel
//!   cluster phase: memory intents ([`TapeOp::Load`]/[`TapeOp::Store`])
//!   and probe events are appended to a per-cluster tape instead, and
//!   the tape is replayed against the real memory system in fixed
//!   (chip, cluster) order during the serial commit phase — so
//!   directory, MSHR, LRU and TLB state evolve in exactly the serial
//!   order no matter how many worker threads stepped the clusters.
//!
//! Determinism notes baked into the design:
//!
//! - A deferred load leaves its window entry at
//!   `EState::Exec { done_at: u64::MAX }`; replay patches the real
//!   completion cycle in via `Window::schedule_fill`. Nothing reads
//!   `done_at` between issue and replay (hazard attribution matches on
//!   the `Exec` variant only), and no squash can intervene (squashes
//!   happen in the complete phase, which precedes issue).
//! - A deferred store bumps the store buffer's `pending` count so the
//!   full-buffer retirement stall is computed identically; replay
//!   converts `pending` into a real drain entry. Exact because every
//!   store's `complete_at` is at least `now + 1`, so a same-cycle
//!   `drain_completed(now)` can never observe the difference.
//! - Cache events are *not* taped: they are regenerated live at replay
//!   by `access_probed`, which lands them in exactly the serial
//!   positions (a load's cache event immediately precedes its issue
//!   event; a store's immediately precedes its commit event).

use crate::cluster::ClusterEvent;
use crate::stats::CycleActivity;
use csmt_mem::{AccessKind, MemorySystem};
use csmt_trace::{
    CacheEvent, CycleStats, FetchEvent, HostPhase, MigrationEvent, Probe, RenamePoolEvent,
    StageEvent, SyncEvent, WindowOccEvent,
};

/// Runtime projection of a probe's cluster-side wants-flags, carried
/// across the thread pool (whose workers are monomorphic) into
/// [`Cluster::step_tape`](crate::cluster::Cluster::step_tape).
///
/// Only the channels a cluster can emit while stepping against a tape
/// appear here; cache events regenerate at replay from the real probe's
/// own flags, and cycle stats / host phases / sched events are
/// machine-level channels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Wants {
    /// Per-instruction stage events (fetch/rename/issue/writeback/
    /// commit/squash).
    pub inst: bool,
    /// Rename-pool snapshots.
    pub pool: bool,
    /// Window-occupancy snapshots.
    pub occ: bool,
}

impl Wants {
    /// The wants-mask of probe type `P`.
    #[must_use]
    pub fn of<P: Probe>() -> Self {
        Wants {
            inst: P::WANTS_INST_EVENTS,
            pool: P::WANTS_POOL_STATS,
            occ: P::WANTS_OCC_STATS,
        }
    }

    /// Whether any cluster-side observation channel is live (selects the
    /// observing [`TapeSink`] instantiation; the non-observing one
    /// compiles every event push away, keeping `NullProbe` runs at
    /// near-zero probe cost).
    #[must_use]
    pub fn any(self) -> bool {
        self.inst || self.pool || self.occ
    }
}

/// One recorded pipeline action: either a deferred memory intent or a
/// buffered probe event, in exact emission order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum TapeOp {
    /// Buffered fetch event.
    Fetch(FetchEvent),
    /// Buffered rename event.
    Rename(StageEvent),
    /// Buffered issue event.
    Issue(StageEvent),
    /// Buffered writeback event.
    Writeback(StageEvent),
    /// Buffered commit event.
    Commit(StageEvent),
    /// Buffered squash event.
    Squash(StageEvent),
    /// Buffered rename-pool snapshot.
    Pools(RenamePoolEvent),
    /// Buffered window-occupancy snapshot.
    Occ(WindowOccEvent),
    /// Deferred load: replay performs the access and patches the window
    /// entry's completion via `Window::schedule_fill`.
    Load {
        slot: u32,
        seq: u64,
        addr: u64,
        lat: u64,
    },
    /// Deferred committed-store write: replay performs the access and
    /// converts the store buffer's pending count into a real drain.
    Store { addr: u64 },
}

/// Per-cluster intent buffer filled by [`TapeSink`] during the parallel
/// cluster phase and drained by `Cluster::replay_tape` during the serial
/// commit phase.
#[derive(Default)]
pub(crate) struct IntentBuffer {
    /// Recorded memory intents + probe events, in emission order.
    pub ops: Vec<TapeOp>,
    /// Runtime events the cluster emitted. Always empty on cycles the
    /// machine deemed parallel-safe; `replay_tape` asserts this.
    pub events: Vec<ClusterEvent>,
    /// The cycle's activity deltas, stashed so the machine can fold them
    /// after replay.
    pub activity: CycleActivity,
}

/// How the pipeline touches the memory system. Implemented live by
/// [`SerialSink`] and deferred by [`TapeSink`].
pub(crate) trait MemPort {
    /// Whether a non-forwarded load may issue right now (the
    /// outstanding-loads / MSHR gate). The tape sink answers `true`
    /// unconditionally: the machine only enters tape mode on cycles
    /// where the pre-checked MSHR headroom proves the serial gate would
    /// have passed for every load that can possibly issue.
    fn can_issue_load(&mut self, now: u64) -> bool;
    /// Perform (or defer) a load. `Some(done_at)` is the final
    /// completion cycle (already folded with the FU latency `lat`);
    /// `None` means the access was taped and the entry's completion
    /// will be patched at replay.
    fn load(&mut self, slot: u32, seq: u64, addr: u64, now: u64, lat: u64) -> Option<u64>;
    /// Perform (or defer) a committed store's cache write.
    /// `Some(complete_at)` is the drain-completion cycle; `None` means
    /// the write was taped (the store buffer counts it as pending).
    fn store(&mut self, addr: u64, now: u64) -> Option<u64>;
}

/// The live sink: direct memory access, direct probe delegation.
pub(crate) struct SerialSink<'a, P: Probe> {
    /// The memory system.
    pub mem: &'a mut MemorySystem,
    /// This cluster's chip.
    pub node: usize,
    /// The caller's probe.
    pub inner: &'a mut P,
}

impl<P: Probe> MemPort for SerialSink<'_, P> {
    fn can_issue_load(&mut self, now: u64) -> bool {
        self.mem.free_mshrs(self.node, now) != 0
    }

    fn load(&mut self, _slot: u32, _seq: u64, addr: u64, now: u64, lat: u64) -> Option<u64> {
        let out = self
            .mem
            .access_probed(self.node, addr, AccessKind::Read, now, self.inner);
        Some(out.complete_at.max(now + lat))
    }

    fn store(&mut self, addr: u64, now: u64) -> Option<u64> {
        Some(
            self.mem
                .access_probed(self.node, addr, AccessKind::Write, now, self.inner)
                .complete_at,
        )
    }
}

impl<P: Probe> Probe for SerialSink<'_, P> {
    const WANTS_INST_EVENTS: bool = P::WANTS_INST_EVENTS;
    const WANTS_CACHE_EVENTS: bool = P::WANTS_CACHE_EVENTS;
    const WANTS_CYCLE_STATS: bool = P::WANTS_CYCLE_STATS;
    const WANTS_POOL_STATS: bool = P::WANTS_POOL_STATS;
    const WANTS_OCC_STATS: bool = P::WANTS_OCC_STATS;
    const WANTS_HOST_PHASES: bool = P::WANTS_HOST_PHASES;
    const WANTS_SCHED_EVENTS: bool = P::WANTS_SCHED_EVENTS;

    #[inline]
    fn fetch(&mut self, e: FetchEvent) {
        self.inner.fetch(e);
    }
    #[inline]
    fn rename(&mut self, e: StageEvent) {
        self.inner.rename(e);
    }
    #[inline]
    fn issue(&mut self, e: StageEvent) {
        self.inner.issue(e);
    }
    #[inline]
    fn writeback(&mut self, e: StageEvent) {
        self.inner.writeback(e);
    }
    #[inline]
    fn commit(&mut self, e: StageEvent) {
        self.inner.commit(e);
    }
    #[inline]
    fn squash(&mut self, e: StageEvent) {
        self.inner.squash(e);
    }
    #[inline]
    fn cache_access(&mut self, e: CacheEvent) {
        self.inner.cache_access(e);
    }
    #[inline]
    fn sync_event(&mut self, e: SyncEvent) {
        self.inner.sync_event(e);
    }
    #[inline]
    fn rename_pools(&mut self, e: RenamePoolEvent) {
        self.inner.rename_pools(e);
    }
    #[inline]
    fn window_occ(&mut self, e: WindowOccEvent) {
        self.inner.window_occ(e);
    }
    #[inline]
    fn host_phase(&mut self, phase: HostPhase, nanos: u64) {
        self.inner.host_phase(phase, nanos);
    }
    #[inline]
    fn migration(&mut self, e: MigrationEvent) {
        self.inner.migration(e);
    }
    #[inline]
    fn cycle_end(&mut self, cycle: u64, stats: Option<&CycleStats>) {
        self.inner.cycle_end(cycle, stats);
    }
}

/// The recording sink for the parallel cluster phase. `OBS` selects the
/// observing instantiation: `false` (the `NullProbe` / benchmark path)
/// statically compiles every event push away; `true` filters at runtime
/// by the real probe's [`Wants`] mask.
pub(crate) struct TapeSink<'a, const OBS: bool> {
    /// The tape being written.
    pub ops: &'a mut Vec<TapeOp>,
    /// The real probe's cluster-side wants-flags.
    pub wants: Wants,
}

impl<const OBS: bool> MemPort for TapeSink<'_, OBS> {
    fn can_issue_load(&mut self, _now: u64) -> bool {
        true // headroom pre-checked by the machine before entering tape mode
    }

    fn load(&mut self, slot: u32, seq: u64, addr: u64, _now: u64, lat: u64) -> Option<u64> {
        self.ops.push(TapeOp::Load {
            slot,
            seq,
            addr,
            lat,
        });
        None
    }

    fn store(&mut self, addr: u64, _now: u64) -> Option<u64> {
        self.ops.push(TapeOp::Store { addr });
        None
    }
}

impl<const OBS: bool> Probe for TapeSink<'_, OBS> {
    const WANTS_INST_EVENTS: bool = OBS;
    const WANTS_CACHE_EVENTS: bool = false; // regenerated live at replay
    const WANTS_CYCLE_STATS: bool = false; // machine-level channel
    const WANTS_POOL_STATS: bool = OBS;
    const WANTS_OCC_STATS: bool = OBS;
    const WANTS_HOST_PHASES: bool = false; // wall-clock: meaningless off-thread
    const WANTS_SCHED_EVENTS: bool = false; // machine-level channel

    #[inline]
    fn fetch(&mut self, e: FetchEvent) {
        if self.wants.inst {
            self.ops.push(TapeOp::Fetch(e));
        }
    }
    #[inline]
    fn rename(&mut self, e: StageEvent) {
        if self.wants.inst {
            self.ops.push(TapeOp::Rename(e));
        }
    }
    #[inline]
    fn issue(&mut self, e: StageEvent) {
        if self.wants.inst {
            self.ops.push(TapeOp::Issue(e));
        }
    }
    #[inline]
    fn writeback(&mut self, e: StageEvent) {
        if self.wants.inst {
            self.ops.push(TapeOp::Writeback(e));
        }
    }
    #[inline]
    fn commit(&mut self, e: StageEvent) {
        if self.wants.inst {
            self.ops.push(TapeOp::Commit(e));
        }
    }
    #[inline]
    fn squash(&mut self, e: StageEvent) {
        if self.wants.inst {
            self.ops.push(TapeOp::Squash(e));
        }
    }
    #[inline]
    fn rename_pools(&mut self, e: RenamePoolEvent) {
        if self.wants.pool {
            self.ops.push(TapeOp::Pools(e));
        }
    }
    #[inline]
    fn window_occ(&mut self, e: WindowOccEvent) {
        if self.wants.occ {
            self.ops.push(TapeOp::Occ(e));
        }
    }
}
