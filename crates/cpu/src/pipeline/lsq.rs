//! Load/store queue concerns: the committed-store buffer that absorbs
//! store cache-write latency, and store-to-load forwarding within a
//! thread's in-flight instructions (full load bypassing, §3.1).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use super::regs::Entry;

/// Completed stores still draining to the cache, ordered by completion
/// cycle (min-heap), so retiring a store pops finished drains from the
/// front instead of sweeping the whole buffer.
pub(crate) struct StoreBuffer {
    draining: BinaryHeap<Reverse<u64>>,
    cap: usize,
    /// Stores committed onto the parallel-phase tape whose cache write
    /// (and hence drain-completion cycle) is deferred to replay. They
    /// occupy buffer slots exactly like draining entries, so the
    /// full-buffer retirement stall is computed identically in tape
    /// mode. Zero outside a tape/replay pair: replay converts each into
    /// a real drain via [`commit_pending`](StoreBuffer::commit_pending).
    pending: usize,
}

impl StoreBuffer {
    pub fn new(cap: usize) -> Self {
        StoreBuffer {
            draining: BinaryHeap::with_capacity(cap),
            cap,
            pending: 0,
        }
    }

    /// Drop every drain that has completed by `now`.
    pub fn drain_completed(&mut self, now: u64) {
        while let Some(&Reverse(t)) = self.draining.peek() {
            if t > now {
                break;
            }
            self.draining.pop();
        }
    }

    /// A full buffer stalls the committing thread's retirement until a
    /// drain completes (a structural hazard). Tape-deferred stores count:
    /// their drains always complete strictly after the current cycle
    /// (`complete_at >= now + 1`), so counting them as occupied is
    /// bit-for-bit what the serial path would have computed.
    pub fn is_full(&self) -> bool {
        self.draining.len() + self.pending >= self.cap
    }

    /// Record a store whose cache write completes at `complete_at`.
    pub fn push(&mut self, complete_at: u64) {
        self.draining.push(Reverse(complete_at));
    }

    /// Record a tape-deferred committed store (parallel cluster phase).
    pub fn note_pending(&mut self) {
        self.pending += 1;
    }

    /// Replay a tape-deferred store: its cache write has now been
    /// performed and completes at `complete_at`.
    pub fn commit_pending(&mut self, complete_at: u64) {
        debug_assert!(self.pending > 0, "replayed store was never deferred");
        self.pending -= 1;
        self.draining.push(Reverse(complete_at));
    }
}

/// Whether a load at (`seq`, `addr`) forwards from an older in-flight
/// store of the same thread.
pub(crate) fn store_forwards(entries: &[Entry], fifo: &VecDeque<u32>, seq: u64, addr: u64) -> bool {
    fifo.iter().any(|&s| {
        let w = &entries[s as usize];
        w.is_store && w.seq < seq && w.mem_addr == addr
    })
}
