//! Per-thread in-order retirement, store commit through the store
//! buffer, and drained-sync / thread-exit detection.

use crate::cluster::ClusterEvent;
use crate::config::ClusterConfig;
use csmt_isa::SyncOp;
use csmt_trace::{Probe, StageEvent};

use super::lsq::StoreBuffer;
use super::regs::{EState, Regs, ThreadState};
use super::rename::RenamePools;
use super::sink::MemPort;
use super::window::Window;

/// Run the commit stage. Returns the number of instructions committed
/// (the machine folds it into its running cycle-stats aggregate).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<S: MemPort + Probe>(
    cfg: &ClusterConfig,
    regs: &mut Regs,
    win: &mut Window,
    rename: &mut RenamePools,
    lsq: &mut StoreBuffer,
    now: u64,
    events: &mut Vec<ClusterEvent>,
    sink: &mut S,
    cluster_id: u32,
) -> u32 {
    let mut committed = 0u32;
    let mut budget = cfg.retire_width;
    let n_threads = regs.threads.len();
    // Round-robin start keeps retirement fair across contexts.
    for off in 0..n_threads {
        let tid = (regs.fetch_rr + off) % n_threads;
        while budget > 0 {
            let Some(&head) = regs.threads[tid].fifo.front() else {
                break;
            };
            let e = &win.entries[head as usize];
            if e.state != EState::Done {
                break;
            }
            debug_assert!(!e.wrong_path, "wrong-path entry survived to commit");
            let (is_store, addr, dest, seq) = (e.is_store, e.mem_addr, e.dest, e.seq);
            if is_store {
                // Stores perform their cache access at commit; the store
                // buffer absorbs the latency, but a full buffer stalls
                // this thread's retirement until a drain completes.
                lsq.drain_completed(now);
                if lsq.is_full() {
                    break;
                }
                match sink.store(addr, now) {
                    Some(complete_at) => lsq.push(complete_at),
                    None => lsq.note_pending(), // taped: replayed at commit phase
                }
            }
            if let Some(d) = dest {
                if regs.threads[tid].map[d.flat_index()] == Some(head) {
                    regs.threads[tid].map[d.flat_index()] = None;
                }
            }
            regs.threads[tid].fifo.pop_front();
            win.release(head, rename);
            regs.threads[tid].committed += 1;
            regs.stats.committed += 1;
            committed += 1;
            budget -= 1;
            if S::WANTS_INST_EVENTS {
                sink.commit(StageEvent {
                    cycle: now,
                    cluster: cluster_id,
                    uid: seq,
                });
            }
        }
    }
    // Drained sync / exit / migration detection.
    for tid in 0..n_threads {
        let t = &mut regs.threads[tid];
        if t.state == ThreadState::Draining && t.fifo.is_empty() {
            let op = t
                .pending_sync
                .take()
                .expect("draining thread has a sync op");
            if op == SyncOp::Exit {
                t.state = ThreadState::Done;
                events.push(ClusterEvent::ThreadDone { thread: tid });
            } else {
                t.state = ThreadState::WaitingSync;
                events.push(ClusterEvent::SyncReached { thread: tid, op });
            }
        } else if t.state == ThreadState::Migrating && t.fifo.is_empty() {
            // No state change here: the machine detaches the context
            // (making it Idle) while processing this event, so it fires
            // exactly once.
            events.push(ClusterEvent::MigrationDrained { thread: tid });
        }
    }
    committed
}
