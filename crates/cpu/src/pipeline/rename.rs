//! Register renaming: the int/fp free-register pools instructions allocate
//! from at dispatch and return to at commit or squash, plus the map-table
//! rebuild used on a misprediction recovery.

use csmt_isa::ArchReg;

use super::regs::{Entry, ThreadCtx};

/// The two renaming-register free pools (Table 2 budgets).
pub(crate) struct RenamePools {
    pub int_free: usize,
    pub fp_free: usize,
}

impl RenamePools {
    pub fn new(int_free: usize, fp_free: usize) -> Self {
        RenamePools { int_free, fp_free }
    }

    /// Try to allocate a register of `dest`'s kind. Returns false (and
    /// allocates nothing) when the pool is empty — a rename stall.
    pub fn try_alloc(&mut self, dest: ArchReg) -> bool {
        let pool = if dest.is_fp() {
            &mut self.fp_free
        } else {
            &mut self.int_free
        };
        if *pool == 0 {
            return false;
        }
        *pool -= 1;
        true
    }

    /// True if an allocation of `dest`'s kind would succeed (no state
    /// change). Used by the stall fast-forward to recognise rename-starved
    /// fetch as skippable.
    pub fn can_alloc(&self, dest: ArchReg) -> bool {
        if dest.is_fp() {
            self.fp_free > 0
        } else {
            self.int_free > 0
        }
    }

    /// Return `dest`'s register to its pool.
    pub fn release(&mut self, dest: ArchReg) {
        if dest.is_fp() {
            self.fp_free += 1;
        } else {
            self.int_free += 1;
        }
    }
}

/// Rebuild a thread's map table from its surviving in-flight producers
/// (after wrong-path instructions were squashed).
pub(crate) fn rebuild_map(t: &mut ThreadCtx, entries: &[Entry]) {
    t.map = [None; ArchReg::COUNT];
    for &s in &t.fifo {
        if let Some(d) = entries[s as usize].dest {
            t.map[d.flat_index()] = Some(s);
        }
    }
}
