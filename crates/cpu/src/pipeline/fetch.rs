//! Fetch and rename/dispatch. The paper's baseline fetches from one
//! thread per cycle, round-robin (§3.2); the alternatives Tullsen et al.
//! propose for the fetch bottleneck (§5.2 discussion) are selectable via
//! [`crate::config::FetchPolicy`].

use crate::bpred::BranchPredictor;
use crate::config::{ClusterConfig, FetchPolicy};
use csmt_isa::{OpClass, SyncOp};
use csmt_trace::{FetchEvent, Probe, StageEvent};

use super::regs::{EState, Entry, Regs, SrcState, ThreadCtx, ThreadState};
use super::rename::RenamePools;
use super::window::Window;

/// Run the fetch stage: pick the thread(s) for this cycle per the
/// configured policy and dispatch into the window.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run<P: Probe>(
    cfg: &ClusterConfig,
    regs: &mut Regs,
    win: &mut Window,
    rename: &mut RenamePools,
    bpred: &mut BranchPredictor,
    now: u64,
    probe: &mut P,
    cluster_id: u32,
) {
    let n = regs.threads.len();
    let fetchable =
        |t: &ThreadCtx| matches!(t.state, ThreadState::Running | ThreadState::WrongPath);
    match cfg.fetch_policy {
        FetchPolicy::RoundRobin => {
            for off in 0..n {
                let tid = (regs.fetch_rr + off) % n;
                if fetchable(&regs.threads[tid]) {
                    regs.fetch_rr = (tid + 1) % n;
                    fetch_from(
                        tid,
                        cfg.issue_width,
                        now,
                        regs,
                        win,
                        rename,
                        bpred,
                        probe,
                        cluster_id,
                    );
                    return;
                }
            }
        }
        FetchPolicy::ICount => {
            // Instruction-count feedback: fetch for the thread with the
            // fewest instructions in flight (ties broken round-robin),
            // keeping the shared window balanced so no thread can clog it.
            let mut best: Option<(usize, usize)> = None;
            for off in 0..n {
                let tid = (regs.fetch_rr + off) % n;
                if fetchable(&regs.threads[tid]) {
                    let inflight = regs.threads[tid].fifo.len();
                    if best.is_none_or(|(_, b)| inflight < b) {
                        best = Some((tid, inflight));
                    }
                }
            }
            if let Some((tid, _)) = best {
                regs.fetch_rr = (tid + 1) % n;
                fetch_from(
                    tid,
                    cfg.issue_width,
                    now,
                    regs,
                    win,
                    rename,
                    bpred,
                    probe,
                    cluster_id,
                );
            }
        }
        FetchPolicy::Partitioned2 => {
            // Two fetch ports, each half the width (RR.2.<w/2> in
            // Tullsen et al.'s notation): two different threads can
            // fetch in the same cycle.
            let budget = (cfg.issue_width / 2).max(1);
            let mut picked = 0;
            let mut off = 0;
            let start = regs.fetch_rr;
            while picked < 2 && off < n {
                let tid = (start + off) % n;
                off += 1;
                if fetchable(&regs.threads[tid]) {
                    regs.fetch_rr = (tid + 1) % n;
                    fetch_from(
                        tid, budget, now, regs, win, rename, bpred, probe, cluster_id,
                    );
                    picked += 1;
                }
            }
        }
    }
}

/// Fetch and dispatch up to `budget` instructions from thread `tid`.
#[allow(clippy::too_many_arguments)]
fn fetch_from<P: Probe>(
    tid: usize,
    budget: usize,
    now: u64,
    regs: &mut Regs,
    win: &mut Window,
    rename: &mut RenamePools,
    bpred: &mut BranchPredictor,
    probe: &mut P,
    cluster_id: u32,
) {
    let mut fetched = 0;
    while fetched < budget {
        if !win.has_free() {
            break; // window full
        }
        let state = regs.threads[tid].state;
        let inst = match state {
            ThreadState::Running => {
                let t = &mut regs.threads[tid];
                let next = t
                    .pending
                    .take()
                    .or_else(|| t.stream.as_mut().and_then(|s| s.next_inst()));
                match next {
                    None => {
                        // Stream exhausted without an explicit Exit.
                        t.pending_sync = Some(SyncOp::Exit);
                        t.state = ThreadState::Draining;
                        break;
                    }
                    Some(i) if i.op == OpClass::Sync => {
                        t.pending_sync = Some(i.sync.expect("sync op"));
                        t.state = ThreadState::Draining;
                        break;
                    }
                    Some(i) => i,
                }
            }
            ThreadState::WrongPath => {
                let t = &mut regs.threads[tid];
                let pc = t.wp_pc;
                t.wp_pc += 4;
                t.wp_gen.next_inst(pc)
            }
            _ => break,
        };
        // Rename: need a free register of the destination's kind.
        if let Some(d) = inst.real_dest() {
            if !rename.try_alloc(d) {
                regs.rename_stalled = true;
                if state == ThreadState::Running {
                    regs.threads[tid].pending = Some(inst);
                }
                break;
            }
        }
        let wrong_path = state == ThreadState::WrongPath;
        regs.seq_counter += 1;
        let seq = regs.seq_counter;
        // Source readiness via the map table.
        let mut srcs = [SrcState::Ready, SrcState::Ready];
        {
            let t = &regs.threads[tid];
            for (k, s) in inst.srcs.iter().enumerate() {
                if let Some(r) = s.filter(|r| !r.is_zero()) {
                    if let Some(p) = t.map[r.flat_index()] {
                        if win.entries[p as usize].state != EState::Done {
                            srcs[k] = SrcState::Wait(p);
                        }
                    }
                }
            }
        }
        let mut entry = Entry {
            valid: true,
            thread: tid as u8,
            seq,
            op: inst.op,
            pc: inst.pc,
            state: EState::Waiting,
            srcs,
            dest: inst.real_dest(),
            mem_addr: inst.mem.map_or(0, |m| m.addr),
            is_store: inst.op == OpClass::Store,
            br_taken: false,
            br_target: 0,
            has_branch: false,
            mispredicted: false,
            wrong_path,
        };
        let mut predicted_taken = false;
        if let Some(b) = inst.branch {
            entry.has_branch = true;
            entry.br_taken = b.taken;
            entry.br_target = b.target;
            let pred = bpred.predict(inst.pc);
            predicted_taken = pred;
            let btb_ok = !pred || bpred.btb_hit(inst.pc, b.target);
            if pred != b.taken || !btb_ok {
                entry.mispredicted = true;
            }
        }
        // Install.
        let (has_branch, mispredicted, dest, pc, op) = (
            entry.has_branch,
            entry.mispredicted,
            entry.dest,
            entry.pc,
            entry.op,
        );
        let slot = win.install(entry);
        if let Some(d) = dest {
            regs.threads[tid].map[d.flat_index()] = Some(slot);
        }
        regs.threads[tid].fifo.push_back(slot);
        fetched += 1;
        if P::WANTS_INST_EVENTS {
            probe.fetch(FetchEvent {
                cycle: now,
                cluster: cluster_id,
                thread: tid as u32,
                uid: seq,
                pc,
                op,
                wrong_path,
            });
            probe.rename(StageEvent {
                cycle: now,
                cluster: cluster_id,
                uid: seq,
            });
        }
        if has_branch && mispredicted && !wrong_path {
            // Fetch goes down the wrong path until resolution.
            regs.threads[tid].state = ThreadState::WrongPath;
            regs.threads[tid].wp_pc = inst.pc + 4;
        }
        if predicted_taken {
            // Cannot fetch past a predicted-taken branch in one cycle.
            break;
        }
    }
}
