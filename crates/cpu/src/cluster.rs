//! One SMT cluster: fetch → rename/dispatch → window → issue → execute →
//! commit, with per-thread in-order retirement and wrong-path fetch after
//! branch mispredictions.
//!
//! The window doubles as the reorder buffer, as in the paper's description
//! of the centralized SMT ("instructions from different threads are held in
//! a common 128-entry associative instruction window from where they may be
//! issued in any order. Finally, instructions are committed on a per-thread
//! basis"); Table 2 gives one entry count for "Instruction Queue & Reorder
//! buffer".

use crate::bpred::BranchPredictor;
use crate::config::{ClusterConfig, FetchPolicy};
use crate::fu::FuPool;
use crate::stats::{Hazard, SlotStats};
use csmt_isa::stream::WrongPathGen;
use csmt_isa::{ArchReg, DynInst, InstStream, OpClass, SyncOp};
use csmt_mem::{AccessKind, MemorySystem};
use csmt_trace::{FetchEvent, NullProbe, Probe, StageEvent};
use std::collections::VecDeque;

/// Externally visible state of a hardware thread context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// No software thread attached.
    Idle,
    /// Fetching the correct path.
    Running,
    /// An unresolved mispredicted branch is in flight; fetching wrong-path
    /// instructions that will be squashed.
    WrongPath,
    /// A sync marker was fetched; waiting for in-flight instructions to
    /// drain before reporting to the runtime.
    Draining,
    /// Drained at a sync point; the runtime decides when to resume.
    WaitingSync,
    /// Program finished.
    Done,
}

/// Events the cluster reports to the parallel runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// `thread` has drained at a sync operation and is now spinning.
    SyncReached {
        /// Hardware context index within this cluster.
        thread: usize,
        /// The operation (barrier / lock / exit marker).
        op: SyncOp,
    },
    /// `thread` finished its program (drained past an `Exit`).
    ThreadDone {
        /// Hardware context index within this cluster.
        thread: usize,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EState {
    Waiting,
    Exec { done_at: u64 },
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SrcState {
    Ready,
    Wait(u32),
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    valid: bool,
    thread: u8,
    /// Cluster-global dispatch order; doubles as per-thread program order.
    seq: u64,
    op: OpClass,
    pc: u64,
    state: EState,
    srcs: [SrcState; 2],
    dest: Option<ArchReg>,
    mem_addr: u64,
    is_store: bool,
    br_taken: bool,
    br_target: u64,
    has_branch: bool,
    mispredicted: bool,
    wrong_path: bool,
}

const DEAD: Entry = Entry {
    valid: false,
    thread: 0,
    seq: 0,
    op: OpClass::Nop,
    pc: 0,
    state: EState::Waiting,
    srcs: [SrcState::Ready, SrcState::Ready],
    dest: None,
    mem_addr: 0,
    is_store: false,
    br_taken: false,
    br_target: 0,
    has_branch: false,
    mispredicted: false,
    wrong_path: false,
};

struct ThreadCtx {
    state: ThreadState,
    stream: Option<Box<dyn InstStream + Send>>,
    pending: Option<DynInst>,
    pending_sync: Option<SyncOp>,
    map: [Option<u32>; ArchReg::COUNT],
    fifo: VecDeque<u32>,
    wp_gen: WrongPathGen,
    wp_pc: u64,
    /// Cycle until which an empty window counts as a control (redirect)
    /// bubble rather than a fetch hazard.
    redirect_until: u64,
    committed: u64,
}

impl ThreadCtx {
    fn new(seed: u64) -> Self {
        ThreadCtx {
            state: ThreadState::Idle,
            stream: None,
            pending: None,
            pending_sync: None,
            map: [None; ArchReg::COUNT],
            fifo: VecDeque::with_capacity(128),
            wp_gen: WrongPathGen::new(seed),
            wp_pc: 0,
            redirect_until: 0,
            committed: 0,
        }
    }
}

/// One cluster pipeline. See the crate docs for the per-cycle phases.
pub struct Cluster {
    cfg: ClusterConfig,
    window: Vec<Entry>,
    free_slots: Vec<u32>,
    threads: Vec<ThreadCtx>,
    fu: FuPool,
    bpred: BranchPredictor,
    rename_int_free: usize,
    rename_fp_free: usize,
    fetch_rr: usize,
    seq_counter: u64,
    stats: SlotStats,
    rename_stalled: bool,
    /// Completion times of committed stores still draining to the cache.
    store_buffer: Vec<u64>,
    // Scratch (reused across cycles; no per-cycle allocation).
    ready_buf: Vec<(u64, u32)>,
    wake_buf: Vec<u32>,
}

impl Cluster {
    /// Build a cluster from its Table 2 budget. `seed` derives per-thread
    /// wrong-path generators deterministically.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        let mut rng = csmt_isa::SplitMix64::new(seed);
        Cluster {
            window: vec![DEAD; cfg.window_entries],
            free_slots: (0..cfg.window_entries as u32).rev().collect(),
            threads: (0..cfg.hw_threads)
                .map(|i| ThreadCtx::new(rng.fork(i as u64).next_u64()))
                .collect(),
            fu: FuPool::new(cfg.fu_counts),
            bpred: BranchPredictor::with_kind(cfg.predictor),
            rename_int_free: cfg.rename_int,
            rename_fp_free: cfg.rename_fp,
            fetch_rr: 0,
            seq_counter: 0,
            stats: SlotStats::default(),
            rename_stalled: false,
            store_buffer: Vec::with_capacity(cfg.store_buffer),
            ready_buf: Vec::with_capacity(cfg.window_entries),
            wake_buf: Vec::with_capacity(cfg.window_entries),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Attach a software thread's instruction stream to context `ctx`.
    pub fn attach_thread(&mut self, ctx: usize, stream: Box<dyn InstStream + Send>) {
        let t = &mut self.threads[ctx];
        assert_eq!(t.state, ThreadState::Idle, "context already in use");
        t.stream = Some(stream);
        t.state = ThreadState::Running;
    }

    /// Resume a thread parked at a sync point (barrier released / lock
    /// granted). The runtime calls this.
    pub fn resume_thread(&mut self, ctx: usize) {
        let t = &mut self.threads[ctx];
        assert_eq!(
            t.state,
            ThreadState::WaitingSync,
            "resume of non-waiting thread"
        );
        t.state = ThreadState::Running;
    }

    /// Current state of context `ctx`.
    pub fn thread_state(&self, ctx: usize) -> ThreadState {
        self.threads[ctx].state
    }

    /// Number of contexts currently making progress (not idle, parked or
    /// done) — used for the paper's Figure 6 thread-parallelism metric.
    pub fn running_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| {
                matches!(
                    t.state,
                    ThreadState::Running | ThreadState::WrongPath | ThreadState::Draining
                )
            })
            .count()
    }

    /// True while any context still has work (in-flight or un-fetched).
    pub fn busy(&self) -> bool {
        self.threads
            .iter()
            .any(|t| !matches!(t.state, ThreadState::Idle | ThreadState::Done))
    }

    /// Slot statistics accumulated so far.
    pub fn stats(&self) -> &SlotStats {
        &self.stats
    }

    /// Instructions committed by context `ctx`.
    pub fn thread_committed(&self, ctx: usize) -> u64 {
        self.threads[ctx].committed
    }

    /// Branch predictor statistics (lookups, mispredictions).
    pub fn bpred_stats(&self) -> (u64, u64) {
        self.bpred.stats()
    }

    /// In-flight instruction count of context `ctx` (diagnostics).
    pub fn inflight(&self, ctx: usize) -> usize {
        self.threads[ctx].fifo.len()
    }

    /// Advance one cycle. `node` selects the chip in `mem` this cluster
    /// belongs to. Runtime events are appended to `events`.
    pub fn step(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        node: usize,
        events: &mut Vec<ClusterEvent>,
    ) {
        self.step_probed(now, mem, node, events, &mut NullProbe, 0);
    }

    /// [`step`](Cluster::step) with an observability probe attached.
    /// `cluster_id` is the machine-global cluster index stamped into the
    /// emitted events. All probe calls are gated on `P`'s wants-flags,
    /// so `step_probed::<NullProbe>` monomorphizes to exactly `step`.
    pub fn step_probed<P: Probe>(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        node: usize,
        events: &mut Vec<ClusterEvent>,
        probe: &mut P,
        cluster_id: u32,
    ) {
        self.rename_stalled = false;
        self.complete(now, probe, cluster_id);
        self.commit(now, mem, node, events, probe, cluster_id);
        let (useful, wrong) = self.issue(now, mem, node, probe, cluster_id);
        self.fetch(now, probe, cluster_id);
        self.account(now, useful, wrong);
    }

    // ------------------------------------------------------------------
    // complete: retire execution, wake dependents, resolve branches.
    // ------------------------------------------------------------------
    fn complete<P: Probe>(&mut self, now: u64, probe: &mut P, cluster_id: u32) {
        self.wake_buf.clear();
        for slot in 0..self.window.len() {
            let e = &mut self.window[slot];
            if e.valid {
                if let EState::Exec { done_at } = e.state {
                    if done_at <= now {
                        e.state = EState::Done;
                        if P::WANTS_INST_EVENTS {
                            probe.writeback(StageEvent {
                                cycle: now,
                                cluster: cluster_id,
                                uid: e.seq,
                            });
                        }
                        self.wake_buf.push(slot as u32);
                    }
                }
            }
        }
        // Wake dependents, resolve branches (oldest first so squashes are
        // handled in age order).
        self.wake_buf.sort_by_key(|&s| self.window[s as usize].seq);
        for i in 0..self.wake_buf.len() {
            let slot = self.wake_buf[i];
            let (has_branch, pc, taken, target, mispredicted, thread, seq, valid) = {
                let e = &self.window[slot as usize];
                (
                    e.has_branch,
                    e.pc,
                    e.br_taken,
                    e.br_target,
                    e.mispredicted,
                    e.thread as usize,
                    e.seq,
                    e.valid,
                )
            };
            if !valid {
                continue; // squashed by an older branch this same cycle
            }
            // Wake any entry waiting on this slot.
            for w in self.window.iter_mut() {
                if w.valid {
                    for s in w.srcs.iter_mut() {
                        if *s == SrcState::Wait(slot) {
                            *s = SrcState::Ready;
                        }
                    }
                }
            }
            if has_branch {
                self.bpred.resolve(pc, taken, target, mispredicted);
                if mispredicted {
                    self.squash_after(thread, seq, now, probe, cluster_id);
                }
            }
        }
    }

    /// Remove all of `thread`'s instructions younger than `seq` (the
    /// wrong-path fetches), rebuild its map table, resume correct-path fetch.
    fn squash_after<P: Probe>(
        &mut self,
        thread: usize,
        seq: u64,
        now: u64,
        probe: &mut P,
        cluster_id: u32,
    ) {
        while let Some(&back) = self.threads[thread].fifo.back() {
            let victim_seq = self.window[back as usize].seq;
            if victim_seq <= seq {
                break;
            }
            self.threads[thread].fifo.pop_back();
            self.release_slot(back);
            if P::WANTS_INST_EVENTS {
                probe.squash(StageEvent {
                    cycle: now,
                    cluster: cluster_id,
                    uid: victim_seq,
                });
            }
        }
        // Rebuild the map table from surviving in-flight producers.
        let t = &mut self.threads[thread];
        t.map = [None; ArchReg::COUNT];
        for &s in &t.fifo {
            if let Some(d) = self.window[s as usize].dest {
                t.map[d.flat_index()] = Some(s);
            }
        }
        if t.state == ThreadState::WrongPath {
            t.state = ThreadState::Running;
        }
        t.redirect_until = now + 1;
    }

    fn release_slot(&mut self, slot: u32) {
        let e = &mut self.window[slot as usize];
        debug_assert!(e.valid);
        if let Some(d) = e.dest {
            if d.is_fp() {
                self.rename_fp_free += 1;
            } else {
                self.rename_int_free += 1;
            }
        }
        *e = DEAD;
        self.free_slots.push(slot);
    }

    // ------------------------------------------------------------------
    // commit: per-thread in-order retirement.
    // ------------------------------------------------------------------
    fn commit<P: Probe>(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        node: usize,
        events: &mut Vec<ClusterEvent>,
        probe: &mut P,
        cluster_id: u32,
    ) {
        let mut budget = self.cfg.retire_width;
        let n_threads = self.threads.len();
        // Round-robin start keeps retirement fair across contexts.
        for off in 0..n_threads {
            let tid = (self.fetch_rr + off) % n_threads;
            while budget > 0 {
                let Some(&head) = self.threads[tid].fifo.front() else {
                    break;
                };
                let e = &self.window[head as usize];
                if e.state != EState::Done {
                    break;
                }
                debug_assert!(!e.wrong_path, "wrong-path entry survived to commit");
                let (is_store, addr, dest, seq) = (e.is_store, e.mem_addr, e.dest, e.seq);
                if is_store {
                    // Stores perform their cache access at commit; the store
                    // buffer absorbs the latency, but a full buffer stalls
                    // this thread's retirement until a drain completes.
                    self.store_buffer.retain(|&t| t > now);
                    if self.store_buffer.len() >= self.cfg.store_buffer {
                        break;
                    }
                    let out = mem.access_probed(node, addr, AccessKind::Write, now, probe);
                    self.store_buffer.push(out.complete_at);
                }
                if let Some(d) = dest {
                    if self.threads[tid].map[d.flat_index()] == Some(head) {
                        self.threads[tid].map[d.flat_index()] = None;
                    }
                }
                self.threads[tid].fifo.pop_front();
                self.release_slot(head);
                self.threads[tid].committed += 1;
                self.stats.committed += 1;
                budget -= 1;
                if P::WANTS_INST_EVENTS {
                    probe.commit(StageEvent {
                        cycle: now,
                        cluster: cluster_id,
                        uid: seq,
                    });
                }
            }
        }
        // Drained sync / exit detection.
        for tid in 0..n_threads {
            let t = &mut self.threads[tid];
            if t.state == ThreadState::Draining && t.fifo.is_empty() {
                let op = t
                    .pending_sync
                    .take()
                    .expect("draining thread has a sync op");
                if op == SyncOp::Exit {
                    t.state = ThreadState::Done;
                    events.push(ClusterEvent::ThreadDone { thread: tid });
                } else {
                    t.state = ThreadState::WaitingSync;
                    events.push(ClusterEvent::SyncReached { thread: tid, op });
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // issue: oldest-first over ready instructions.
    // ------------------------------------------------------------------
    fn issue<P: Probe>(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        node: usize,
        probe: &mut P,
        cluster_id: u32,
    ) -> (usize, usize) {
        self.ready_buf.clear();
        for (slot, e) in self.window.iter().enumerate() {
            if e.valid && e.state == EState::Waiting && e.srcs.iter().all(|s| *s == SrcState::Ready)
            {
                self.ready_buf.push((e.seq, slot as u32));
            }
        }
        self.ready_buf.sort_unstable();
        let mut useful = 0;
        let mut wrong = 0;
        let width = self.cfg.issue_width;
        for i in 0..self.ready_buf.len() {
            if useful + wrong >= width {
                break;
            }
            let slot = self.ready_buf[i].1 as usize;
            let (op, addr, is_store, thread, seq, wrong_path) = {
                let e = &self.window[slot];
                (
                    e.op,
                    e.mem_addr,
                    e.is_store,
                    e.thread as usize,
                    e.seq,
                    e.wrong_path,
                )
            };
            if !self.fu.can_issue(op, now) {
                self.fu.note_structural_stall();
                continue;
            }
            let done_at = if op == OpClass::Load {
                // Store-to-load forwarding within the thread's in-flight
                // stores (full load bypassing, §3.1).
                let forwarded = self.threads[thread].fifo.iter().any(|&s| {
                    let w = &self.window[s as usize];
                    w.is_store && w.seq < seq && w.mem_addr == addr
                });
                if forwarded {
                    self.fu.issue(op, now)
                } else {
                    if mem.free_mshrs(node, now) == 0 {
                        // Outstanding-load limit reached: cannot issue.
                        continue;
                    }
                    self.fu.issue(op, now);
                    let out = mem.access_probed(node, addr, AccessKind::Read, now, probe);
                    out.complete_at.max(now + op.latency() as u64)
                }
            } else if is_store {
                // Stores only compute their address/value here; the cache
                // write happens at commit.
                self.fu.issue(op, now)
            } else {
                self.fu.issue(op, now)
            };
            self.window[slot].state = EState::Exec { done_at };
            if P::WANTS_INST_EVENTS {
                probe.issue(StageEvent {
                    cycle: now,
                    cluster: cluster_id,
                    uid: seq,
                });
            }
            if wrong_path {
                wrong += 1;
            } else {
                useful += 1;
            }
        }
        (useful, wrong)
    }

    // ------------------------------------------------------------------
    // fetch/dispatch. The paper's baseline fetches from one thread per
    // cycle, round-robin (§3.2); the alternatives Tullsen et al. propose
    // for the fetch bottleneck (§5.2 discussion) are selectable via
    // [`crate::config::FetchPolicy`].
    // ------------------------------------------------------------------
    fn fetch<P: Probe>(&mut self, now: u64, probe: &mut P, cluster_id: u32) {
        let n = self.threads.len();
        let fetchable =
            |t: &ThreadCtx| matches!(t.state, ThreadState::Running | ThreadState::WrongPath);
        match self.cfg.fetch_policy {
            FetchPolicy::RoundRobin => {
                for off in 0..n {
                    let tid = (self.fetch_rr + off) % n;
                    if fetchable(&self.threads[tid]) {
                        self.fetch_rr = (tid + 1) % n;
                        self.fetch_from(tid, self.cfg.issue_width, now, probe, cluster_id);
                        return;
                    }
                }
            }
            FetchPolicy::ICount => {
                // Instruction-count feedback: fetch for the thread with the
                // fewest instructions in flight (ties broken round-robin),
                // keeping the shared window balanced so no thread can clog it.
                let mut best: Option<(usize, usize)> = None;
                for off in 0..n {
                    let tid = (self.fetch_rr + off) % n;
                    if fetchable(&self.threads[tid]) {
                        let inflight = self.threads[tid].fifo.len();
                        if best.is_none_or(|(_, b)| inflight < b) {
                            best = Some((tid, inflight));
                        }
                    }
                }
                if let Some((tid, _)) = best {
                    self.fetch_rr = (tid + 1) % n;
                    self.fetch_from(tid, self.cfg.issue_width, now, probe, cluster_id);
                }
            }
            FetchPolicy::Partitioned2 => {
                // Two fetch ports, each half the width (RR.2.<w/2> in
                // Tullsen et al.'s notation): two different threads can
                // fetch in the same cycle.
                let budget = (self.cfg.issue_width / 2).max(1);
                let mut picked = 0;
                let mut off = 0;
                let start = self.fetch_rr;
                while picked < 2 && off < n {
                    let tid = (start + off) % n;
                    off += 1;
                    if fetchable(&self.threads[tid]) {
                        self.fetch_rr = (tid + 1) % n;
                        self.fetch_from(tid, budget, now, probe, cluster_id);
                        picked += 1;
                    }
                }
            }
        }
    }

    /// Fetch and dispatch up to `budget` instructions from thread `tid`.
    fn fetch_from<P: Probe>(
        &mut self,
        tid: usize,
        budget: usize,
        now: u64,
        probe: &mut P,
        cluster_id: u32,
    ) {
        let mut fetched = 0;
        while fetched < budget {
            if self.free_slots.is_empty() {
                break; // window full
            }
            let state = self.threads[tid].state;
            let inst = match state {
                ThreadState::Running => {
                    let t = &mut self.threads[tid];
                    let next = t
                        .pending
                        .take()
                        .or_else(|| t.stream.as_mut().and_then(|s| s.next_inst()));
                    match next {
                        None => {
                            // Stream exhausted without an explicit Exit.
                            t.pending_sync = Some(SyncOp::Exit);
                            t.state = ThreadState::Draining;
                            break;
                        }
                        Some(i) if i.op == OpClass::Sync => {
                            t.pending_sync = Some(i.sync.expect("sync op"));
                            t.state = ThreadState::Draining;
                            break;
                        }
                        Some(i) => i,
                    }
                }
                ThreadState::WrongPath => {
                    let t = &mut self.threads[tid];
                    let pc = t.wp_pc;
                    t.wp_pc += 4;
                    t.wp_gen.next_inst(pc)
                }
                _ => break,
            };
            // Rename: need a free register of the destination's kind.
            if let Some(d) = inst.real_dest() {
                let pool = if d.is_fp() {
                    &mut self.rename_fp_free
                } else {
                    &mut self.rename_int_free
                };
                if *pool == 0 {
                    self.rename_stalled = true;
                    if state == ThreadState::Running {
                        self.threads[tid].pending = Some(inst);
                    }
                    break;
                }
                *pool -= 1;
            }
            let wrong_path = state == ThreadState::WrongPath;
            let slot = self.free_slots.pop().expect("checked non-empty");
            self.seq_counter += 1;
            let seq = self.seq_counter;
            // Source readiness via the map table.
            let mut srcs = [SrcState::Ready, SrcState::Ready];
            {
                let t = &self.threads[tid];
                for (k, s) in inst.srcs.iter().enumerate() {
                    if let Some(r) = s.filter(|r| !r.is_zero()) {
                        if let Some(p) = t.map[r.flat_index()] {
                            if self.window[p as usize].state != EState::Done {
                                srcs[k] = SrcState::Wait(p);
                            }
                        }
                    }
                }
            }
            let mut entry = Entry {
                valid: true,
                thread: tid as u8,
                seq,
                op: inst.op,
                pc: inst.pc,
                state: EState::Waiting,
                srcs,
                dest: inst.real_dest(),
                mem_addr: inst.mem.map_or(0, |m| m.addr),
                is_store: inst.op == OpClass::Store,
                br_taken: false,
                br_target: 0,
                has_branch: false,
                mispredicted: false,
                wrong_path,
            };
            let mut predicted_taken = false;
            if let Some(b) = inst.branch {
                entry.has_branch = true;
                entry.br_taken = b.taken;
                entry.br_target = b.target;
                let pred = self.bpred.predict(inst.pc);
                predicted_taken = pred;
                let btb_ok = !pred || self.bpred.btb_hit(inst.pc, b.target);
                if pred != b.taken || !btb_ok {
                    entry.mispredicted = true;
                }
            }
            // Install.
            if let Some(d) = entry.dest {
                self.threads[tid].map[d.flat_index()] = Some(slot);
            }
            self.window[slot as usize] = entry;
            self.threads[tid].fifo.push_back(slot);
            fetched += 1;
            if P::WANTS_INST_EVENTS {
                probe.fetch(FetchEvent {
                    cycle: now,
                    cluster: cluster_id,
                    thread: tid as u32,
                    uid: seq,
                    pc: entry.pc,
                    op: entry.op,
                    wrong_path,
                });
                probe.rename(StageEvent {
                    cycle: now,
                    cluster: cluster_id,
                    uid: seq,
                });
            }
            if entry.has_branch && entry.mispredicted && !wrong_path {
                // Fetch goes down the wrong path until resolution.
                self.threads[tid].state = ThreadState::WrongPath;
                self.threads[tid].wp_pc = inst.pc + 4;
            }
            if predicted_taken {
                // Cannot fetch past a predicted-taken branch in one cycle.
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // account: §4.1 issue-slot attribution.
    // ------------------------------------------------------------------
    fn account(&mut self, now: u64, useful: usize, wrong: usize) {
        let mut w = [0.0f64; 7];
        if self.rename_stalled {
            w[Hazard::Other.index()] += 1.0;
        }
        for t in &self.threads {
            match t.state {
                ThreadState::Idle
                | ThreadState::Done
                | ThreadState::Draining
                | ThreadState::WaitingSync => {
                    // Parked threads waste their share of the cluster:
                    // spinning at barriers/locks (or gone).
                    w[Hazard::Sync.index()] += 1.0;
                }
                ThreadState::Running | ThreadState::WrongPath => {
                    if t.fifo.is_empty() {
                        if now < t.redirect_until {
                            w[Hazard::Control.index()] += 1.0;
                        } else {
                            w[Hazard::Fetch.index()] += 1.0;
                        }
                        continue;
                    }
                    let mut any_weight = false;
                    for &s in &t.fifo {
                        let e = &self.window[s as usize];
                        match e.state {
                            EState::Waiting => {
                                any_weight = true;
                                if e.wrong_path {
                                    w[Hazard::Control.index()] += 1.0;
                                    continue;
                                }
                                let mut waiting_mem = false;
                                let mut waiting_data = false;
                                for src in &e.srcs {
                                    if let SrcState::Wait(p) = src {
                                        let prod = &self.window[*p as usize];
                                        if prod.op == OpClass::Load
                                            && matches!(prod.state, EState::Exec { .. })
                                        {
                                            waiting_mem = true;
                                        } else {
                                            waiting_data = true;
                                        }
                                    }
                                }
                                if waiting_mem {
                                    w[Hazard::Memory.index()] += 1.0;
                                } else if waiting_data {
                                    w[Hazard::Data.index()] += 1.0;
                                } else {
                                    // Ready but not issued: lack of FU or of
                                    // issue bandwidth.
                                    w[Hazard::Structural.index()] += 1.0;
                                }
                            }
                            EState::Exec { .. } => {
                                // An issued load still waiting on the memory
                                // system keeps its slice of the machine busy:
                                // charge it as a memory hazard, as the
                                // paper's window scan does for instructions
                                // held up by memory accesses.
                                if e.op == OpClass::Load {
                                    w[Hazard::Memory.index()] += 1.0;
                                    any_weight = true;
                                }
                            }
                            EState::Done => {}
                        }
                    }
                    if !any_weight {
                        // Window full of completed work awaiting retirement:
                        // the structural limit is the window/retire
                        // bandwidth itself.
                        w[Hazard::Structural.index()] += 1.0;
                    }
                }
            }
        }
        self.stats
            .record_cycle(self.cfg.issue_width, useful, wrong, &w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmt_isa::stream::VecStream;
    use csmt_mem::MemConfig;

    fn mem1() -> MemorySystem {
        MemorySystem::new(MemConfig::table3(), 1, 7)
    }

    fn alu(pc: u64, dest: u8, src: u8) -> DynInst {
        DynInst::alu(
            pc,
            OpClass::IntAlu,
            Some(ArchReg::Int(dest)),
            [Some(ArchReg::Int(src)), None],
        )
    }

    /// Run until all threads are done; returns cycles taken.
    fn run(cluster: &mut Cluster, mem: &mut MemorySystem, max: u64) -> u64 {
        let mut events = Vec::new();
        for now in 0..max {
            cluster.step(now, mem, 0, &mut events);
            if !cluster.busy() {
                return now;
            }
        }
        panic!("did not finish within {max} cycles");
    }

    #[test]
    fn independent_alus_approach_full_issue_width() {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
        let mut mem = mem1();
        // 400 independent ALU ops (distinct dest, src = $0-equivalent none).
        let insts: Vec<DynInst> = (0..400)
            .map(|i| {
                DynInst::alu(
                    i * 4,
                    OpClass::IntAlu,
                    Some(ArchReg::Int(1 + (i % 8) as u8)),
                    [None, None],
                )
            })
            .collect();
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        let cycles = run(&mut c, &mut mem, 10_000);
        assert_eq!(c.thread_committed(0), 400);
        // 4 int FUs, fetch 4/cycle: should finish in a little over 100 cycles.
        assert!(cycles < 140, "took {cycles}");
    }

    #[test]
    fn dependence_chain_limits_ipc_to_one() {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
        let mut mem = mem1();
        // r1 <- r1 chain of 300 ops.
        let insts: Vec<DynInst> = (0..300).map(|i| alu(i * 4, 1, 1)).collect();
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        let cycles = run(&mut c, &mut mem, 10_000);
        assert!(cycles >= 299, "chain cannot beat 1 IPC: {cycles}");
        assert!(cycles < 400, "but should stay close to it: {cycles}");
    }

    #[test]
    fn load_use_pays_memory_latency() {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
        let mut mem = mem1();
        // A single load (cold: TLB walk + local memory) then a dependent op.
        let insts = vec![
            DynInst::load(0, ArchReg::Int(1), 0x100, [None, None]),
            alu(4, 2, 1),
        ];
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        let cycles = run(&mut c, &mut mem, 10_000);
        // ~30 (TLB) + 40 (memory) plus pipeline overhead.
        assert!(
            cycles >= 70,
            "cold load must expose memory latency: {cycles}"
        );
        assert!(cycles < 100, "{cycles}");
    }

    #[test]
    fn store_forwarding_hides_memory_latency() {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
        let mut mem = mem1();
        // Store to X then load from X: the load forwards, no 40-cycle trip.
        let insts = vec![
            DynInst::store(0, 0x8000, [None, None]),
            DynInst::load(4, ArchReg::Int(1), 0x8000, [None, None]),
            alu(8, 2, 1),
        ];
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        let cycles = run(&mut c, &mut mem, 10_000);
        assert!(cycles < 20, "forwarded load should be fast: {cycles}");
    }

    #[test]
    fn mispredicted_branch_squashes_and_still_commits_exact_count() {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
        let mut mem = mem1();
        // Alternating taken/not-taken branches defeat the 2-bit counter
        // part of the time; all correct-path instructions must still commit
        // exactly once.
        let mut insts = Vec::new();
        for i in 0..100u64 {
            insts.push(alu(i * 16, 1, 1));
            insts.push(DynInst::branch(
                i * 16 + 4,
                i % 2 == 0,
                0,
                [Some(ArchReg::Int(1)), None],
            ));
        }
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        run(&mut c, &mut mem, 50_000);
        assert_eq!(c.thread_committed(0), 200);
        let (_, mispredicts) = c.bpred_stats();
        assert!(
            mispredicts > 20,
            "alternating pattern must mispredict: {mispredicts}"
        );
        // Wrong-path issue shows up as `other` slots.
        assert!(c.stats().wasted[Hazard::Other.index()] > 0.0);
    }

    #[test]
    fn well_predicted_loop_commits_cleanly() {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
        let mut mem = mem1();
        // Same backward branch, always taken: predictor locks on.
        let mut insts = Vec::new();
        for _ in 0..200u64 {
            insts.push(alu(0, 1, 1));
            insts.push(DynInst::branch(4, true, 0, [Some(ArchReg::Int(1)), None]));
        }
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        run(&mut c, &mut mem, 50_000);
        assert_eq!(c.thread_committed(0), 400);
        let (_, mispredicts) = c.bpred_stats();
        assert!(
            mispredicts <= 3,
            "loop branch should be learned: {mispredicts}"
        );
    }

    #[test]
    fn sync_marker_drains_then_reports_and_resumes() {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 2), 1);
        let mut mem = mem1();
        let insts = vec![
            alu(0, 1, 1),
            DynInst::sync(4, SyncOp::Barrier(3)),
            alu(8, 2, 2),
        ];
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        let mut events = Vec::new();
        let mut reached_at = None;
        for now in 0..200 {
            events.clear();
            c.step(now, &mut mem, 0, &mut events);
            if let Some(ClusterEvent::SyncReached { thread, op }) = events.first() {
                assert_eq!(*thread, 0);
                assert_eq!(*op, SyncOp::Barrier(3));
                reached_at = Some(now);
                break;
            }
        }
        let reached_at = reached_at.expect("barrier reached");
        assert_eq!(c.thread_state(0), ThreadState::WaitingSync);
        assert_eq!(c.thread_committed(0), 1, "drained before reporting");
        // Spin a while: parked thread must not advance.
        for now in reached_at + 1..reached_at + 20 {
            events.clear();
            c.step(now, &mut mem, 0, &mut events);
        }
        assert_eq!(c.thread_committed(0), 1);
        // Sync slots accumulated while spinning.
        assert!(c.stats().wasted[Hazard::Sync.index()] > 0.0);
        c.resume_thread(0);
        let mut done = false;
        for now in reached_at + 20..reached_at + 200 {
            events.clear();
            c.step(now, &mut mem, 0, &mut events);
            if events
                .iter()
                .any(|e| matches!(e, ClusterEvent::ThreadDone { thread: 0 }))
            {
                done = true;
                break;
            }
        }
        assert!(done);
        assert_eq!(c.thread_committed(0), 2);
    }

    #[test]
    fn two_threads_share_the_cluster_faster_than_one_each() {
        let chain =
            |base: u64| -> Vec<DynInst> { (0..300).map(|i| alu(base + i * 4, 1, 1)).collect() };
        // One thread alone: latency-bound chain, IPC 1.
        let mut c1 = Cluster::new(ClusterConfig::for_width(4, 4), 1);
        let mut mem = mem1();
        c1.attach_thread(0, Box::new(VecStream::new(chain(0))));
        let solo = run(&mut c1, &mut mem, 10_000);
        // Two threads with independent chains: SMT overlaps them.
        let mut c2 = Cluster::new(ClusterConfig::for_width(4, 4), 1);
        let mut mem2 = mem1();
        c2.attach_thread(0, Box::new(VecStream::new(chain(0))));
        c2.attach_thread(1, Box::new(VecStream::new(chain(0x10000))));
        let duo = run(&mut c2, &mut mem2, 10_000);
        assert!(
            (duo as f64) < solo as f64 * 1.4,
            "two chains should overlap, not serialize: solo={solo} duo={duo}"
        );
        assert_eq!(c2.thread_committed(0) + c2.thread_committed(1), 600);
    }

    #[test]
    fn narrow_cluster_cannot_exploit_wide_ilp() {
        // 8 independent streams of work inside one thread on a 1-issue
        // cluster: IPC pinned at 1 regardless of ILP.
        let mut c = Cluster::new(ClusterConfig::for_width(1, 1), 1);
        let mut mem = mem1();
        let insts: Vec<DynInst> = (0..200)
            .map(|i| {
                DynInst::alu(
                    i * 4,
                    OpClass::IntAlu,
                    Some(ArchReg::Int(1 + (i % 8) as u8)),
                    [None, None],
                )
            })
            .collect();
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        let cycles = run(&mut c, &mut mem, 10_000);
        assert!(cycles >= 199, "1-issue cluster: {cycles}");
    }

    #[test]
    fn rename_pressure_throttles_but_does_not_deadlock() {
        // Tiny window/rename budget via the 1-wide config, long stream of
        // destination-writing ops.
        let mut c = Cluster::new(ClusterConfig::for_width(1, 1), 1);
        let mut mem = mem1();
        let insts: Vec<DynInst> = (0..500).map(|i| alu(i * 4, 1 + (i % 4) as u8, 1)).collect();
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        run(&mut c, &mut mem, 50_000);
        assert_eq!(c.thread_committed(0), 500);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let build = || {
            let mut c = Cluster::new(ClusterConfig::for_width(4, 2), 99);
            let mut mem = mem1();
            let mut insts = Vec::new();
            for i in 0..150u64 {
                insts.push(DynInst::load(
                    i * 12,
                    ArchReg::Fp(1),
                    (i * 712) % 65536,
                    [None, None],
                ));
                insts.push(DynInst::alu(
                    i * 12 + 4,
                    OpClass::FpAdd,
                    Some(ArchReg::Fp(2)),
                    [Some(ArchReg::Fp(1)), None],
                ));
                insts.push(DynInst::branch(i * 12 + 8, i % 7 == 0, 0, [None, None]));
            }
            c.attach_thread(0, Box::new(VecStream::new(insts.clone())));
            c.attach_thread(1, Box::new(VecStream::new(insts)));
            let cycles = run(&mut c, &mut mem, 100_000);
            (cycles, c.stats().clone())
        };
        let (c1, s1) = build();
        let (c2, s2) = build();
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);
    }

    #[test]
    fn slot_accounting_is_conservative() {
        // useful + wasted must equal total slots.
        let mut c = Cluster::new(ClusterConfig::for_width(4, 2), 1);
        let mut mem = mem1();
        let insts: Vec<DynInst> = (0..100)
            .map(|i| {
                DynInst::load(
                    i * 4,
                    ArchReg::Int(1),
                    (i * 64) % 32768,
                    [Some(ArchReg::Int(1)), None],
                )
            })
            .collect();
        c.attach_thread(0, Box::new(VecStream::new(insts)));
        run(&mut c, &mut mem, 100_000);
        let s = c.stats();
        let accounted = s.useful + s.wasted.iter().sum::<f64>();
        assert!(
            (accounted - s.slots as f64).abs() < 1e-6,
            "accounted {accounted} vs slots {}",
            s.slots
        );
    }

    #[test]
    fn icount_policy_balances_window_occupancy() {
        // Thread 0 runs a long-latency dependent chain (clogs slowly);
        // thread 1 runs independent ops. Under ICOUNT the starved thread
        // gets priority, so total completion is no worse than round-robin.
        let mk = |policy: FetchPolicy| {
            let mut c = Cluster::new(ClusterConfig::for_width(4, 2).with_fetch_policy(policy), 1);
            let mut mem = mem1();
            let chain: Vec<DynInst> = (0..200)
                .map(|i| {
                    DynInst::alu(
                        i * 4,
                        OpClass::FpDivDouble,
                        Some(ArchReg::Fp(2)),
                        [Some(ArchReg::Fp(2)), None],
                    )
                })
                .collect();
            let indep: Vec<DynInst> = (0..200)
                .map(|i| {
                    DynInst::alu(
                        0x8000 + i * 4,
                        OpClass::IntAlu,
                        Some(ArchReg::Int(1 + (i % 8) as u8)),
                        [None, None],
                    )
                })
                .collect();
            c.attach_thread(0, Box::new(VecStream::new(chain)));
            c.attach_thread(1, Box::new(VecStream::new(indep)));
            run(&mut c, &mut mem, 100_000)
        };
        let rr = mk(FetchPolicy::RoundRobin);
        let ic = mk(FetchPolicy::ICount);
        assert!(
            ic <= rr + 8,
            "ICOUNT must not lose to RR here: {ic} vs {rr}"
        );
    }

    #[test]
    fn partitioned_fetch_feeds_two_threads_per_cycle() {
        // With 8 threads of pure independent work on an 8-wide cluster,
        // partitioned fetch sustains two streams per cycle and must not be
        // slower than single-thread round-robin fetch.
        let mk = |policy: FetchPolicy| {
            let mut c = Cluster::new(ClusterConfig::for_width(8, 8).with_fetch_policy(policy), 1);
            let mut mem = mem1();
            for t in 0..8 {
                let insts: Vec<DynInst> = (0..100)
                    .map(|i| {
                        DynInst::alu(
                            ((t as u64) << 16) | (i * 4),
                            if i % 2 == 0 {
                                OpClass::IntAlu
                            } else {
                                OpClass::FpAdd
                            },
                            Some(ArchReg::Int(1 + (i % 8) as u8)),
                            [None, None],
                        )
                    })
                    .collect();
                c.attach_thread(t, Box::new(VecStream::new(insts)));
            }
            run(&mut c, &mut mem, 100_000)
        };
        let rr = mk(FetchPolicy::RoundRobin);
        let part = mk(FetchPolicy::Partitioned2);
        assert!(part <= rr + 16, "partitioned {part} vs rr {rr}");
    }

    #[test]
    fn all_policies_commit_everything() {
        for policy in [
            FetchPolicy::RoundRobin,
            FetchPolicy::ICount,
            FetchPolicy::Partitioned2,
        ] {
            let mut c = Cluster::new(ClusterConfig::for_width(4, 4).with_fetch_policy(policy), 1);
            let mut mem = mem1();
            for t in 0..4 {
                let insts: Vec<DynInst> = (0..150)
                    .map(|i| {
                        DynInst::alu(
                            ((t as u64) << 16) | (i * 4),
                            OpClass::IntAlu,
                            Some(ArchReg::Int(1)),
                            [Some(ArchReg::Int(1)), None],
                        )
                    })
                    .collect();
                c.attach_thread(t, Box::new(VecStream::new(insts)));
            }
            run(&mut c, &mut mem, 100_000);
            for t in 0..4 {
                assert_eq!(c.thread_committed(t), 150, "{policy:?} thread {t}");
            }
        }
    }

    #[test]
    fn tiny_store_buffer_throttles_store_bursts() {
        // A stream of stores to distinct lines (every one a cache miss):
        // with a 1-entry store buffer, commits serialize behind the misses.
        let mk = |buf: usize| {
            let mut c = Cluster::new(ClusterConfig::for_width(4, 1).with_store_buffer(buf), 1);
            let mut mem = mem1();
            let insts: Vec<DynInst> = (0..100)
                .map(|i| DynInst::store(i * 4, 0x100_000 + i * 64, [None, None]))
                .collect();
            c.attach_thread(0, Box::new(VecStream::new(insts)));
            run(&mut c, &mut mem, 1_000_000)
        };
        let roomy = mk(16);
        let tight = mk(1);
        assert!(
            tight > roomy * 3,
            "1-entry buffer must serialize misses: {tight} vs {roomy}"
        );
        // Everything still commits.
    }

    #[test]
    fn idle_cluster_accumulates_sync_slots() {
        let mut c = Cluster::new(ClusterConfig::for_width(4, 1), 1);
        let mut mem = mem1();
        let mut events = Vec::new();
        for now in 0..10 {
            c.step(now, &mut mem, 0, &mut events);
        }
        let s = c.stats();
        assert_eq!(s.useful, 0.0);
        assert_eq!(s.wasted[Hazard::Sync.index()], 40.0);
    }
}
