//! One SMT cluster: fetch → rename/dispatch → window → issue → execute →
//! commit, with per-thread in-order retirement and wrong-path fetch after
//! branch mispredictions.
//!
//! The window doubles as the reorder buffer, as in the paper's description
//! of the centralized SMT ("instructions from different threads are held in
//! a common 128-entry associative instruction window from where they may be
//! issued in any order. Finally, instructions are committed on a per-thread
//! basis"); Table 2 gives one entry count for "Instruction Queue & Reorder
//! buffer".
//!
//! This type is a façade: it owns the per-stage state and drives the
//! per-cycle phase order; the stage logic lives in [`crate::pipeline`].

use crate::bpred::BranchPredictor;
use crate::config::ClusterConfig;
use crate::fu::FuPool;
use crate::pipeline::lsq::StoreBuffer;
use crate::pipeline::regs::{EState, Regs, ThreadCtx};
use crate::pipeline::rename::RenamePools;
use crate::pipeline::sink::{IntentBuffer, MemPort, SerialSink, TapeOp, TapeSink};
use crate::pipeline::window::Window;
use crate::pipeline::{commit, fetch, regs};
use crate::stats::{CycleActivity, SlotStats};
use csmt_isa::{InstStream, SyncOp};
use csmt_mem::{AccessKind, MemorySystem};
use csmt_trace::{HostPhase, NullProbe, Probe, RenamePoolEvent, WindowOccEvent};

pub use crate::pipeline::regs::ThreadState;
pub use crate::pipeline::sink::Wants;

/// Events the cluster reports to the parallel runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// `thread` has drained at a sync operation and is now spinning.
    SyncReached {
        /// Hardware context index within this cluster.
        thread: usize,
        /// The operation (barrier / lock / exit marker).
        op: SyncOp,
    },
    /// `thread` finished its program (drained past an `Exit`).
    ThreadDone {
        /// Hardware context index within this cluster.
        thread: usize,
    },
    /// A context held for migration has fully drained its in-flight work
    /// and can be detached. Emitted once: the machine detaches the context
    /// (making it `Idle`) while processing this event.
    MigrationDrained {
        /// Hardware context index within this cluster.
        thread: usize,
    },
}

/// The architectural state of a software thread detached from a cluster
/// context mid-run, carried to its destination by the machine's thread
/// scheduler. Microarchitectural state (window entries, rename mappings,
/// store buffer) never travels: the context is fully drained first.
pub struct DetachedThread {
    /// The thread's remaining instruction stream.
    pub stream: Option<Box<dyn InstStream + Send>>,
    /// An instruction fetched but not yet installed (rename-stalled at
    /// detach time); replayed first at the destination.
    pub pending: Option<csmt_isa::DynInst>,
    /// Instructions committed so far, restored at the destination so
    /// per-thread commit counts stay cumulative across migrations.
    pub committed: u64,
}

/// One cluster pipeline. See the crate docs for the per-cycle phases.
pub struct Cluster {
    cfg: ClusterConfig,
    regs: Regs,
    win: Window,
    rename: RenamePools,
    lsq: StoreBuffer,
    fu: FuPool,
    bpred: BranchPredictor,
    /// Intent tape for the parallel cluster phase; empty outside a
    /// `step_tape` / `replay_tape` pair.
    tape: IntentBuffer,
}

impl Cluster {
    /// Build a cluster from its Table 2 budget. `seed` derives per-thread
    /// wrong-path generators deterministically.
    pub fn new(cfg: ClusterConfig, seed: u64) -> Self {
        let mut rng = csmt_isa::SplitMix64::new(seed);
        Cluster {
            regs: Regs::new(
                (0..cfg.hw_threads)
                    .map(|i| ThreadCtx::new(rng.fork(i as u64).next_u64()))
                    .collect(),
            ),
            win: Window::new(cfg.window_entries),
            rename: RenamePools::new(cfg.rename_int, cfg.rename_fp),
            lsq: StoreBuffer::new(cfg.store_buffer),
            fu: FuPool::new(cfg.fu_counts),
            bpred: BranchPredictor::with_kind(cfg.predictor),
            tape: IntentBuffer::default(),
            cfg,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Attach a software thread's instruction stream to context `ctx`.
    pub fn attach_thread(&mut self, ctx: usize, stream: Box<dyn InstStream + Send>) {
        let t = &mut self.regs.threads[ctx];
        assert_eq!(t.state, ThreadState::Idle, "context already in use");
        t.stream = Some(stream);
        t.state = ThreadState::Running;
    }

    /// Resume a thread parked at a sync point (barrier released / lock
    /// granted). The runtime calls this.
    pub fn resume_thread(&mut self, ctx: usize) {
        let t = &mut self.regs.threads[ctx];
        assert_eq!(
            t.state,
            ThreadState::WaitingSync,
            "resume of non-waiting thread"
        );
        t.state = ThreadState::Running;
    }

    /// Current state of context `ctx`.
    pub fn thread_state(&self, ctx: usize) -> ThreadState {
        self.regs.threads[ctx].state
    }

    /// Mark context `ctx` for migration. The thread stops fetching;
    /// correct-path in-flight work drains through commit (wrong-path work
    /// is squashed by normal branch resolution), after which the cluster
    /// reports [`ClusterEvent::MigrationDrained`]. Returns `true` if the
    /// context is already drained (caller may detach immediately — no
    /// event will be emitted).
    ///
    /// Valid from `Running`, `WrongPath`, `WaitingSync` and `Done` (a
    /// parked or finished thread detaches trivially). `Draining` contexts
    /// cannot be held: they owe the runtime a sync report first.
    pub fn hold_for_migration(&mut self, ctx: usize) -> bool {
        let t = &mut self.regs.threads[ctx];
        assert!(
            matches!(
                t.state,
                ThreadState::Running
                    | ThreadState::WrongPath
                    | ThreadState::WaitingSync
                    | ThreadState::Done
            ),
            "cannot migrate a context in state {:?}",
            t.state
        );
        t.state = ThreadState::Migrating;
        t.fifo.is_empty()
    }

    /// Detach the software thread held at context `ctx` (state
    /// `Migrating`, fully drained), returning its architectural state and
    /// resetting the context to `Idle`. The wrong-path generator stays
    /// with the hardware context, like the branch predictor.
    pub fn detach_thread(&mut self, ctx: usize) -> DetachedThread {
        let t = &mut self.regs.threads[ctx];
        assert_eq!(
            t.state,
            ThreadState::Migrating,
            "detach requires a context held for migration"
        );
        assert!(t.fifo.is_empty(), "detach before in-flight drain");
        assert!(
            t.pending_sync.is_none(),
            "detach with an unreported sync operation"
        );
        debug_assert!(
            t.map.iter().all(Option::is_none),
            "rename map must be clear after a full drain"
        );
        t.state = ThreadState::Idle;
        t.redirect_until = 0;
        t.wp_pc = 0;
        DetachedThread {
            stream: t.stream.take(),
            pending: t.pending.take(),
            committed: std::mem::take(&mut t.committed),
        }
    }

    /// Attach a migrated thread to the idle context `ctx`, restoring its
    /// architectural state. `resume_as` is the state the thread held when
    /// it was detached, as tracked by the machine: `Running` (or
    /// `WrongPath`, which resumes as `Running` — its wrong path was
    /// squashed during the drain), `WaitingSync` (still parked; the
    /// runtime resumes it later) or `Done`.
    pub fn attach_migrated(&mut self, ctx: usize, d: DetachedThread, resume_as: ThreadState) {
        let t = &mut self.regs.threads[ctx];
        assert_eq!(t.state, ThreadState::Idle, "destination context busy");
        assert!(
            matches!(
                resume_as,
                ThreadState::Running | ThreadState::WaitingSync | ThreadState::Done
            ),
            "invalid resume state {resume_as:?}"
        );
        t.stream = d.stream;
        t.pending = d.pending;
        t.committed = d.committed;
        t.state = resume_as;
    }

    /// In-flight *load* count of context `ctx` (loads fetched but not yet
    /// completed) — the memory-boundedness signal sampled by scheduler
    /// snapshots at epoch boundaries.
    pub fn inflight_loads(&self, ctx: usize) -> usize {
        self.regs.threads[ctx]
            .fifo
            .iter()
            .filter(|&&s| {
                let e = &self.win.entries[s as usize];
                e.op == csmt_isa::OpClass::Load && e.state != EState::Done
            })
            .count()
    }

    /// Number of contexts currently making progress (not idle, parked or
    /// done) — used for the paper's Figure 6 thread-parallelism metric.
    pub fn running_threads(&self) -> usize {
        self.regs
            .threads
            .iter()
            .filter(|t| {
                matches!(
                    t.state,
                    ThreadState::Running
                        | ThreadState::WrongPath
                        | ThreadState::Draining
                        | ThreadState::Migrating
                )
            })
            .count()
    }

    /// True while any context still has work (in-flight or un-fetched).
    pub fn busy(&self) -> bool {
        self.regs
            .threads
            .iter()
            .any(|t| !matches!(t.state, ThreadState::Idle | ThreadState::Done))
    }

    /// Slot statistics accumulated so far.
    pub fn stats(&self) -> &SlotStats {
        &self.regs.stats
    }

    /// Instructions committed by context `ctx`.
    pub fn thread_committed(&self, ctx: usize) -> u64 {
        self.regs.threads[ctx].committed
    }

    /// Branch predictor statistics (lookups, mispredictions).
    pub fn bpred_stats(&self) -> (u64, u64) {
        self.bpred.stats()
    }

    /// In-flight instruction count of context `ctx` (diagnostics).
    pub fn inflight(&self, ctx: usize) -> usize {
        self.regs.threads[ctx].fifo.len()
    }

    /// Advance one cycle. `node` selects the chip in `mem` this cluster
    /// belongs to. Runtime events are appended to `events`.
    pub fn step(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        node: usize,
        events: &mut Vec<ClusterEvent>,
    ) {
        self.step_probed(now, mem, node, events, &mut NullProbe, 0);
    }

    /// [`step`](Cluster::step) with an observability probe attached.
    /// `cluster_id` is the machine-global cluster index stamped into the
    /// emitted events. All probe calls are gated on `P`'s wants-flags,
    /// so `step_probed::<NullProbe>` monomorphizes to exactly `step`.
    /// Returns the cycle's activity deltas.
    pub fn step_probed<P: Probe>(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        node: usize,
        events: &mut Vec<ClusterEvent>,
        probe: &mut P,
        cluster_id: u32,
    ) -> CycleActivity {
        let mut sink = SerialSink {
            mem,
            node,
            inner: probe,
        };
        self.phases(now, &mut sink, events, cluster_id)
    }

    /// The per-cycle phase driver, generic over the memory/probe sink:
    /// with [`SerialSink`] this is bit-for-bit the historical serial
    /// step; with [`TapeSink`] every memory intent and probe event is
    /// recorded instead (the parallel cluster phase).
    fn phases<S: MemPort + Probe>(
        &mut self,
        now: u64,
        sink: &mut S,
        events: &mut Vec<ClusterEvent>,
        cluster_id: u32,
    ) -> CycleActivity {
        self.regs.rename_stalled = false;
        // Host self-profiling: one timestamp per phase boundary, only
        // when the probe opted in (two `Instant` reads per phase
        // otherwise eliminated statically). Memory-hierarchy time is
        // reported separately by `MemorySystem` and nests inside the
        // issue (loads) and commit (stores) phases.
        let mut phase_t = S::WANTS_HOST_PHASES.then(std::time::Instant::now);
        self.win.complete_phase(
            &mut self.regs,
            &mut self.rename,
            &mut self.bpred,
            now,
            sink,
            cluster_id,
        );
        if let Some(t0) = phase_t {
            sink.host_phase(HostPhase::Complete, t0.elapsed().as_nanos() as u64);
            phase_t = Some(std::time::Instant::now());
        }
        let committed = commit::run(
            &self.cfg,
            &mut self.regs,
            &mut self.win,
            &mut self.rename,
            &mut self.lsq,
            now,
            events,
            sink,
            cluster_id,
        );
        if let Some(t0) = phase_t {
            sink.host_phase(HostPhase::Commit, t0.elapsed().as_nanos() as u64);
            phase_t = Some(std::time::Instant::now());
        }
        let (useful, wrong) = self.win.issue_phase(
            &self.regs,
            &mut self.fu,
            sink,
            now,
            self.cfg.issue_width,
            cluster_id,
        );
        if let Some(t0) = phase_t {
            sink.host_phase(HostPhase::Issue, t0.elapsed().as_nanos() as u64);
            phase_t = Some(std::time::Instant::now());
        }
        fetch::run(
            &self.cfg,
            &mut self.regs,
            &mut self.win,
            &mut self.rename,
            &mut self.bpred,
            now,
            sink,
            cluster_id,
        );
        if let Some(t0) = phase_t {
            sink.host_phase(HostPhase::Fetch, t0.elapsed().as_nanos() as u64);
            phase_t = Some(std::time::Instant::now());
        }
        regs::account(&self.cfg, &mut self.regs, &self.win, now, useful, wrong);
        if let Some(t0) = phase_t {
            sink.host_phase(HostPhase::Account, t0.elapsed().as_nanos() as u64);
        }
        if S::WANTS_POOL_STATS {
            self.emit_pool_stats(now, sink, cluster_id);
        }
        if S::WANTS_OCC_STATS {
            self.emit_occ_stats(now, sink, cluster_id);
        }
        CycleActivity {
            useful: useful as u32,
            committed,
        }
    }

    // ------------------------------------------------------------------
    // Parallel cluster phase: tape recording + ordered replay.
    // ------------------------------------------------------------------

    /// Advance one cycle against the intent tape instead of the memory
    /// system (the parallel cluster phase). Memory intents and probe
    /// events are recorded in emission order; the machine replays them
    /// in fixed (chip, cluster) order via
    /// [`replay_tape`](Cluster::replay_tape) on the coordinating thread.
    ///
    /// `wants` is the real probe's cluster-side wants-mask
    /// ([`Wants::of`]); it is runtime data (the thread-pool workers are
    /// monomorphic), but a fully-dark mask selects an instantiation
    /// whose event pushes compile away entirely.
    ///
    /// Only sound on cycles the machine pre-checked: no context in a
    /// state that can emit runtime events, and enough MSHR headroom
    /// that the serial outstanding-load gate would have passed for
    /// every load that could possibly issue.
    pub fn step_tape(&mut self, now: u64, cluster_id: u32, wants: Wants) {
        if wants.any() {
            self.step_tape_with::<true>(now, cluster_id, wants);
        } else {
            self.step_tape_with::<false>(now, cluster_id, wants);
        }
    }

    fn step_tape_with<const OBS: bool>(&mut self, now: u64, cluster_id: u32, wants: Wants) {
        let mut tape = std::mem::take(&mut self.tape);
        debug_assert!(tape.ops.is_empty(), "unreplayed tape from a prior cycle");
        {
            let IntentBuffer {
                ops,
                events,
                activity,
            } = &mut tape;
            let mut sink = TapeSink::<OBS> { ops, wants };
            *activity = self.phases(now, &mut sink, events, cluster_id);
        }
        self.tape = tape;
    }

    /// Serial commit phase for this cluster: drain the tape recorded by
    /// [`step_tape`](Cluster::step_tape) in emission order, performing
    /// the deferred memory accesses against the real memory system (so
    /// directory/MSHR/LRU/TLB state evolves in exactly the serial
    /// order) and forwarding buffered probe events. Returns the cycle's
    /// activity deltas.
    pub fn replay_tape<P: Probe>(
        &mut self,
        now: u64,
        mem: &mut MemorySystem,
        node: usize,
        probe: &mut P,
    ) -> CycleActivity {
        let mut tape = std::mem::take(&mut self.tape);
        assert!(
            tape.events.is_empty(),
            "parallel cluster phase emitted runtime events; the machine's \
             pre-check must route event cycles through the serial path"
        );
        for op in tape.ops.drain(..) {
            match op {
                TapeOp::Load {
                    slot,
                    seq,
                    addr,
                    lat,
                } => {
                    let out = mem.access_probed(node, addr, AccessKind::Read, now, probe);
                    self.win
                        .schedule_fill(slot, seq, out.complete_at.max(now + lat), now);
                }
                TapeOp::Store { addr } => {
                    let out = mem.access_probed(node, addr, AccessKind::Write, now, probe);
                    self.lsq.commit_pending(out.complete_at);
                }
                TapeOp::Fetch(e) => {
                    if P::WANTS_INST_EVENTS {
                        probe.fetch(e);
                    }
                }
                TapeOp::Rename(e) => {
                    if P::WANTS_INST_EVENTS {
                        probe.rename(e);
                    }
                }
                TapeOp::Issue(e) => {
                    if P::WANTS_INST_EVENTS {
                        probe.issue(e);
                    }
                }
                TapeOp::Writeback(e) => {
                    if P::WANTS_INST_EVENTS {
                        probe.writeback(e);
                    }
                }
                TapeOp::Commit(e) => {
                    if P::WANTS_INST_EVENTS {
                        probe.commit(e);
                    }
                }
                TapeOp::Squash(e) => {
                    if P::WANTS_INST_EVENTS {
                        probe.squash(e);
                    }
                }
                TapeOp::Pools(e) => {
                    if P::WANTS_POOL_STATS {
                        probe.rename_pools(e);
                    }
                }
                TapeOp::Occ(e) => {
                    if P::WANTS_OCC_STATS {
                        probe.window_occ(e);
                    }
                }
            }
        }
        let activity = tape.activity;
        self.tape = tape;
        activity
    }

    /// Whether the next step could emit a runtime event: any context is
    /// `Draining` or `Migrating` (the only states commit's detection
    /// loop reports on). A context entering either state does so in the
    /// fetch phase, strictly after commit's detection — so a cycle that
    /// starts with no such context provably emits nothing.
    pub fn may_emit_events(&self) -> bool {
        self.regs
            .threads
            .iter()
            .any(|t| matches!(t.state, ThreadState::Draining | ThreadState::Migrating))
    }

    /// Upper bound on this cluster's MSHR allocations in the cycle about
    /// to run — see `Window::mshr_demand_bound`.
    pub fn mshr_demand_bound(&self, now: u64) -> usize {
        self.win
            .mshr_demand_bound(now, self.cfg.issue_width, self.cfg.retire_width)
    }

    /// Snapshot register conservation at the cycle boundary: every
    /// allocated renaming register is held by exactly one valid window
    /// entry with a destination (fetch allocates before install; release
    /// returns it on both commit and squash).
    fn emit_pool_stats<P: Probe>(&self, now: u64, probe: &mut P, cluster_id: u32) {
        if !P::WANTS_POOL_STATS {
            return;
        }
        let (mut int_held, mut fp_held) = (0u32, 0u32);
        for e in &self.win.entries {
            if e.valid {
                if let Some(d) = e.dest {
                    if d.is_fp() {
                        fp_held += 1;
                    } else {
                        int_held += 1;
                    }
                }
            }
        }
        probe.rename_pools(RenamePoolEvent {
            cycle: now,
            cluster: cluster_id,
            int_free: self.rename.int_free as u32,
            fp_free: self.rename.fp_free as u32,
            int_held,
            fp_held,
        });
    }

    /// Snapshot window/ready-queue occupancy at the cycle boundary, for
    /// the `csmt-metrics` occupancy histograms. Reading two lengths is
    /// cheap, but the emission is still gated (default off) so existing
    /// probes' event streams stay bit-for-bit.
    fn emit_occ_stats<P: Probe>(&self, now: u64, probe: &mut P, cluster_id: u32) {
        if !P::WANTS_OCC_STATS {
            return;
        }
        probe.window_occ(WindowOccEvent {
            cycle: now,
            cluster: cluster_id,
            occupied: self.win.occupancy() as u32,
            ready: self.win.ready_len() as u32,
        });
    }

    // ------------------------------------------------------------------
    // Event-driven stall fast-forward.
    // ------------------------------------------------------------------

    /// The earliest future cycle at which a [`step`](Cluster::step) of this
    /// cluster could do anything beyond stalled-cycle accounting, or `now`
    /// if the next step is not a pure stall, or `u64::MAX` if no internal
    /// event is pending (the cluster is waiting on the memory system or is
    /// idle).
    ///
    /// A step is a pure stall — every phase provably a no-op except fetch's
    /// round-robin/rename-retry bookkeeping and the §4.1 slot accounting —
    /// exactly when all of the following hold:
    ///
    /// - the ready queue is empty (issue has nothing to select);
    /// - no completion-wheel bucket is due (complete pops nothing);
    /// - no thread's FIFO head is `Done` (commit retires nothing — the head
    ///   check spans *all* threads because commit retires a `Done` head
    ///   regardless of thread state);
    /// - no `Draining` or `Migrating` thread has an empty FIFO (the drain
    ///   would be reported this cycle);
    /// - fetch cannot install anything: no fetchable thread, or the window
    ///   is full, or **every** fetchable thread is `Running` with a pending
    ///   instruction whose destination register class has an empty rename
    ///   pool (rename-starved; `WrongPath` threads never qualify since the
    ///   wrong-path generator mutates on every fetch attempt).
    ///
    /// In that state nothing changes until the earliest of: the next
    /// completion-wheel bucket, a stalled thread's `redirect_until`, or a
    /// memory-system event (the caller folds that in).
    pub fn next_event_cycle(&self, now: u64) -> u64 {
        if !self.win.ready_is_empty() {
            return now;
        }
        let mut next = u64::MAX;
        let mut starved_fetch = true;
        let mut any_fetchable = false;
        for t in &self.regs.threads {
            if let Some(&head) = t.fifo.front() {
                if self.win.entries[head as usize].state == EState::Done {
                    return now;
                }
            }
            match t.state {
                ThreadState::Draining | ThreadState::Migrating if t.fifo.is_empty() => return now,
                ThreadState::Running | ThreadState::WrongPath => {
                    any_fetchable = true;
                    if t.fifo.is_empty() && t.redirect_until > now {
                        next = next.min(t.redirect_until);
                    }
                    starved_fetch &= t.state == ThreadState::Running
                        && t.pending.as_ref().is_some_and(|i| {
                            i.real_dest().is_some_and(|d| !self.rename.can_alloc(d))
                        });
                }
                _ => {}
            }
        }
        if any_fetchable && self.win.has_free() && !starved_fetch {
            return now;
        }
        if let Some(at) = self.win.next_completion_cycle() {
            next = next.min(at);
        }
        next
    }

    /// Hazard weights a stalled cycle will record, computed once per
    /// skipped span. `rename_stalled` is reconstructed hypothetically: in
    /// the skippable state fetch sets it exactly when the window has free
    /// slots and a fetchable thread exists (the rename-starved case — the
    /// only skippable state where fetch runs at all).
    pub fn stall_weights(&self, now: u64) -> [f64; 7] {
        let any_fetchable = self
            .regs
            .threads
            .iter()
            .any(|t| matches!(t.state, ThreadState::Running | ThreadState::WrongPath));
        let rename_stalled = self.win.has_free() && any_fetchable;
        regs::hazard_weights(rename_stalled, &self.regs.threads, &self.win, now)
    }

    /// Advance one *stalled* cycle: the bit-for-bit equivalent of
    /// [`step_probed`](Cluster::step_probed) in a state where
    /// [`next_event_cycle`](Cluster::next_event_cycle) returned a future
    /// cycle. Complete, commit and issue are skipped (proven no-ops);
    /// fetch runs for real (it owns the round-robin pointer advance and
    /// the pending-take/rename-fail/restore dance that sets
    /// `rename_stalled`); accounting replays the span's precomputed
    /// `weights`.
    pub fn stall_cycle_probed<P: Probe>(
        &mut self,
        now: u64,
        weights: &[f64; 7],
        probe: &mut P,
        cluster_id: u32,
    ) {
        self.regs.rename_stalled = false;
        let phase_t = P::WANTS_HOST_PHASES.then(std::time::Instant::now);
        fetch::run(
            &self.cfg,
            &mut self.regs,
            &mut self.win,
            &mut self.rename,
            &mut self.bpred,
            now,
            probe,
            cluster_id,
        );
        if let Some(t0) = phase_t {
            probe.host_phase(HostPhase::Fetch, t0.elapsed().as_nanos() as u64);
        }
        debug_assert_eq!(
            *weights,
            regs::hazard_weights(self.regs.rename_stalled, &self.regs.threads, &self.win, now),
            "hazard weights drifted across a skipped span at cycle {now}"
        );
        self.regs
            .stats
            .record_cycle(self.cfg.issue_width, 0, 0, weights);
        if P::WANTS_POOL_STATS {
            self.emit_pool_stats(now, probe, cluster_id);
        }
        if P::WANTS_OCC_STATS {
            self.emit_occ_stats(now, probe, cluster_id);
        }
    }
}
