//! Chip-level architecture configurations (paper Table 2).
//!
//! | Type | Clusters × IPC | Threads/cluster [chip] |
//! |------|----------------|------------------------|
//! | FA8  | 8 × 1          | 1 [8]                  |
//! | FA4  | 4 × 2          | 1 [4]                  |
//! | FA2  | 2 × 4          | 1 [2]                  |
//! | FA1  | 1 × 8          | 1 [1]                  |
//! | SMT4 | 4 × 2          | 2 [8]                  |
//! | SMT2 | 2 × 4          | 4 [8]                  |
//! | SMT1 | 1 × 8          | 8 [8]                  |
//!
//! `SMT8` is "a special case of the clustered SMT processor in that it is
//! the same as the FA8 processor" (§5.2) — we expose it as an alias.

use csmt_cpu::ClusterConfig;

/// The seven architectures of Table 2 (plus the SMT8 alias of FA8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Eight 1-issue single-threaded clusters.
    Fa8,
    /// Four 2-issue single-threaded clusters.
    Fa4,
    /// Two 4-issue single-threaded clusters.
    Fa2,
    /// One 8-issue conventional superscalar.
    Fa1,
    /// Eight 1-issue single-thread SMT clusters (alias of FA8).
    Smt8,
    /// Four 2-issue clusters, 2 threads each.
    Smt4,
    /// Two 4-issue clusters, 4 threads each — the paper's headline design.
    Smt2,
    /// One centralized 8-issue SMT, 8 threads.
    Smt1,
}

impl ArchKind {
    /// The five architectures compared in Figures 4 and 5.
    pub const FA_FIGURES: [ArchKind; 5] = [
        ArchKind::Fa8,
        ArchKind::Fa4,
        ArchKind::Fa2,
        ArchKind::Fa1,
        ArchKind::Smt2,
    ];

    /// The four architectures compared in Figures 7 and 8.
    pub const SMT_FIGURES: [ArchKind; 4] = [
        ArchKind::Smt8,
        ArchKind::Smt4,
        ArchKind::Smt2,
        ArchKind::Smt1,
    ];

    /// All distinct configurations.
    pub const ALL: [ArchKind; 8] = [
        ArchKind::Fa8,
        ArchKind::Fa4,
        ArchKind::Fa2,
        ArchKind::Fa1,
        ArchKind::Smt8,
        ArchKind::Smt4,
        ArchKind::Smt2,
        ArchKind::Smt1,
    ];

    /// Display name as used in the paper's charts.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::Fa8 => "FA8",
            ArchKind::Fa4 => "FA4",
            ArchKind::Fa2 => "FA2",
            ArchKind::Fa1 => "FA1",
            ArchKind::Smt8 => "SMT8",
            ArchKind::Smt4 => "SMT4",
            ArchKind::Smt2 => "SMT2",
            ArchKind::Smt1 => "SMT1",
        }
    }

    /// The chip configuration for this architecture.
    pub fn chip(self) -> ChipConfig {
        match self {
            ArchKind::Fa8 => ChipConfig::fixed_assignment(self, 8),
            ArchKind::Fa4 => ChipConfig::fixed_assignment(self, 4),
            ArchKind::Fa2 => ChipConfig::fixed_assignment(self, 2),
            ArchKind::Fa1 => ChipConfig::fixed_assignment(self, 1),
            ArchKind::Smt8 => ChipConfig::clustered_smt(self, 8),
            ArchKind::Smt4 => ChipConfig::clustered_smt(self, 4),
            ArchKind::Smt2 => ChipConfig::clustered_smt(self, 2),
            ArchKind::Smt1 => ChipConfig::clustered_smt(self, 1),
        }
    }
}

/// A chip: `clusters` identical SMT clusters sharing the chip's L1/L2
/// through the memory system, nothing else (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipConfig {
    /// Which Table 2 row this is.
    pub kind: ArchKind,
    /// Number of clusters on the chip.
    pub clusters: usize,
    /// Per-cluster budget.
    pub cluster: ClusterConfig,
}

/// Total chip issue width in every Table 2 configuration.
pub const CHIP_ISSUE_WIDTH: usize = 8;

impl ChipConfig {
    /// A fixed-assignment chip: `n` clusters of width `8/n`, one thread per
    /// cluster.
    pub fn fixed_assignment(kind: ArchKind, n: usize) -> Self {
        assert!(CHIP_ISSUE_WIDTH.is_multiple_of(n));
        let width = CHIP_ISSUE_WIDTH / n;
        ChipConfig {
            kind,
            clusters: n,
            cluster: ClusterConfig::for_width(width, 1),
        }
    }

    /// A clustered SMT chip: `n` clusters of width `8/n`, each supporting
    /// `8/n` threads, for 8 threads per chip.
    pub fn clustered_smt(kind: ArchKind, n: usize) -> Self {
        assert!(CHIP_ISSUE_WIDTH.is_multiple_of(n));
        let width = CHIP_ISSUE_WIDTH / n;
        ChipConfig {
            kind,
            clusters: n,
            cluster: ClusterConfig::for_width(width, width),
        }
    }

    /// Hardware thread contexts on the whole chip (Table 2's bracketed
    /// "[chip]" column).
    pub fn threads_per_chip(&self) -> usize {
        self.clusters * self.cluster.hw_threads
    }

    /// Issue slots per cycle across the chip.
    pub fn chip_issue_width(&self) -> usize {
        self.clusters * self.cluster.issue_width
    }

    /// The same chip with a different per-cluster fetch policy (for the
    /// Tullsen fetch-bottleneck ablation).
    pub fn with_fetch_policy(mut self, policy: csmt_cpu::FetchPolicy) -> Self {
        self.cluster = self.cluster.with_fetch_policy(policy);
        self
    }

    /// The same chip with a different branch predictor (predictor ablation).
    pub fn with_predictor(mut self, predictor: csmt_cpu::PredictorKind) -> Self {
        self.cluster = self.cluster.with_predictor(predictor);
        self
    }

    /// The same chip with an arbitrary per-cluster tweak.
    pub fn with_cluster(mut self, f: impl FnOnce(ClusterConfig) -> ClusterConfig) -> Self {
        self.cluster = f(self.cluster);
        self
    }

    /// Check this chip against the Table 2 partitioning rules: the
    /// cluster count matches the kind, issue slots sum to
    /// [`CHIP_ISSUE_WIDTH`], window/ROB entries and both renaming pools
    /// partition the chip-wide 128 exactly, the FU mix matches the row
    /// (6/4/4 for the 8-issue cluster, `w/w/w` otherwise), retirement
    /// bandwidth equals issue width (§3.1), and the thread assignment is
    /// total and disjoint (FA: exactly one context per cluster; SMT:
    /// `width` contexts per cluster so the chip totals 8).
    ///
    /// Policy knobs (`fetch_policy`, `predictor`, `store_buffer`) are
    /// deliberately unconstrained beyond non-emptiness — the ablation
    /// binaries vary them without leaving Table 2.
    ///
    /// Returns every violation found, not just the first.
    pub fn validate(&self) -> Result<(), Vec<ConfigError>> {
        let mut errs = Vec::new();
        let expected_clusters = match self.kind {
            ArchKind::Fa8 | ArchKind::Smt8 => 8,
            ArchKind::Fa4 | ArchKind::Smt4 => 4,
            ArchKind::Fa2 | ArchKind::Smt2 => 2,
            ArchKind::Fa1 | ArchKind::Smt1 => 1,
        };
        if self.clusters != expected_clusters {
            errs.push(ConfigError::ClusterCount {
                kind: self.kind,
                expected: expected_clusters,
                got: self.clusters,
            });
        }
        let c = &self.cluster;
        for (what, v) in [
            ("issue_width", c.issue_width),
            ("hw_threads", c.hw_threads),
            ("window_entries", c.window_entries),
            ("rename_int", c.rename_int),
            ("rename_fp", c.rename_fp),
            ("retire_width", c.retire_width),
            ("store_buffer", c.store_buffer),
        ] {
            if v == 0 {
                errs.push(ConfigError::ZeroResource { what });
            }
        }
        if self.chip_issue_width() != CHIP_ISSUE_WIDTH {
            errs.push(ConfigError::IssueSum {
                got: self.chip_issue_width(),
            });
        }
        let chip_window = CHIP_ISSUE_WIDTH * 16;
        if self.clusters * c.window_entries != chip_window {
            errs.push(ConfigError::WindowSum {
                expected: chip_window,
                got: self.clusters * c.window_entries,
            });
        }
        for (pool, per_cluster) in [("int", c.rename_int), ("fp", c.rename_fp)] {
            if self.clusters * per_cluster != chip_window {
                errs.push(ConfigError::RenameSum {
                    pool,
                    expected: chip_window,
                    got: self.clusters * per_cluster,
                });
            }
        }
        let expected_fus = if c.issue_width == 8 {
            [6, 4, 4]
        } else {
            [c.issue_width; 3]
        };
        if c.fu_counts != expected_fus {
            errs.push(ConfigError::FuCounts {
                expected: expected_fus,
                got: c.fu_counts,
            });
        }
        if c.retire_width != c.issue_width {
            errs.push(ConfigError::RetireWidth {
                expected: c.issue_width,
                got: c.retire_width,
            });
        }
        // Thread assignment: FA runs each software thread on its own
        // cluster (one context per cluster — more would overlap threads
        // on a partitioned budget); clustered SMT gives each cluster
        // `width` contexts so the chip totals 8. SMT8's single-context
        // 1-wide clusters satisfy both readings (it *is* FA8, §5.2).
        let expected_threads = match self.kind {
            ArchKind::Fa8 | ArchKind::Fa4 | ArchKind::Fa2 | ArchKind::Fa1 => 1,
            _ => c.issue_width,
        };
        if c.hw_threads != expected_threads {
            errs.push(ConfigError::ThreadAssignment {
                kind: self.kind,
                expected: expected_threads,
                got: c.hw_threads,
            });
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

/// One way a [`ChipConfig`] departs from the Table 2 partitioning,
/// reported by [`ChipConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The cluster count is not the one Table 2 gives for this kind.
    ClusterCount {
        /// Which row was claimed.
        kind: ArchKind,
        /// Table 2's cluster count for that row.
        expected: usize,
        /// The configured count.
        got: usize,
    },
    /// Chip issue slots don't sum to [`CHIP_ISSUE_WIDTH`].
    IssueSum {
        /// The configured `clusters × issue_width`.
        got: usize,
    },
    /// Window/ROB entries don't partition the chip-wide budget exactly.
    WindowSum {
        /// The chip-wide budget (128).
        expected: usize,
        /// The configured `clusters × window_entries`.
        got: usize,
    },
    /// A renaming pool doesn't partition the chip-wide budget exactly.
    RenameSum {
        /// Which pool (`"int"` or `"fp"`).
        pool: &'static str,
        /// The chip-wide budget (128).
        expected: usize,
        /// The configured `clusters × rename_*`.
        got: usize,
    },
    /// A per-cluster resource is zero-sized (the cluster could never
    /// dispatch or retire anything).
    ZeroResource {
        /// Which field.
        what: &'static str,
    },
    /// The FU mix differs from the Table 2 row for this issue width.
    FuCounts {
        /// Table 2's `[int, ld/st, fp]` unit counts.
        expected: [usize; 3],
        /// The configured counts.
        got: [usize; 3],
    },
    /// Retirement bandwidth must equal issue width (§3.1).
    RetireWidth {
        /// The cluster's issue width.
        expected: usize,
        /// The configured retire width.
        got: usize,
    },
    /// The thread assignment is not total and disjoint for this kind.
    ThreadAssignment {
        /// Which row was claimed.
        kind: ArchKind,
        /// Contexts per cluster that row requires.
        expected: usize,
        /// The configured contexts per cluster.
        got: usize,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ClusterCount {
                kind,
                expected,
                got,
            } => write!(
                f,
                "{} requires {expected} clusters, config has {got}",
                kind.name()
            ),
            ConfigError::IssueSum { got } => write!(
                f,
                "chip issue slots must sum to {CHIP_ISSUE_WIDTH}, config sums to {got}"
            ),
            ConfigError::WindowSum { expected, got } => write!(
                f,
                "window/ROB entries must partition the chip's {expected}, config sums to {got}"
            ),
            ConfigError::RenameSum {
                pool,
                expected,
                got,
            } => write!(
                f,
                "{pool} renaming registers must partition the chip's {expected}, config sums to {got}"
            ),
            ConfigError::ZeroResource { what } => {
                write!(f, "per-cluster {what} is zero")
            }
            ConfigError::FuCounts { expected, got } => write!(
                f,
                "FU mix must be {expected:?} for this width, config has {got:?}"
            ),
            ConfigError::RetireWidth { expected, got } => write!(
                f,
                "retire width must equal issue width {expected}, config has {got}"
            ),
            ConfigError::ThreadAssignment {
                kind,
                expected,
                got,
            } => write!(
                f,
                "{} requires {expected} context(s) per cluster (total, disjoint), config has {got}",
                kind.name()
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    /// One Table 2 row: (kind, clusters, ipc/cluster, threads/chip,
    /// FUs/cluster, IQ+ROB/cluster, rename regs/cluster).
    type Table2Row = (ArchKind, usize, usize, usize, [usize; 3], usize, usize);

    /// Table 2, every row and column.
    #[test]
    fn table2_chip_rows() {
        let rows: [Table2Row; 7] = [
            // kind, clusters, ipc/cluster, threads/chip, FUs/cluster, IQ+ROB/cluster, rename/cluster
            (ArchKind::Fa8, 8, 1, 8, [1, 1, 1], 16, 16),
            (ArchKind::Fa4, 4, 2, 4, [2, 2, 2], 32, 32),
            (ArchKind::Fa2, 2, 4, 2, [4, 4, 4], 64, 64),
            (ArchKind::Fa1, 1, 8, 1, [6, 4, 4], 128, 128),
            (ArchKind::Smt4, 4, 2, 8, [2, 2, 2], 32, 32),
            (ArchKind::Smt2, 2, 4, 8, [4, 4, 4], 64, 64),
            (ArchKind::Smt1, 1, 8, 8, [6, 4, 4], 128, 128),
        ];
        for (kind, clusters, ipc, threads, fus, iq, ren) in rows {
            let c = kind.chip();
            assert_eq!(c.clusters, clusters, "{kind:?}");
            assert_eq!(c.cluster.issue_width, ipc, "{kind:?}");
            assert_eq!(c.threads_per_chip(), threads, "{kind:?}");
            assert_eq!(c.cluster.fu_counts, fus, "{kind:?}");
            assert_eq!(c.cluster.window_entries, iq, "{kind:?}");
            assert_eq!(c.cluster.rename_int, ren, "{kind:?}");
            assert_eq!(c.cluster.rename_fp, ren, "{kind:?}");
        }
    }

    #[test]
    fn smt8_is_fa8_in_hardware() {
        let a = ArchKind::Smt8.chip();
        let b = ArchKind::Fa8.chip();
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.cluster, b.cluster);
    }

    #[test]
    fn every_chip_issues_eight_wide() {
        for kind in ArchKind::ALL {
            assert_eq!(kind.chip().chip_issue_width(), 8, "{kind:?}");
        }
    }

    #[test]
    fn chip_window_totals_128_everywhere() {
        for kind in ArchKind::ALL {
            let c = kind.chip();
            assert_eq!(c.clusters * c.cluster.window_entries, 128, "{kind:?}");
        }
    }

    #[test]
    fn figure_sets_are_subsets_of_all() {
        for k in ArchKind::FA_FIGURES.iter().chain(&ArchKind::SMT_FIGURES) {
            assert!(ArchKind::ALL.contains(k));
        }
    }

    #[test]
    fn validate_accepts_every_table2_constructor() {
        for kind in ArchKind::ALL {
            assert_eq!(kind.chip().validate(), Ok(()), "{kind:?}");
        }
    }

    #[test]
    fn validate_accepts_policy_ablations() {
        let c = ArchKind::Smt2
            .chip()
            .with_fetch_policy(csmt_cpu::FetchPolicy::ICount)
            .with_cluster(|c| c.with_store_buffer(1));
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_overlapping_fa_thread_assignment() {
        // Two contexts on an FA cluster would put two software threads on
        // one partitioned budget — the assignment is no longer disjoint.
        let bad = ArchKind::Fa4.chip().with_cluster(|mut c| {
            c.hw_threads = 2;
            c
        });
        let errs = bad.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ConfigError::ThreadAssignment {
                kind: ArchKind::Fa4,
                expected: 1,
                got: 2,
            }
        )));
    }

    #[test]
    fn validate_rejects_budget_sums_off_the_8_wide_totals() {
        // Halve the per-cluster window: the chip no longer partitions 128.
        let bad = ArchKind::Smt2.chip().with_cluster(|mut c| {
            c.window_entries = 32;
            c
        });
        let errs = bad.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ConfigError::WindowSum { got: 64, .. })));

        // Wrong cluster count for the kind: both the count and the issue
        // sum are off.
        let bad = ChipConfig {
            kind: ArchKind::Smt2,
            clusters: 3,
            cluster: ClusterConfig::for_width(4, 4),
        };
        let errs = bad.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ConfigError::ClusterCount {
                expected: 2,
                got: 3,
                ..
            }
        )));
        assert!(errs
            .iter()
            .any(|e| matches!(e, ConfigError::IssueSum { got: 12 })));
    }

    #[test]
    fn validate_rejects_zero_size_rename_pools() {
        let bad = ArchKind::Fa2.chip().with_cluster(|mut c| {
            c.rename_fp = 0;
            c
        });
        let errs = bad.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ConfigError::ZeroResource { what: "rename_fp" })));
        assert!(errs.iter().any(|e| matches!(
            e,
            ConfigError::RenameSum {
                pool: "fp",
                got: 0,
                ..
            }
        )));
    }

    #[test]
    fn validate_rejects_wrong_fu_mix_and_retire_width() {
        let bad = ArchKind::Smt1.chip().with_cluster(|mut c| {
            c.fu_counts = [8, 8, 8];
            c.retire_width = 4;
            c
        });
        let errs = bad.validate().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            ConfigError::FuCounts {
                expected: [6, 4, 4],
                got: [8, 8, 8],
            }
        )));
        assert!(errs.iter().any(|e| matches!(
            e,
            ConfigError::RetireWidth {
                expected: 8,
                got: 4,
            }
        )));
    }

    #[test]
    fn config_errors_render_readably() {
        let bad = ArchKind::Fa8.chip().with_cluster(|mut c| {
            c.rename_int = 0;
            c
        });
        let errs = bad.validate().unwrap_err();
        let text: Vec<String> = errs.iter().map(ToString::to_string).collect();
        assert!(
            text.iter().any(|s| s.contains("rename_int is zero")),
            "{text:?}"
        );
    }
}
