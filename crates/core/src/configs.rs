//! Chip-level architecture configurations (paper Table 2).
//!
//! | Type | Clusters × IPC | Threads/cluster [chip] |
//! |------|----------------|------------------------|
//! | FA8  | 8 × 1          | 1 [8]                  |
//! | FA4  | 4 × 2          | 1 [4]                  |
//! | FA2  | 2 × 4          | 1 [2]                  |
//! | FA1  | 1 × 8          | 1 [1]                  |
//! | SMT4 | 4 × 2          | 2 [8]                  |
//! | SMT2 | 2 × 4          | 4 [8]                  |
//! | SMT1 | 1 × 8          | 8 [8]                  |
//!
//! `SMT8` is "a special case of the clustered SMT processor in that it is
//! the same as the FA8 processor" (§5.2) — we expose it as an alias.

use csmt_cpu::ClusterConfig;

/// The seven architectures of Table 2 (plus the SMT8 alias of FA8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchKind {
    /// Eight 1-issue single-threaded clusters.
    Fa8,
    /// Four 2-issue single-threaded clusters.
    Fa4,
    /// Two 4-issue single-threaded clusters.
    Fa2,
    /// One 8-issue conventional superscalar.
    Fa1,
    /// Eight 1-issue single-thread SMT clusters (alias of FA8).
    Smt8,
    /// Four 2-issue clusters, 2 threads each.
    Smt4,
    /// Two 4-issue clusters, 4 threads each — the paper's headline design.
    Smt2,
    /// One centralized 8-issue SMT, 8 threads.
    Smt1,
}

impl ArchKind {
    /// The five architectures compared in Figures 4 and 5.
    pub const FA_FIGURES: [ArchKind; 5] = [
        ArchKind::Fa8,
        ArchKind::Fa4,
        ArchKind::Fa2,
        ArchKind::Fa1,
        ArchKind::Smt2,
    ];

    /// The four architectures compared in Figures 7 and 8.
    pub const SMT_FIGURES: [ArchKind; 4] = [
        ArchKind::Smt8,
        ArchKind::Smt4,
        ArchKind::Smt2,
        ArchKind::Smt1,
    ];

    /// All distinct configurations.
    pub const ALL: [ArchKind; 8] = [
        ArchKind::Fa8,
        ArchKind::Fa4,
        ArchKind::Fa2,
        ArchKind::Fa1,
        ArchKind::Smt8,
        ArchKind::Smt4,
        ArchKind::Smt2,
        ArchKind::Smt1,
    ];

    /// Display name as used in the paper's charts.
    pub fn name(self) -> &'static str {
        match self {
            ArchKind::Fa8 => "FA8",
            ArchKind::Fa4 => "FA4",
            ArchKind::Fa2 => "FA2",
            ArchKind::Fa1 => "FA1",
            ArchKind::Smt8 => "SMT8",
            ArchKind::Smt4 => "SMT4",
            ArchKind::Smt2 => "SMT2",
            ArchKind::Smt1 => "SMT1",
        }
    }

    /// The chip configuration for this architecture.
    pub fn chip(self) -> ChipConfig {
        match self {
            ArchKind::Fa8 => ChipConfig::fixed_assignment(self, 8),
            ArchKind::Fa4 => ChipConfig::fixed_assignment(self, 4),
            ArchKind::Fa2 => ChipConfig::fixed_assignment(self, 2),
            ArchKind::Fa1 => ChipConfig::fixed_assignment(self, 1),
            ArchKind::Smt8 => ChipConfig::clustered_smt(self, 8),
            ArchKind::Smt4 => ChipConfig::clustered_smt(self, 4),
            ArchKind::Smt2 => ChipConfig::clustered_smt(self, 2),
            ArchKind::Smt1 => ChipConfig::clustered_smt(self, 1),
        }
    }
}

/// A chip: `clusters` identical SMT clusters sharing the chip's L1/L2
/// through the memory system, nothing else (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChipConfig {
    /// Which Table 2 row this is.
    pub kind: ArchKind,
    /// Number of clusters on the chip.
    pub clusters: usize,
    /// Per-cluster budget.
    pub cluster: ClusterConfig,
}

/// Total chip issue width in every Table 2 configuration.
pub const CHIP_ISSUE_WIDTH: usize = 8;

impl ChipConfig {
    /// A fixed-assignment chip: `n` clusters of width `8/n`, one thread per
    /// cluster.
    pub fn fixed_assignment(kind: ArchKind, n: usize) -> Self {
        assert!(CHIP_ISSUE_WIDTH.is_multiple_of(n));
        let width = CHIP_ISSUE_WIDTH / n;
        ChipConfig {
            kind,
            clusters: n,
            cluster: ClusterConfig::for_width(width, 1),
        }
    }

    /// A clustered SMT chip: `n` clusters of width `8/n`, each supporting
    /// `8/n` threads, for 8 threads per chip.
    pub fn clustered_smt(kind: ArchKind, n: usize) -> Self {
        assert!(CHIP_ISSUE_WIDTH.is_multiple_of(n));
        let width = CHIP_ISSUE_WIDTH / n;
        ChipConfig {
            kind,
            clusters: n,
            cluster: ClusterConfig::for_width(width, width),
        }
    }

    /// Hardware thread contexts on the whole chip (Table 2's bracketed
    /// "[chip]" column).
    pub fn threads_per_chip(&self) -> usize {
        self.clusters * self.cluster.hw_threads
    }

    /// Issue slots per cycle across the chip.
    pub fn chip_issue_width(&self) -> usize {
        self.clusters * self.cluster.issue_width
    }

    /// The same chip with a different per-cluster fetch policy (for the
    /// Tullsen fetch-bottleneck ablation).
    pub fn with_fetch_policy(mut self, policy: csmt_cpu::FetchPolicy) -> Self {
        self.cluster = self.cluster.with_fetch_policy(policy);
        self
    }

    /// The same chip with a different branch predictor (predictor ablation).
    pub fn with_predictor(mut self, predictor: csmt_cpu::PredictorKind) -> Self {
        self.cluster = self.cluster.with_predictor(predictor);
        self
    }

    /// The same chip with an arbitrary per-cluster tweak.
    pub fn with_cluster(mut self, f: impl FnOnce(ClusterConfig) -> ClusterConfig) -> Self {
        self.cluster = f(self.cluster);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One Table 2 row: (kind, clusters, ipc/cluster, threads/chip,
    /// FUs/cluster, IQ+ROB/cluster, rename regs/cluster).
    type Table2Row = (ArchKind, usize, usize, usize, [usize; 3], usize, usize);

    /// Table 2, every row and column.
    #[test]
    fn table2_chip_rows() {
        let rows: [Table2Row; 7] = [
            // kind, clusters, ipc/cluster, threads/chip, FUs/cluster, IQ+ROB/cluster, rename/cluster
            (ArchKind::Fa8, 8, 1, 8, [1, 1, 1], 16, 16),
            (ArchKind::Fa4, 4, 2, 4, [2, 2, 2], 32, 32),
            (ArchKind::Fa2, 2, 4, 2, [4, 4, 4], 64, 64),
            (ArchKind::Fa1, 1, 8, 1, [6, 4, 4], 128, 128),
            (ArchKind::Smt4, 4, 2, 8, [2, 2, 2], 32, 32),
            (ArchKind::Smt2, 2, 4, 8, [4, 4, 4], 64, 64),
            (ArchKind::Smt1, 1, 8, 8, [6, 4, 4], 128, 128),
        ];
        for (kind, clusters, ipc, threads, fus, iq, ren) in rows {
            let c = kind.chip();
            assert_eq!(c.clusters, clusters, "{kind:?}");
            assert_eq!(c.cluster.issue_width, ipc, "{kind:?}");
            assert_eq!(c.threads_per_chip(), threads, "{kind:?}");
            assert_eq!(c.cluster.fu_counts, fus, "{kind:?}");
            assert_eq!(c.cluster.window_entries, iq, "{kind:?}");
            assert_eq!(c.cluster.rename_int, ren, "{kind:?}");
            assert_eq!(c.cluster.rename_fp, ren, "{kind:?}");
        }
    }

    #[test]
    fn smt8_is_fa8_in_hardware() {
        let a = ArchKind::Smt8.chip();
        let b = ArchKind::Fa8.chip();
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.cluster, b.cluster);
    }

    #[test]
    fn every_chip_issues_eight_wide() {
        for kind in ArchKind::ALL {
            assert_eq!(kind.chip().chip_issue_width(), 8, "{kind:?}");
        }
    }

    #[test]
    fn chip_window_totals_128_everywhere() {
        for kind in ArchKind::ALL {
            let c = kind.chip();
            assert_eq!(c.clusters * c.cluster.window_entries, 128, "{kind:?}");
        }
    }

    #[test]
    fn figure_sets_are_subsets_of_all() {
        for k in ArchKind::FA_FIGURES.iter().chain(&ArchKind::SMT_FIGURES) {
            assert!(ArchKind::ALL.contains(k));
        }
    }
}
