//! Run results: everything a figure needs from one simulation.

use csmt_cpu::{Hazard, SlotStats};
use csmt_mem::MemStats;
use serde::Serialize;

/// The outcome of simulating one (architecture, machine size, application)
/// combination.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Architecture name ("FA8" … "SMT1").
    pub arch: String,
    /// Number of chips (1 = low-end, 4 = high-end).
    pub chips: usize,
    /// Software threads created.
    pub threads: usize,
    /// Execution time in cycles — the paper's y-axis.
    pub cycles: u64,
    /// Issue-slot statistics merged over all clusters.
    pub slots: SlotStats,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Average number of threads making progress per cycle (Fig 6 x-axis).
    pub avg_running_threads: f64,
    /// Branch predictor lookups.
    pub branch_lookups: u64,
    /// Branch mispredictions.
    pub branch_mispredicts: u64,
    /// Completed barrier episodes.
    pub barrier_episodes: u64,
    /// Lock acquisitions granted.
    pub lock_acquisitions: u64,
    /// Thread migrations completed by a dynamic scheduling policy. Omitted
    /// from JSON when zero so static-policy output stays byte-identical to
    /// the pre-scheduler golden documents.
    #[serde(skip_serializing_if = "is_zero")]
    pub migrations: u64,
    /// Total cycles threads spent between being marked for migration and
    /// resuming at their destination (drain + transit + destination wait).
    #[serde(skip_serializing_if = "is_zero")]
    pub migration_wait_cycles: u64,
}

/// Serde gate for the migration counters: skip when zero. (`pub` because
/// rustc's liveness analysis ignores references from derived impls.)
#[doc(hidden)]
#[allow(clippy::trivially_copy_pass_by_ref)]
pub fn is_zero(v: &u64) -> bool {
    *v == 0
}

impl RunResult {
    /// Useful instructions committed per cycle across the machine.
    pub fn ipc(&self) -> f64 {
        self.slots.ipc()
    }

    /// Average ILP per running thread (Fig 6 y-axis): committed instructions
    /// divided by thread-cycles of progress.
    pub fn ilp_per_thread(&self) -> f64 {
        let thread_cycles = self.avg_running_threads * self.cycles as f64;
        if thread_cycles == 0.0 {
            0.0
        } else {
            self.slots.committed as f64 / thread_cycles
        }
    }

    /// Slot breakdown as fractions `[useful, other, structural, memory,
    /// data, control, sync, fetch]`.
    pub fn breakdown(&self) -> [f64; 8] {
        self.slots.breakdown()
    }

    /// Fraction of slots in one hazard class.
    pub fn hazard_fraction(&self, h: Hazard) -> f64 {
        if self.slots.slots == 0 {
            0.0
        } else {
            self.slots.wasted[h.index()] / self.slots.slots as f64
        }
    }

    /// Execution time normalized to a baseline run (the paper normalizes
    /// each application's bars to FA8 or SMT8 = 100).
    pub fn normalized_to(&self, baseline: &RunResult) -> f64 {
        100.0 * self.cycles as f64 / baseline.cycles as f64
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branch_lookups == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branch_lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(cycles: u64, committed: u64) -> RunResult {
        let mut slots = SlotStats {
            committed,
            ..Default::default()
        };
        for _ in 0..cycles {
            slots.record_cycle(8, 0, 0, &[0.0; 7]);
        }
        slots.cycles = cycles;
        RunResult {
            arch: "FA8".into(),
            chips: 1,
            threads: 8,
            cycles,
            slots,
            mem: MemStats::default(),
            avg_running_threads: 4.0,
            branch_lookups: 100,
            branch_mispredicts: 7,
            barrier_episodes: 0,
            lock_acquisitions: 0,
            migrations: 0,
            migration_wait_cycles: 0,
        }
    }

    #[test]
    fn migration_counters_are_omitted_when_zero() {
        // Keeps static-policy JSON byte-identical to pre-scheduler goldens.
        assert!(is_zero(&0) && !is_zero(&1));
        let mut r = dummy(10, 1);
        let j = serde_json::to_string(&r).unwrap();
        assert!(
            !j.contains("migrations"),
            "zero counters must be skipped: {j}"
        );
        r.migrations = 3;
        r.migration_wait_cycles = 412;
        let j = serde_json::to_string(&r).unwrap();
        assert!(j.contains(r#""migrations":3"#));
        assert!(j.contains(r#""migration_wait_cycles":412"#));
    }

    #[test]
    fn normalization_is_percent_of_baseline() {
        let base = dummy(1000, 100);
        let faster = dummy(870, 100);
        assert!((faster.normalized_to(&base) - 87.0).abs() < 1e-9);
        assert!((base.normalized_to(&base) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn ilp_per_thread_divides_by_thread_cycles() {
        let r = dummy(1000, 8000);
        // 8000 committed over 4.0 * 1000 thread-cycles = 2.0 ILP/thread.
        assert!((r.ilp_per_thread() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mispredict_rate() {
        let r = dummy(10, 1);
        assert!((r.mispredict_rate() - 0.07).abs() < 1e-9);
    }

    #[test]
    fn serializes_to_json_with_full_slot_and_mem_stats() {
        let mut r = dummy(10, 1);
        r.mem.l1_hits = 42;
        r.mem.accesses = 50;
        r.slots.wasted[Hazard::Sync.index()] = 3.5;
        let j = serde_json::to_string(&r).unwrap();
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["arch"], "FA8");
        assert_eq!(v["cycles"].as_u64(), Some(10));
        // No more #[serde(skip)] holes: the nested statistics round-trip.
        assert_eq!(v["slots"]["slots"].as_u64(), Some(80));
        assert_eq!(v["slots"]["committed"].as_u64(), Some(1));
        assert_eq!(
            v["slots"]["wasted"][Hazard::Sync.index()].as_f64(),
            Some(3.5)
        );
        assert_eq!(v["mem"]["l1_hits"].as_u64(), Some(42));
        assert_eq!(v["mem"]["accesses"].as_u64(), Some(50));
    }

    #[test]
    fn golden_json_shape_is_stable() {
        // Field order is declaration order (the serializer keeps insertion
        // order), so the prefix of the document is a stable contract for
        // external consumers.
        let r = dummy(2, 1);
        let j = serde_json::to_string(&r).unwrap();
        assert!(
            j.starts_with(r#"{"arch":"FA8","chips":1,"threads":8,"cycles":2,"slots":{"useful":"#),
            "unexpected JSON prefix: {}",
            &j[..j.len().min(100)]
        );
        assert!(j.contains(r#""mem":{"l1_hits":0,"#));
    }
}
