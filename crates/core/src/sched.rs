//! The thread-to-cluster scheduling seam.
//!
//! The paper only ever compares *static* partitionings of threads onto
//! clusters (SMTn vs FAn, §3.3). This module makes placement a first-class,
//! pluggable policy instead: a [`ThreadScheduler`] decides the initial
//! thread→context mapping and may request migrations at deterministic
//! *epochs* — barrier releases / thread exits, a fixed cycle quantum, or
//! both — never wall clock, so every policy is bit-for-bit reproducible.
//!
//! Three policies ship:
//!
//! * [`StaticRoundRobin`] — the paper's behavior (the default): round-robin
//!   placement at attach, no migrations. Pinned against the golden
//!   determinism digests.
//! * [`BarrierRebalance`] — at barrier releases and thread exits, even out
//!   the number of *live* threads per cluster: work freed by exited
//!   threads is redistributed instead of leaving clusters running empty.
//! * [`HazardPairing`] — SYNPA-style (arXiv 2310.12786): maintain an EWMA
//!   hazard signature (IPC, memory-boundedness) per thread and periodically
//!   swap threads so memory-bound and compute-bound threads co-locate,
//!   instead of memory-bound threads piling onto one cluster.
//!
//! Migration is drain-based (§4.1-safe): the machine parks the context
//! (state `Migrating`, charged to the sync hazard like other parked
//! states), lets in-flight work drain through commit, detaches the
//! architectural state, and re-attaches it [`MIGRATION_COST`] cycles later.

use crate::machine::{round_robin_placement, Placement};
use crate::runtime::ThreadId;
use csmt_cpu::ThreadState;

/// Modeled cost of one thread migration, in cycles, between a context's
/// drain completing and the thread becoming runnable at its destination —
/// covering the OS-visible trap, the architectural-register copy, and cold
/// starts the destination will absorb. Charged on top of the drain time
/// (which the §4.1 accounting already books as sync slots).
pub const MIGRATION_COST: u64 = 100;

/// Shape of the machine a scheduler places threads onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of chips.
    pub chips: usize,
    /// Clusters per chip.
    pub clusters_per_chip: usize,
    /// Hardware contexts per cluster.
    pub ctx_per_cluster: usize,
}

impl Topology {
    /// Machine-global cluster count.
    pub fn n_clusters(&self) -> usize {
        self.chips * self.clusters_per_chip
    }

    /// Hardware contexts per chip.
    pub fn threads_per_chip(&self) -> usize {
        self.clusters_per_chip * self.ctx_per_cluster
    }

    /// Total hardware contexts in the machine.
    pub fn capacity(&self) -> usize {
        self.chips * self.threads_per_chip()
    }

    /// Machine-global cluster index of a placement (chip-major, matching
    /// the cluster ids stamped into probe events).
    pub fn global_cluster(&self, p: Placement) -> usize {
        p.chip * self.clusters_per_chip + p.cluster
    }

    /// Placement for a context of a machine-global cluster index.
    pub fn placement(&self, global_cluster: usize, ctx: usize) -> Placement {
        Placement {
            chip: global_cluster / self.clusters_per_chip,
            cluster: global_cluster % self.clusters_per_chip,
            ctx,
        }
    }
}

/// What the machine knows about one software thread at an epoch boundary.
#[derive(Debug, Clone, Copy)]
pub struct ThreadObs {
    /// Software thread id.
    pub tid: ThreadId,
    /// Where the thread currently lives; `None` while it is in transit
    /// between contexts.
    pub placement: Option<Placement>,
    /// Hardware state of its context (`Migrating` while in transit).
    pub state: ThreadState,
    /// Instructions committed so far (cumulative across migrations).
    pub committed: u64,
    /// In-flight instructions in its context's FIFO.
    pub inflight: usize,
    /// In-flight *loads* — the memory-boundedness signal.
    pub inflight_loads: usize,
    /// Program group (multiprogrammed mixes; 0 for one application).
    pub group: usize,
    /// True once the thread has exited.
    pub done: bool,
}

/// Deterministic snapshot handed to [`ThreadScheduler::observe`] and
/// [`ThreadScheduler::rebalance`] at each epoch. Built only at epoch
/// boundaries, so its cost is off the per-cycle path.
#[derive(Debug, Clone)]
pub struct SchedSnapshot {
    /// Cycle the snapshot was taken.
    pub cycle: u64,
    /// One observation per software thread, indexed by thread id.
    pub threads: Vec<ThreadObs>,
    /// Per machine-global cluster: contexts currently making progress.
    pub cluster_running: Vec<usize>,
    /// Machine shape.
    pub topo: Topology,
}

/// One requested thread move. The machine validates requests (in-range,
/// destination not already promised, source thread in a migratable state)
/// and silently drops invalid ones — policies are advisory, the machine
/// enforces feasibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Thread to move.
    pub tid: ThreadId,
    /// Destination context.
    pub to: Placement,
}

/// A scheduler configuration the machine refuses to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedConfigError {
    /// A dynamic (migrating) policy on a fixed-assignment architecture:
    /// Table 2 pins FA thread assignment by construction (one context per
    /// cluster), so migration would change the modeled hardware contract.
    DynamicOnFixedAssignment,
    /// A rebalance quantum of zero cycles: the epoch check would fire
    /// every cycle and never terminate a span.
    ZeroQuantum,
}

impl std::fmt::Display for SchedConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedConfigError::DynamicOnFixedAssignment => write!(
                f,
                "dynamic scheduling policy on a fixed-assignment architecture \
                 (FA thread assignment is pinned by construction)"
            ),
            SchedConfigError::ZeroQuantum => {
                write!(f, "rebalance quantum must be at least 1 cycle")
            }
        }
    }
}

impl std::error::Error for SchedConfigError {}

/// A thread-to-cluster allocation policy.
///
/// The machine calls [`initial_placement`](ThreadScheduler::initial_placement)
/// once at attach, then — only for dynamic policies —
/// [`observe`](ThreadScheduler::observe) and
/// [`rebalance`](ThreadScheduler::rebalance) at every epoch boundary. A
/// policy is *dynamic* iff it reports a [`quantum`](ThreadScheduler::quantum)
/// or wants [`barrier epochs`](ThreadScheduler::wants_barrier_epochs); a
/// static policy costs the machine loop nothing after attach.
pub trait ThreadScheduler {
    /// Short policy name (the `CSMT_SCHED` / `--sched` spelling).
    fn name(&self) -> &'static str;

    /// Initial placement of `n_threads` software threads. Must return one
    /// distinct, in-range placement per thread. Defaults to the paper's
    /// round-robin.
    fn initial_placement(&mut self, n_threads: usize, topo: &Topology) -> Vec<Placement> {
        (0..n_threads)
            .map(|tid| round_robin_placement(tid, topo.clusters_per_chip, topo.threads_per_chip()))
            .collect()
    }

    /// Fixed epoch length in cycles, or `None` for no cycle-driven epochs.
    fn quantum(&self) -> Option<u64> {
        None
    }

    /// Whether barrier releases and thread exits are epoch boundaries.
    fn wants_barrier_epochs(&self) -> bool {
        false
    }

    /// Whether this policy migrates threads at runtime (either epoch
    /// source). The machine skips all epoch machinery — and stays
    /// bit-for-bit on the golden digests — when this is `false`.
    fn is_dynamic(&self) -> bool {
        self.quantum().is_some() || self.wants_barrier_epochs()
    }

    /// Digest per-thread behavior at an epoch boundary (before
    /// [`rebalance`](ThreadScheduler::rebalance) is consulted).
    fn observe(&mut self, _cycle: u64, _snap: &SchedSnapshot) {}

    /// Request migrations for this epoch. Invalid requests are dropped by
    /// the machine; a swap is expressed as two migrations into each
    /// other's contexts.
    fn rebalance(&mut self, _cycle: u64, _snap: &SchedSnapshot) -> Vec<Migration> {
        Vec::new()
    }
}

/// Look up a policy by its `CSMT_SCHED` / `--sched` name.
pub fn by_name(name: &str) -> Option<Box<dyn ThreadScheduler + Send>> {
    match name {
        "static" => Some(Box::new(StaticRoundRobin)),
        "barrier" => Some(Box::new(BarrierRebalance::default())),
        "hazard_pairing" => Some(Box::new(HazardPairing::default())),
        _ => None,
    }
}

/// Names accepted by [`by_name`], for help/usage text.
pub const POLICY_NAMES: [&str; 3] = ["static", "barrier", "hazard_pairing"];

/// A `CSMT_SCHED` / `--sched` name [`by_name`] does not recognize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownPolicy {
    /// The spelling that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown scheduling policy {:?} (valid policies: {})",
            self.name,
            POLICY_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// Resolve the `CSMT_SCHED` environment selection without building a
/// machine: `Ok(None)` when the variable is unset, `Ok(Some(policy))`
/// for a valid name, `Err` for a typo. Binaries call this before
/// starting a sweep so a misspelled policy produces a clean message and
/// exit code 2 (the `CSMT_VERIFY` convention) instead of a panic
/// mid-run.
///
/// # Errors
/// [`UnknownPolicy`] when `CSMT_SCHED` is set to a name outside
/// [`POLICY_NAMES`].
pub fn policy_from_env() -> Result<Option<Box<dyn ThreadScheduler + Send>>, UnknownPolicy> {
    let Some(name) = std::env::var_os("CSMT_SCHED") else {
        return Ok(None);
    };
    let name = name.to_string_lossy().into_owned();
    by_name(&name).map(Some).ok_or(UnknownPolicy { name })
}

/// The canonical name of the policy `CSMT_SCHED` selects: `"static"`
/// when the variable is unset, otherwise the policy's own
/// [`name`](ThreadScheduler::name). The sweep engine keys its result
/// cache on this, so two processes with the same environment agree on
/// the key without constructing a machine.
///
/// # Errors
/// [`UnknownPolicy`] when `CSMT_SCHED` is set to a name outside
/// [`POLICY_NAMES`].
pub fn policy_name_from_env() -> Result<&'static str, UnknownPolicy> {
    Ok(policy_from_env()?.map_or("static", |p| p.name()))
}

/// The paper's static policy: round-robin placement at attach, no
/// migrations. The default, pinned bit-for-bit against the golden
/// determinism digests.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticRoundRobin;

impl ThreadScheduler for StaticRoundRobin {
    fn name(&self) -> &'static str {
        "static"
    }
}

/// Even out per-cluster *live* thread counts at barrier releases and
/// thread exits. When threads finish early (uneven work tails — the
/// imbalance the paper's sync bars measure), their clusters idle under
/// static placement; this policy refills them from overloaded clusters,
/// swapping live threads with finished ones when no context is free.
#[derive(Debug, Clone, Copy, Default)]
pub struct BarrierRebalance {
    epochs: u64,
}

/// Most migrations one [`BarrierRebalance`] epoch may request (each
/// balancing step is one move or one two-migration swap).
const BARRIER_MOVES_PER_EPOCH: usize = 4;

impl ThreadScheduler for BarrierRebalance {
    fn name(&self) -> &'static str {
        "barrier"
    }

    fn wants_barrier_epochs(&self) -> bool {
        true
    }

    fn rebalance(&mut self, _cycle: u64, snap: &SchedSnapshot) -> Vec<Migration> {
        self.epochs += 1;
        let nc = snap.topo.n_clusters();
        if nc < 2 {
            return Vec::new();
        }
        // Local model of the slot map, updated as moves are planned.
        let mut slot: Vec<Vec<Option<ThreadId>>> = vec![vec![None; snap.topo.ctx_per_cluster]; nc];
        let mut live = vec![0usize; nc];
        for t in &snap.threads {
            let Some(p) = t.placement else { continue };
            if t.state == ThreadState::Migrating {
                continue; // already leaving; don't plan around it
            }
            slot[snap.topo.global_cluster(p)][p.ctx] = Some(t.tid);
            if !t.done {
                live[snap.topo.global_cluster(p)] += 1;
            }
        }
        let movable = |tid: ThreadId| {
            matches!(
                snap.threads[tid].state,
                ThreadState::Running | ThreadState::WrongPath | ThreadState::WaitingSync
            )
        };
        let mut moves = Vec::new();
        while moves.len() < BARRIER_MOVES_PER_EPOCH {
            let max_c = (0..nc).max_by_key(|&c| live[c]).expect("nc >= 2");
            let min_c = (0..nc).min_by_key(|&c| live[c]).expect("nc >= 2");
            if live[max_c] < live[min_c] + 2 {
                break; // balanced within one thread
            }
            // Mover: lowest-tid movable live thread on the crowded cluster.
            let Some((mover, mover_ctx)) = slot[max_c]
                .iter()
                .enumerate()
                .filter_map(|(ctx, t)| t.map(|tid| (tid, ctx)))
                .filter(|&(tid, _)| !snap.threads[tid].done && movable(tid))
                .min_by_key(|&(tid, _)| tid)
            else {
                break;
            };
            // Destination: a free context, else a finished thread's (swap).
            if let Some(free_ctx) = slot[min_c].iter().position(Option::is_none) {
                moves.push(Migration {
                    tid: mover,
                    to: snap.topo.placement(min_c, free_ctx),
                });
                slot[max_c][mover_ctx] = None;
                slot[min_c][free_ctx] = Some(mover);
            } else if let Some((parked, parked_ctx)) = slot[min_c]
                .iter()
                .enumerate()
                .filter_map(|(ctx, t)| t.map(|tid| (tid, ctx)))
                .find(|&(tid, _)| snap.threads[tid].done)
            {
                moves.push(Migration {
                    tid: mover,
                    to: snap.topo.placement(min_c, parked_ctx),
                });
                moves.push(Migration {
                    tid: parked,
                    to: snap.topo.placement(max_c, mover_ctx),
                });
                slot[min_c][parked_ctx] = Some(mover);
                slot[max_c][mover_ctx] = Some(parked);
            } else {
                break; // min_c full of live threads: nothing to even out
            }
            live[max_c] -= 1;
            live[min_c] += 1;
        }
        moves
    }
}

/// Per-thread EWMA hazard signature maintained by [`HazardPairing`].
#[derive(Debug, Clone, Copy, Default)]
struct ThreadSig {
    last_committed: u64,
    ipc: f64,
    mem: f64,
    seen: bool,
}

/// SYNPA-style hazard-signature pairing (arXiv 2310.12786): every
/// [`quantum`](ThreadScheduler::quantum) cycles, update an EWMA of each
/// thread's IPC and memory-boundedness (in-flight-load fraction), then
/// swap the most memory-bound thread of the most memory-bound cluster
/// with the least memory-bound thread of the least memory-bound cluster —
/// co-locating complementary signatures so loads overlap with compute
/// instead of piling onto the same cluster's window.
#[derive(Debug, Clone)]
pub struct HazardPairing {
    quantum: u64,
    sigs: Vec<ThreadSig>,
}

impl Default for HazardPairing {
    fn default() -> Self {
        HazardPairing {
            quantum: 2048,
            sigs: Vec::new(),
        }
    }
}

impl HazardPairing {
    /// A pairing policy with a custom epoch quantum (cycles).
    pub fn with_quantum(quantum: u64) -> Self {
        HazardPairing {
            quantum,
            sigs: Vec::new(),
        }
    }
}

/// EWMA smoothing factor for [`HazardPairing`] signatures.
const EWMA_ALPHA: f64 = 0.5;
/// Minimum memory-boundedness gap between two threads before
/// [`HazardPairing`] considers swapping them worthwhile.
const PAIRING_GAP: f64 = 0.25;

impl ThreadScheduler for HazardPairing {
    fn name(&self) -> &'static str {
        "hazard_pairing"
    }

    fn quantum(&self) -> Option<u64> {
        Some(self.quantum)
    }

    fn observe(&mut self, _cycle: u64, snap: &SchedSnapshot) {
        if self.sigs.len() < snap.threads.len() {
            self.sigs.resize(snap.threads.len(), ThreadSig::default());
        }
        for t in &snap.threads {
            let s = &mut self.sigs[t.tid];
            let delta = t.committed.saturating_sub(s.last_committed);
            s.last_committed = t.committed;
            let ipc_now = delta as f64 / self.quantum as f64;
            let mem_now = if t.inflight > 0 {
                t.inflight_loads as f64 / t.inflight as f64
            } else {
                0.0
            };
            if s.seen {
                s.ipc = EWMA_ALPHA * ipc_now + (1.0 - EWMA_ALPHA) * s.ipc;
                s.mem = EWMA_ALPHA * mem_now + (1.0 - EWMA_ALPHA) * s.mem;
            } else {
                s.ipc = ipc_now;
                s.mem = mem_now;
                s.seen = true;
            }
        }
    }

    fn rebalance(&mut self, _cycle: u64, snap: &SchedSnapshot) -> Vec<Migration> {
        let nc = snap.topo.n_clusters();
        if nc < 2 {
            return Vec::new();
        }
        // Per-cluster mean memory-boundedness over live, swappable threads.
        let mut sum = vec![0.0f64; nc];
        let mut cnt = vec![0usize; nc];
        let swappable = |t: &ThreadObs| {
            !t.done
                && matches!(
                    t.state,
                    ThreadState::Running | ThreadState::WrongPath | ThreadState::WaitingSync
                )
        };
        for t in &snap.threads {
            let Some(p) = t.placement else { continue };
            if swappable(t) {
                sum[snap.topo.global_cluster(p)] += self.sigs[t.tid].mem;
                cnt[snap.topo.global_cluster(p)] += 1;
            }
        }
        let mean = |c: usize| {
            if cnt[c] == 0 {
                f64::NAN
            } else {
                sum[c] / cnt[c] as f64
            }
        };
        let populated: Vec<usize> = (0..nc).filter(|&c| cnt[c] > 0).collect();
        if populated.len() < 2 {
            return Vec::new();
        }
        let hi = *populated
            .iter()
            .max_by(|&&a, &&b| mean(a).total_cmp(&mean(b)))
            .expect("populated");
        let lo = *populated
            .iter()
            .min_by(|&&a, &&b| mean(a).total_cmp(&mean(b)))
            .expect("populated");
        if hi == lo {
            return Vec::new();
        }
        // Most memory-bound thread on `hi`, least on `lo` (ties → lowest
        // tid, keeping the choice deterministic).
        let on = |c: usize| {
            snap.threads
                .iter()
                .filter(move |t| {
                    t.placement
                        .is_some_and(|p| snap.topo.global_cluster(p) == c)
                })
                .filter(|t| swappable(t))
        };
        let Some(a) = on(hi).max_by(|x, y| {
            self.sigs[x.tid]
                .mem
                .total_cmp(&self.sigs[y.tid].mem)
                .then(y.tid.cmp(&x.tid))
        }) else {
            return Vec::new();
        };
        let Some(b) = on(lo).min_by(|x, y| {
            self.sigs[x.tid]
                .mem
                .total_cmp(&self.sigs[y.tid].mem)
                .then(x.tid.cmp(&y.tid))
        }) else {
            return Vec::new();
        };
        if self.sigs[a.tid].mem - self.sigs[b.tid].mem < PAIRING_GAP {
            return Vec::new();
        }
        let (pa, pb) = (
            a.placement.expect("on cluster"),
            b.placement.expect("on cluster"),
        );
        vec![
            Migration { tid: a.tid, to: pb },
            Migration { tid: b.tid, to: pa },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        // SMT2-shaped: 2 clusters × 4 contexts.
        Topology {
            chips: 1,
            clusters_per_chip: 2,
            ctx_per_cluster: 4,
        }
    }

    fn obs(tid: ThreadId, cluster: usize, ctx: usize, state: ThreadState, done: bool) -> ThreadObs {
        ThreadObs {
            tid,
            placement: Some(Placement {
                chip: 0,
                cluster,
                ctx,
            }),
            state,
            committed: 0,
            inflight: 0,
            inflight_loads: 0,
            group: 0,
            done,
        }
    }

    #[test]
    fn by_name_knows_all_policies() {
        for name in POLICY_NAMES {
            let p = by_name(name).expect("registered policy");
            assert_eq!(p.name(), name);
        }
        assert!(by_name("nope").is_none());
        assert!(!by_name("static").unwrap().is_dynamic());
        assert!(by_name("barrier").unwrap().is_dynamic());
        assert!(by_name("hazard_pairing").unwrap().is_dynamic());
    }

    #[test]
    fn default_initial_placement_is_round_robin() {
        let mut s = StaticRoundRobin;
        let t = topo();
        let ps = s.initial_placement(8, &t);
        assert_eq!(ps.len(), 8);
        for (tid, p) in ps.iter().enumerate() {
            assert_eq!(
                *p,
                round_robin_placement(tid, t.clusters_per_chip, t.threads_per_chip())
            );
        }
        // Distinct placements.
        for i in 0..8 {
            for j in i + 1..8 {
                assert_ne!(ps[i], ps[j]);
            }
        }
    }

    #[test]
    fn barrier_rebalance_swaps_live_for_done() {
        // Cluster 0: 4 live threads. Cluster 1: 1 live + 3 done — the
        // classic uneven-tail shape. Expect a live thread moved into a
        // done thread's context (a swap: two migrations).
        let mut s = BarrierRebalance::default();
        let threads = vec![
            obs(0, 0, 0, ThreadState::Running, false),
            obs(1, 1, 0, ThreadState::Running, false),
            obs(2, 0, 1, ThreadState::Running, false),
            obs(3, 1, 1, ThreadState::Done, true),
            obs(4, 0, 2, ThreadState::Running, false),
            obs(5, 1, 2, ThreadState::Done, true),
            obs(6, 0, 3, ThreadState::Running, false),
            obs(7, 1, 3, ThreadState::Done, true),
        ];
        let snap = SchedSnapshot {
            cycle: 1000,
            threads,
            cluster_running: vec![4, 1],
            topo: topo(),
        };
        let moves = s.rebalance(1000, &snap);
        assert!(!moves.is_empty());
        assert_eq!(moves.len() % 2, 0, "full clusters mean swaps: {moves:?}");
        // First swap: lowest live tid on cluster 0 (tid 0) into the first
        // done context on cluster 1 (tid 3's), and tid 3 back.
        assert_eq!(moves[0].tid, 0);
        assert_eq!(moves[0].to.cluster, 1);
        assert_eq!(moves[1].tid, 3);
        assert_eq!(moves[1].to.cluster, 0);
    }

    #[test]
    fn barrier_rebalance_is_quiet_when_balanced() {
        let mut s = BarrierRebalance::default();
        let threads = vec![
            obs(0, 0, 0, ThreadState::Running, false),
            obs(1, 1, 0, ThreadState::Running, false),
        ];
        let snap = SchedSnapshot {
            cycle: 0,
            threads,
            cluster_running: vec![1, 1],
            topo: topo(),
        };
        assert!(s.rebalance(0, &snap).is_empty());
    }

    #[test]
    fn hazard_pairing_swaps_complementary_threads() {
        let mut s = HazardPairing::with_quantum(100);
        // Cluster 0 holds two memory-bound threads, cluster 1 two
        // compute-bound ones; after observing, the policy should swap one
        // of each.
        let mk = |tid, cluster, ctx, loads, infl| ThreadObs {
            inflight: infl,
            inflight_loads: loads,
            ..obs(tid, cluster, ctx, ThreadState::Running, false)
        };
        let threads = vec![
            mk(0, 0, 0, 9, 10),
            mk(1, 1, 0, 0, 10),
            mk(2, 0, 1, 8, 10),
            mk(3, 1, 1, 1, 10),
        ];
        let snap = SchedSnapshot {
            cycle: 100,
            threads,
            cluster_running: vec![2, 2],
            topo: topo(),
        };
        s.observe(100, &snap);
        let moves = s.rebalance(100, &snap);
        assert_eq!(moves.len(), 2, "one swap: {moves:?}");
        // tid 0 (most memory-bound) swaps with tid 1 (least).
        assert_eq!(moves[0].tid, 0);
        assert_eq!(moves[0].to, snap.threads[1].placement.unwrap());
        assert_eq!(moves[1].tid, 1);
        assert_eq!(moves[1].to, snap.threads[0].placement.unwrap());
    }

    #[test]
    fn hazard_pairing_respects_the_gap() {
        let mut s = HazardPairing::with_quantum(100);
        let mk = |tid, cluster, ctx, loads| ThreadObs {
            inflight: 10,
            inflight_loads: loads,
            ..obs(tid, cluster, ctx, ThreadState::Running, false)
        };
        // Both clusters near-identical: no swap worth its cost.
        let threads = vec![mk(0, 0, 0, 5), mk(1, 1, 0, 5)];
        let snap = SchedSnapshot {
            cycle: 100,
            threads,
            cluster_running: vec![1, 1],
            topo: topo(),
        };
        s.observe(100, &snap);
        assert!(s.rebalance(100, &snap).is_empty());
    }

    #[test]
    fn unknown_policy_message_lists_valid_names() {
        let msg = UnknownPolicy {
            name: "typo".into(),
        }
        .to_string();
        assert!(msg.contains("\"typo\""), "{msg}");
        for n in POLICY_NAMES {
            assert!(msg.contains(n), "{msg} should list {n}");
        }
    }

    #[test]
    fn config_errors_render() {
        assert!(SchedConfigError::DynamicOnFixedAssignment
            .to_string()
            .contains("fixed-assignment"));
        assert!(SchedConfigError::ZeroQuantum
            .to_string()
            .contains("1 cycle"));
    }
}
