//! The parallel cluster phase: a deterministic two-phase split of
//! [`Machine::step_probed`](crate::Machine::step_probed).
//!
//! **Phase 1 (parallel)** — every cluster runs its pipeline cycle against
//! a private intent tape ([`csmt_cpu::cluster::Cluster::step_tape`]):
//! loads, stores and probe events are *recorded*, not performed. Clusters
//! share no mutable state in this phase, so any assignment of clusters to
//! worker threads produces the same tapes.
//!
//! **Phase 2 (serial commit)** — the coordinating thread drains each tape
//! in fixed machine order (chip-major flat cluster index, i.e. exactly the
//! iteration order of the historical serial step), applying the deferred
//! memory accesses so directory/MSHR/LRU/TLB state evolves in precisely
//! the serial order, and forwarding buffered probe events.
//!
//! Determinism therefore does not depend on thread count, scheduling or
//! OS timing: the parallel phase computes pure per-cluster functions of
//! the cycle-start state, and every globally-visible effect happens in
//! phase 2 in a fixed order. The machine only routes a cycle through this
//! engine when a pre-check proves the cycle cannot observe the deferral
//! (no runtime events possible, enough MSHR headroom that no load gate
//! could have closed mid-cycle); all other cycles take the serial path,
//! which is bit-for-bit the historical implementation.
//!
//! This module is the workspace's **only** registered concurrency seam
//! (see `csmt-audit.toml`): the mutex/condvar handshake and the worker
//! threads live here and nowhere else in the simulator crates.

use std::sync::{Arc, Condvar, Mutex};

use csmt_cpu::{Cluster, Wants};

/// A cluster slot shareable with the worker pool.
///
/// The mutex is uncontended by construction — the coordinating thread
/// only locks outside the parallel phase, and within it each cluster is
/// stepped by exactly one worker — so every `lock()` takes the fast
/// path. It exists to make sharing `&[ClusterCell]` with the pool sound
/// without any `unsafe`.
pub struct ClusterCell(Arc<Mutex<Cluster>>);

impl ClusterCell {
    /// Wrap a cluster for shared access.
    pub fn new(cluster: Cluster) -> Self {
        ClusterCell(Arc::new(Mutex::new(cluster)))
    }

    /// Lock and access the cluster. Panics if the lock is poisoned (a
    /// worker panicked mid-cycle; the simulation state is gone either
    /// way).
    pub fn get(&self) -> std::sync::MutexGuard<'_, Cluster> {
        self.0.lock().expect("cluster lock poisoned")
    }
}

/// Shared command block for the worker handshake: the coordinator
/// publishes an epoch (with the cycle and wants-mask to run), workers run
/// their statically-assigned clusters and decrement `pending`.
struct Cmd {
    epoch: u64,
    now: u64,
    wants: Wants,
    shutdown: bool,
    pending: usize,
}

/// Shared state between the coordinator and the workers.
struct Shared {
    cmd: Mutex<Cmd>,
    /// Signalled by the coordinator when a new epoch is published.
    go: Condvar,
    /// Signalled by workers when `pending` reaches zero.
    done: Condvar,
}

/// A persistent worker pool stepping clusters through their tape phase.
///
/// Workers are statically assigned clusters by index (`i % nworkers`), so
/// the partition — like everything else here — is independent of timing.
struct Pool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// The slice of cluster cells a pool run operates on, smuggled to the
/// workers as a raw pointer + length pair behind the epoch handshake.
///
/// Instead of raw pointers (the workspace denies `unsafe`), each run
/// clones the cells' `Arc`s into a per-worker vector once at pool
/// construction; the machine's cluster set is fixed for its lifetime, so
/// this is a one-time cost.
struct WorkerSlice {
    cells: Vec<Arc<Mutex<Cluster>>>,
    /// Flat machine index of each cell in `cells` (its `cluster_id`).
    ids: Vec<u32>,
}

impl Pool {
    /// Spawn `nworkers` workers over a static partition of `cells`.
    fn spawn(cells: &[ClusterCell], nworkers: usize) -> Self {
        let shared = Arc::new(Shared {
            cmd: Mutex::new(Cmd {
                epoch: 0,
                now: 0,
                wants: Wants::default(),
                shutdown: false,
                pending: 0,
            }),
            go: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..nworkers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let mut slice = WorkerSlice {
                    cells: Vec::new(),
                    ids: Vec::new(),
                };
                for (i, cell) in cells.iter().enumerate() {
                    if i % nworkers == w {
                        slice.cells.push(Arc::clone(&cell.0));
                        slice.ids.push(i as u32);
                    }
                }
                std::thread::spawn(move || Pool::worker(&shared, &slice))
            })
            .collect();
        Pool { shared, workers }
    }

    /// Worker loop: wait for an epoch, step the assigned clusters'
    /// tape phase, report completion.
    fn worker(shared: &Shared, slice: &WorkerSlice) {
        let mut seen = 0u64;
        loop {
            let (now, wants) = {
                let mut cmd = shared.cmd.lock().expect("pool lock poisoned");
                while cmd.epoch == seen && !cmd.shutdown {
                    cmd = shared.go.wait(cmd).expect("pool lock poisoned");
                }
                if cmd.shutdown {
                    return;
                }
                seen = cmd.epoch;
                (cmd.now, cmd.wants)
            };
            for (cell, &id) in slice.cells.iter().zip(&slice.ids) {
                cell.lock()
                    .expect("cluster lock poisoned")
                    .step_tape(now, id, wants);
            }
            let mut cmd = shared.cmd.lock().expect("pool lock poisoned");
            cmd.pending -= 1;
            if cmd.pending == 0 {
                shared.done.notify_all();
            }
        }
    }

    /// Run one parallel cluster phase: publish the epoch and block until
    /// every worker has stepped its clusters.
    fn run(&self, now: u64, wants: Wants) {
        let mut cmd = self.shared.cmd.lock().expect("pool lock poisoned");
        cmd.epoch += 1;
        cmd.now = now;
        cmd.wants = wants;
        cmd.pending = self.workers.len();
        self.shared.go.notify_all();
        while cmd.pending > 0 {
            cmd = self.shared.done.wait(cmd).expect("pool lock poisoned");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if let Ok(mut cmd) = self.shared.cmd.lock() {
            cmd.shutdown = true;
            self.shared.go.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// The machine's parallel-stepping engine: configuration (enabled flag,
/// worker count) plus the lazily-spawned worker pool.
pub struct ParEngine {
    enabled: bool,
    threads: usize,
    n_clusters: usize,
    pool: Option<Pool>,
}

impl ParEngine {
    /// Build an engine for a machine of `n_clusters` clusters, honouring
    /// the `CSMT_PARALLEL` / `CSMT_THREADS` environment knobs:
    ///
    /// * `CSMT_PARALLEL` unset → auto: enabled iff the host has more than
    ///   one CPU; `0` → off; any other value → on.
    /// * `CSMT_THREADS` caps the worker count (default: available
    ///   parallelism, itself capped at `n_clusters`; never below 1).
    pub fn from_env(n_clusters: usize) -> Self {
        let avail = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let enabled = match std::env::var_os("CSMT_PARALLEL") {
            None => avail > 1,
            Some(v) => v != "0",
        };
        let threads = std::env::var("CSMT_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(avail)
            .clamp(1, n_clusters.max(1));
        ParEngine {
            enabled,
            threads,
            n_clusters,
            pool: None,
        }
    }

    /// Whether the two-phase parallel step is enabled.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Worker-thread count the cluster phase will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enable or disable the parallel step (overrides `CSMT_PARALLEL`).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Set the worker-thread count (overrides `CSMT_THREADS`). Clamped
    /// to `[1, n_clusters]`; tears down a previously-spawned pool so the
    /// next parallel cycle respawns at the new width.
    pub fn set_threads(&mut self, n: usize) {
        let n = n.clamp(1, self.n_clusters.max(1));
        if n != self.threads {
            self.threads = n;
            self.pool = None;
        }
    }

    /// Run the parallel cluster phase over `cells`: every cluster records
    /// its cycle onto its tape. Inline (no handoff) when a single worker
    /// — or a single cluster — makes the pool pure overhead; the tape
    /// format and replay order are identical either way.
    pub fn cluster_phase(&mut self, cells: &[ClusterCell], now: u64, wants: Wants) {
        if self.threads <= 1 || cells.len() <= 1 {
            for (i, cell) in cells.iter().enumerate() {
                cell.get().step_tape(now, i as u32, wants);
            }
            return;
        }
        let pool = self
            .pool
            .get_or_insert_with(|| Pool::spawn(cells, self.threads.min(cells.len())));
        pool.run(now, wants);
    }
}

/// One-line description of the parallelism the environment selects —
/// for the report binaries' banner, next to their fast-forward note.
/// Each machine additionally clamps the worker count to its cluster
/// count, so this renders the pre-clamp environment decision.
pub fn describe_env() -> String {
    let probe = ParEngine::from_env(usize::MAX);
    if probe.enabled() {
        let n = probe.threads();
        let plural = if n == 1 { "" } else { "s" };
        format!("parallel step: on ({n} worker thread{plural}, serial commit)")
    } else {
        "parallel step: off (serial cluster loop)".to_owned()
    }
}
