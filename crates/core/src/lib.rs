//! # csmt-core — chips, machines, runtime: the paper's contribution
//!
//! This crate assembles the clustered-SMT architectures of Krishnan &
//! Torrellas (IPPS 1998) out of the `csmt-cpu` cluster pipeline and the
//! `csmt-mem` hierarchy, and drives whole-application simulations:
//!
//! * [`configs`] — the seven Table 2 chip configurations
//!   (FA8/FA4/FA2/FA1 and SMT8/SMT4/SMT2/SMT1);
//! * [`runtime`] — barriers, locks and thread lifecycle (the ANL-macro /
//!   Polaris fork-join semantics the paper's applications use);
//! * [`machine`] — the low-end (1 chip) and high-end (4-chip DASH-like)
//!   machines and the cycle loop;
//! * [`par_step`] — the deterministic parallel cluster phase: the
//!   worker pool behind the machine's two-phase (record / serial-commit)
//!   step, the workspace's only registered concurrency seam;
//! * [`sched`] — the thread-to-cluster scheduling seam: pluggable
//!   [`ThreadScheduler`] policies (static round-robin, barrier rebalance,
//!   hazard pairing) with drain-based thread migration;
//! * [`result`] — per-run statistics: cycles, §4.1 issue-slot breakdown,
//!   memory counters, Figure 6 coordinates.
//!
//! ```
//! use csmt_core::{ArchKind, Machine};
//! use csmt_isa::stream::VecStream;
//! use csmt_isa::{ArchReg, DynInst, OpClass};
//! use csmt_mem::MemConfig;
//!
//! // An SMT2 chip (two 4-issue SMT clusters) running two tiny threads.
//! let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 42);
//! let thread = |base: u64| -> Box<dyn csmt_isa::InstStream + Send> {
//!     Box::new(VecStream::new(
//!         (0..100)
//!             .map(|i| {
//!                 DynInst::alu(
//!                     base + i * 4,
//!                     OpClass::IntAlu,
//!                     Some(ArchReg::Int(1)),
//!                     [Some(ArchReg::Int(1)), None],
//!                 )
//!             })
//!             .collect(),
//!     ))
//! };
//! m.attach_threads(vec![thread(0), thread(0x1000)]);
//! let result = m.run(1_000_000);
//! assert_eq!(result.slots.committed, 200);
//! ```

pub mod configs;
pub mod machine;
pub mod par_step;
pub mod result;
pub mod runtime;
pub mod sched;

pub use configs::{ArchKind, ChipConfig, ConfigError, CHIP_ISSUE_WIDTH};
pub use machine::{Machine, Placement};
pub use result::RunResult;
pub use runtime::{Action, Runtime, ThreadId};
pub use sched::{
    BarrierRebalance, HazardPairing, Migration, SchedConfigError, SchedSnapshot, StaticRoundRobin,
    ThreadObs, ThreadScheduler, Topology, MIGRATION_COST,
};
