//! The parallel runtime: barriers, locks, thread lifecycle.
//!
//! The paper's Fortran applications are parallelized by Polaris into
//! fork-join loops, and its SPLASH-2 applications use the ANL m4 macros —
//! both reduce to threads that compute, arrive at barriers, and occasionally
//! serialize on locks. Hardware reports a thread reaching a sync marker
//! (after its pipeline drains) via [`csmt_cpu::ClusterEvent`]; this module
//! decides when each parked thread may resume. While parked, a thread's
//! issue share is charged to the `sync` hazard ("spinning on barriers or
//! locks"), exactly the quantity in the paper's stacked bars.

use csmt_isa::SyncOp;
use std::collections::{BTreeMap, VecDeque};

/// Global software-thread id across the whole machine.
pub type ThreadId = usize;

/// What the runtime wants the machine to do after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Resume this thread now.
    Resume(ThreadId),
}

#[derive(Debug, Default)]
struct Barrier {
    arrived: Vec<ThreadId>,
}

#[derive(Debug, Default)]
struct Lock {
    held_by: Option<ThreadId>,
    queue: VecDeque<ThreadId>,
}

/// Coordinates `n_threads` software threads, optionally partitioned into
/// independent *groups* (multiprogrammed mixes: each program's threads
/// synchronize only among themselves; barrier and lock namespaces are
/// per group).
#[derive(Debug)]
pub struct Runtime {
    n_threads: usize,
    /// Group of each thread (all zero for a single parallel application).
    group_of: Vec<usize>,
    /// Live (not yet exited) threads per group.
    live_per_group: Vec<usize>,
    // Ordered maps: `thread_done` iterates `barriers` to find ones a
    // shrinking group completes, and the order of the resulting
    // `Action::Resume` pushes is digest-visible. (csmt-audit's map-iter
    // rule caught the original `HashMap` here.)
    barriers: BTreeMap<(usize, u32), Barrier>,
    locks: BTreeMap<(usize, u32), Lock>,
    done: Vec<bool>,
    barrier_episodes: u64,
    lock_acquisitions: u64,
}

impl Runtime {
    /// Runtime for `n_threads` participants of one parallel application.
    /// Every barrier is a full barrier over all *live* (not yet exited)
    /// threads, matching the fork-join structure the workload generators
    /// emit.
    pub fn new(n_threads: usize) -> Self {
        Self::with_groups(vec![0; n_threads])
    }

    /// Runtime for a multiprogrammed mix: `groups[t]` is thread `t`'s
    /// program; synchronization is scoped within each program.
    pub fn with_groups(groups: Vec<usize>) -> Self {
        let n_threads = groups.len();
        let n_groups = groups.iter().copied().max().map_or(0, |g| g + 1);
        let mut live = vec![0usize; n_groups];
        for &g in &groups {
            live[g] += 1;
        }
        Runtime {
            n_threads,
            group_of: groups,
            live_per_group: live,
            barriers: BTreeMap::new(),
            locks: BTreeMap::new(),
            done: vec![false; n_threads],
            barrier_episodes: 0,
            lock_acquisitions: 0,
        }
    }

    /// Number of participating threads.
    pub fn n_threads(&self) -> usize {
        self.n_threads
    }

    /// True when every thread has exited.
    pub fn all_done(&self) -> bool {
        self.live_per_group.iter().all(|&l| l == 0)
    }

    /// Handle a thread reaching a sync point; append resume actions.
    pub fn sync_reached(&mut self, tid: ThreadId, op: SyncOp, actions: &mut Vec<Action>) {
        debug_assert!(!self.done[tid], "done thread reported sync");
        let group = self.group_of[tid];
        match op {
            SyncOp::Barrier(id) => {
                let b = self.barriers.entry((group, id)).or_default();
                debug_assert!(!b.arrived.contains(&tid), "double barrier arrival");
                b.arrived.push(tid);
                if b.arrived.len() >= self.live_per_group[group] {
                    self.barrier_episodes += 1;
                    let b = self.barriers.remove(&(group, id)).expect("just inserted");
                    for t in b.arrived {
                        actions.push(Action::Resume(t));
                    }
                }
            }
            SyncOp::LockAcquire(id) => {
                let l = self.locks.entry((group, id)).or_default();
                if l.held_by.is_none() {
                    l.held_by = Some(tid);
                    self.lock_acquisitions += 1;
                    actions.push(Action::Resume(tid));
                } else {
                    l.queue.push_back(tid);
                }
            }
            SyncOp::LockRelease(id) => {
                let l = self.locks.entry((group, id)).or_default();
                debug_assert_eq!(l.held_by, Some(tid), "release by non-holder");
                l.held_by = None;
                if let Some(next) = l.queue.pop_front() {
                    l.held_by = Some(next);
                    self.lock_acquisitions += 1;
                    actions.push(Action::Resume(next));
                }
                // Releasing never blocks the releasing thread.
                actions.push(Action::Resume(tid));
            }
            SyncOp::Exit => {
                self.thread_done(tid, actions);
            }
        }
    }

    /// Handle a thread finishing its program. If it was the last straggler
    /// other threads were waiting on at a barrier, release them.
    pub fn thread_done(&mut self, tid: ThreadId, actions: &mut Vec<Action>) {
        if self.done[tid] {
            return;
        }
        self.done[tid] = true;
        let group = self.group_of[tid];
        self.live_per_group[group] -= 1;
        // A shrinking participant count can complete pending barriers of
        // this thread's group.
        let live = self.live_per_group[group];
        let ready: Vec<(usize, u32)> = self
            .barriers
            .iter()
            .filter(|(&(g, _), b)| g == group && b.arrived.len() >= live && !b.arrived.is_empty())
            .map(|(&k, _)| k)
            .collect();
        for k in ready {
            self.barrier_episodes += 1;
            let b = self.barriers.remove(&k).expect("listed");
            for t in b.arrived {
                actions.push(Action::Resume(t));
            }
        }
    }

    /// (completed barrier episodes, lock acquisitions).
    pub fn stats(&self) -> (u64, u64) {
        (self.barrier_episodes, self.lock_acquisitions)
    }

    /// Program group of thread `tid` (0 for a single parallel application).
    pub fn group_of(&self, tid: ThreadId) -> usize {
        self.group_of[tid]
    }

    /// True once thread `tid` has exited.
    pub fn is_done(&self, tid: ThreadId) -> bool {
        self.done[tid]
    }

    /// Number of threads that have exited so far (all groups).
    pub fn done_count(&self) -> usize {
        self.done.iter().filter(|&&d| d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_releases_only_when_all_arrive() {
        let mut r = Runtime::new(3);
        let mut a = Vec::new();
        r.sync_reached(0, SyncOp::Barrier(1), &mut a);
        r.sync_reached(2, SyncOp::Barrier(1), &mut a);
        assert!(a.is_empty());
        r.sync_reached(1, SyncOp::Barrier(1), &mut a);
        let mut resumed: Vec<_> = a.iter().map(|Action::Resume(t)| *t).collect();
        resumed.sort();
        assert_eq!(resumed, vec![0, 1, 2]);
        assert_eq!(r.stats().0, 1);
    }

    #[test]
    fn distinct_barriers_are_independent() {
        let mut r = Runtime::new(2);
        let mut a = Vec::new();
        r.sync_reached(0, SyncOp::Barrier(1), &mut a);
        r.sync_reached(1, SyncOp::Barrier(2), &mut a);
        assert!(a.is_empty(), "different ids must not match");
    }

    #[test]
    fn lock_grants_immediately_when_free() {
        let mut r = Runtime::new(2);
        let mut a = Vec::new();
        r.sync_reached(0, SyncOp::LockAcquire(9), &mut a);
        assert_eq!(a, vec![Action::Resume(0)]);
    }

    #[test]
    fn contended_lock_queues_fifo() {
        let mut r = Runtime::new(3);
        let mut a = Vec::new();
        r.sync_reached(0, SyncOp::LockAcquire(9), &mut a);
        a.clear();
        r.sync_reached(1, SyncOp::LockAcquire(9), &mut a);
        r.sync_reached(2, SyncOp::LockAcquire(9), &mut a);
        assert!(a.is_empty(), "holders queue");
        r.sync_reached(0, SyncOp::LockRelease(9), &mut a);
        // Thread 1 gets the lock; thread 0 continues.
        assert!(a.contains(&Action::Resume(1)));
        assert!(a.contains(&Action::Resume(0)));
        assert!(!a.contains(&Action::Resume(2)));
        a.clear();
        r.sync_reached(1, SyncOp::LockRelease(9), &mut a);
        assert!(a.contains(&Action::Resume(2)));
        assert_eq!(r.stats().1, 3);
    }

    #[test]
    fn exit_of_straggler_releases_pending_barrier() {
        let mut r = Runtime::new(3);
        let mut a = Vec::new();
        r.sync_reached(0, SyncOp::Barrier(4), &mut a);
        r.sync_reached(1, SyncOp::Barrier(4), &mut a);
        assert!(a.is_empty());
        // Thread 2 exits instead of arriving (uneven work tails).
        r.thread_done(2, &mut a);
        let resumed: Vec<_> = a.iter().map(|Action::Resume(t)| *t).collect();
        assert!(resumed.contains(&0) && resumed.contains(&1));
    }

    #[test]
    fn all_done_only_after_every_exit() {
        let mut r = Runtime::new(2);
        let mut a = Vec::new();
        assert!(!r.all_done());
        r.sync_reached(0, SyncOp::Exit, &mut a);
        assert!(!r.all_done());
        r.sync_reached(1, SyncOp::Exit, &mut a);
        assert!(r.all_done());
    }

    #[test]
    fn groups_scope_barriers_independently() {
        // Two 2-thread programs: group 0 = {0,1}, group 1 = {2,3}.
        let mut r = Runtime::with_groups(vec![0, 0, 1, 1]);
        let mut a = Vec::new();
        r.sync_reached(0, SyncOp::Barrier(0), &mut a);
        r.sync_reached(2, SyncOp::Barrier(0), &mut a);
        assert!(a.is_empty(), "same id, different groups: no release");
        r.sync_reached(1, SyncOp::Barrier(0), &mut a);
        let resumed: Vec<_> = a.iter().map(|Action::Resume(t)| *t).collect();
        assert!(resumed.contains(&0) && resumed.contains(&1));
        assert!(!resumed.contains(&2), "group 1 still waiting");
        a.clear();
        r.sync_reached(3, SyncOp::Barrier(0), &mut a);
        let resumed: Vec<_> = a.iter().map(|Action::Resume(t)| *t).collect();
        assert!(resumed.contains(&2) && resumed.contains(&3));
    }

    #[test]
    fn groups_scope_locks_independently() {
        let mut r = Runtime::with_groups(vec![0, 1]);
        let mut a = Vec::new();
        r.sync_reached(0, SyncOp::LockAcquire(5), &mut a);
        r.sync_reached(1, SyncOp::LockAcquire(5), &mut a);
        // Same lock id in different groups: both granted immediately.
        assert!(a.contains(&Action::Resume(0)));
        assert!(a.contains(&Action::Resume(1)));
        assert_eq!(r.stats().1, 2);
    }

    #[test]
    fn group_exit_only_affects_own_group() {
        let mut r = Runtime::with_groups(vec![0, 0, 1]);
        let mut a = Vec::new();
        r.sync_reached(0, SyncOp::Barrier(9), &mut a);
        // Group 1's thread exits; group 0's pending barrier must not fire.
        r.thread_done(2, &mut a);
        assert!(a.is_empty());
        assert!(!r.all_done());
        r.sync_reached(1, SyncOp::Barrier(9), &mut a);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn duplicate_done_is_idempotent() {
        let mut r = Runtime::new(2);
        let mut a = Vec::new();
        r.thread_done(0, &mut a);
        r.thread_done(0, &mut a);
        assert!(!r.all_done());
        r.thread_done(1, &mut a);
        assert!(r.all_done());
    }
}
