//! Whole-machine simulation driver.
//!
//! A [`Machine`] is one or more chips (each a set of clusters per
//! [`crate::configs::ChipConfig`]) over a shared [`MemorySystem`], plus the
//! parallel [`Runtime`]. The low-end machine of the paper is `chips = 1`
//! ("a simple workstation"); the high-end machine is `chips = 4` (the
//! DASH-like CC-NUMA of Figure 3).
//!
//! Software threads are placed by a pluggable [`ThreadScheduler`] (module
//! [`crate::sched`]). The default, [`StaticRoundRobin`], reproduces the
//! paper: thread *i* on chip `i / threads_per_chip`, cluster `i % clusters`
//! of that chip, the way an OS scheduler would spread work — and never
//! migrates. Dynamic policies may additionally move threads between
//! contexts at deterministic epochs; migration is drain-based (the context
//! is parked, in-flight work retires or is squashed, then the thread
//! spends [`MIGRATION_COST`] cycles in transit before resuming).

use std::collections::BTreeMap;

use crate::configs::ChipConfig;
use crate::par_step::{ClusterCell, ParEngine};
use crate::result::RunResult;
use crate::runtime::{Action, Runtime, ThreadId};
use crate::sched::{
    Migration, SchedConfigError, SchedSnapshot, StaticRoundRobin, ThreadObs, ThreadScheduler,
    Topology, MIGRATION_COST,
};
use csmt_cpu::{Cluster, ClusterEvent, DetachedThread, ThreadState, Wants};
use csmt_isa::InstStream;
use csmt_mem::{MemConfig, MemorySystem};
use csmt_trace::{
    CycleStats, MigrationEvent, MigrationEventKind, NullProbe, Probe, SyncEvent, SyncEventKind,
};

/// Where a software thread lives: (chip, cluster-in-chip, context-in-cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Chip (= memory-system node) index.
    pub chip: usize,
    /// Cluster index within the chip.
    pub cluster: usize,
    /// Hardware context within the cluster.
    pub ctx: usize,
}

/// Round-robin placement of software thread `tid` on a machine of chips
/// with `clusters` clusters each and `threads_per_chip` contexts per chip:
/// thread *i* lands on chip `i / threads_per_chip`, cluster
/// `i % clusters` of that chip — the way an OS scheduler would spread
/// work. This is the arithmetic behind the default
/// [`StaticRoundRobin`](crate::sched::StaticRoundRobin) policy.
pub fn round_robin_placement(tid: ThreadId, clusters: usize, threads_per_chip: usize) -> Placement {
    let chip = tid / threads_per_chip;
    let within = tid % threads_per_chip;
    Placement {
        chip,
        cluster: within % clusters,
        ctx: within / clusters,
    }
}

/// A thread between contexts: detached from its source, not yet attached at
/// its destination.
struct Transit {
    tid: ThreadId,
    to: Placement,
    /// Earliest cycle the thread may attach at `to` (depart +
    /// [`MIGRATION_COST`]; it also waits for the destination to be free).
    ready_at: u64,
    /// Cycle the scheduler marked the thread for migration — the base of
    /// the `migration_wait_cycles` accounting.
    held_at: u64,
    detached: DetachedThread,
    /// State to resume in at the destination (`WaitingSync` flips to
    /// `Running` if the thread's barrier releases mid-flight).
    resume_as: ThreadState,
}

/// A complete machine ready to run a multithreaded application.
pub struct Machine {
    cfg: ChipConfig,
    /// All clusters of all chips, flat in chip-major order: the cluster
    /// at `(chip, k)` is index `chip * cfg.clusters + k`. Flat order is
    /// both the historical serial iteration order and the parallel
    /// step's commit order. A chip itself has no other state — its
    /// L1/L2 live in the shared [`MemorySystem`] under its node index.
    clusters: Vec<ClusterCell>,
    /// Number of chips (= memory-system nodes).
    n_chips: usize,
    mem: MemorySystem,
    runtime: Runtime,
    placements: Vec<Placement>,
    /// Reverse map of `placements`: machine-global context slot → occupying
    /// software thread. Indexed by [`Machine::slot`]. Maintained on attach
    /// and on every migration; the single source of truth for `tid_at`.
    rev_map: Vec<Option<ThreadId>>,
    cycle: u64,
    /// Σ over cycles of the number of threads making progress (Fig 6).
    running_thread_cycles: u64,
    events_buf: Vec<ClusterEvent>,
    actions_buf: Vec<Action>,
    /// Event-driven stall fast-forward (on by default; `CSMT_FASTFORWARD=0`
    /// disables it). Bit-for-bit result-preserving — see
    /// [`fast_forward_probed`](Machine::fast_forward_probed).
    fastforward: bool,
    /// Scratch: per-cluster hazard weights, frozen for a skipped span.
    stall_weights_buf: Vec<[f64; 7]>,
    /// The thread-to-cluster allocation policy (see [`crate::sched`]).
    sched: Box<dyn ThreadScheduler + Send>,
    /// Cached `sched.is_dynamic()`: when false, the run loop skips all
    /// epoch/migration machinery and stays on the golden-digest path.
    sched_dynamic: bool,
    /// Threads currently between contexts, in departure order (the order
    /// determines arrival processing, so it is determinism-load-bearing).
    in_transit: Vec<Transit>,
    /// Index into `in_transit` by thread id: the hot event-processing
    /// path asks "is this thread in transit?" per resume action, which
    /// was a linear scan. Maintained by `transit_push`/`transit_remove`.
    in_transit_idx: BTreeMap<ThreadId, usize>,
    /// Per thread: destination and hold-cycle while its context drains
    /// toward a migration (`None` when not draining).
    migrate_dest: Vec<Option<(Placement, u64)>>,
    /// Cycle of the last scheduler epoch (quantum epochs fire at
    /// `last_epoch + quantum`).
    last_epoch: u64,
    /// Barrier-episode count at the last epoch (change ⇒ barrier epoch).
    prev_barrier_episodes: u64,
    /// Exited-thread count at the last epoch (change ⇒ exit epoch).
    prev_done_count: usize,
    /// Whether the initial-placement `Attach` probe events were emitted.
    attach_emitted: bool,
    /// Completed thread migrations.
    migrations: u64,
    /// Σ cycles from hold to destination resume, over completed migrations.
    migration_wait: u64,
    /// The two-phase parallel stepping engine (see [`crate::par_step`]).
    par: ParEngine,
    /// Σ useful-issue slots over all stepped cluster-cycles, folded from
    /// each cycle's [`csmt_cpu::CycleActivity`] delta. Exact integers, so
    /// `agg_useful as f64` is bit-identical to the historical per-cycle
    /// full-`SlotStats` merge (which summed per-cluster `f64` totals that
    /// are themselves exact integers below 2⁵³).
    agg_useful: u64,
    /// Σ committed instructions, same delta fold as `agg_useful`.
    agg_committed: u64,
    /// Scratch: per-node MSHR demand bound for the parallel pre-check.
    mshr_demand_buf: Vec<usize>,
}

impl Machine {
    /// Build a machine of `n_chips` chips of configuration `cfg` with the
    /// given memory hierarchy. `seed` controls all stochastic state.
    pub fn new(cfg: ChipConfig, n_chips: usize, mem_cfg: MemConfig, seed: u64) -> Self {
        assert!(n_chips >= 1);
        let mut rng = csmt_isa::SplitMix64::new(seed);
        let mut clusters = Vec::with_capacity(n_chips * cfg.clusters);
        for c in 0..n_chips {
            for k in 0..cfg.clusters {
                clusters.push(ClusterCell::new(Cluster::new(
                    cfg.cluster,
                    rng.fork((c * 64 + k) as u64).next_u64(),
                )));
            }
        }
        let max_cluster_events = cfg.cluster.hw_threads;
        let n_clusters = n_chips * cfg.clusters;
        let sched = Self::sched_from_env(&cfg);
        let sched_dynamic = sched.is_dynamic();
        Machine {
            cfg,
            clusters,
            n_chips,
            mem: MemorySystem::new(mem_cfg, n_chips, rng.fork(u64::MAX).next_u64()),
            runtime: Runtime::new(0),
            placements: Vec::new(),
            rev_map: vec![None; n_clusters * cfg.cluster.hw_threads],
            cycle: 0,
            running_thread_cycles: 0,
            events_buf: Vec::with_capacity(max_cluster_events),
            actions_buf: Vec::new(),
            fastforward: Self::fastforward_env_enabled(),
            stall_weights_buf: Vec::with_capacity(n_clusters),
            sched,
            sched_dynamic,
            in_transit: Vec::new(),
            in_transit_idx: BTreeMap::new(),
            migrate_dest: Vec::new(),
            last_epoch: 0,
            prev_barrier_episodes: 0,
            prev_done_count: 0,
            attach_emitted: false,
            migrations: 0,
            migration_wait: 0,
            par: ParEngine::from_env(n_clusters),
            agg_useful: 0,
            agg_committed: 0,
            mshr_demand_buf: Vec::with_capacity(n_chips),
        }
    }

    /// The cluster cell at `(chip, cluster-in-chip)`.
    fn cluster_cell(&self, chip: usize, cluster: usize) -> &ClusterCell {
        &self.clusters[chip * self.cfg.clusters + cluster]
    }

    /// Scheduling policy selected by the `CSMT_SCHED` environment variable
    /// (default `static`). A dynamic policy requested on a fixed-assignment
    /// architecture silently degrades to static — FA machines pin thread
    /// assignment by construction, and figure sweeps set one `CSMT_SCHED`
    /// for every architecture. Unknown names panic here as a backstop (a
    /// typo must not silently change the experiment) — binaries validate
    /// first via [`crate::sched::policy_from_env`] and exit 2 cleanly.
    fn sched_from_env(cfg: &ChipConfig) -> Box<dyn ThreadScheduler + Send> {
        let sched = match crate::sched::policy_from_env() {
            Ok(None) => return Box::new(StaticRoundRobin),
            Ok(Some(sched)) => sched,
            Err(e) => panic!("{e} (from CSMT_SCHED)"),
        };
        if sched.is_dynamic() && Self::fixed_assignment(cfg) {
            return Box::new(StaticRoundRobin);
        }
        sched
    }

    /// Whether `cfg` is a fixed-assignment (FA) architecture: one hardware
    /// context per cluster, so thread-to-cluster assignment is pinned by
    /// construction and migration is meaningless.
    fn fixed_assignment(cfg: &ChipConfig) -> bool {
        cfg.cluster.hw_threads == 1
    }

    /// Install a scheduling policy, overriding the `CSMT_SCHED` default.
    /// Must be called before [`attach_threads`](Machine::attach_threads).
    /// Rejects configurations the machine refuses to run (a dynamic policy
    /// on a fixed-assignment architecture, a zero rebalance quantum).
    pub fn set_scheduler(
        &mut self,
        sched: Box<dyn ThreadScheduler + Send>,
    ) -> Result<(), SchedConfigError> {
        assert!(
            self.placements.is_empty(),
            "set_scheduler before attach_threads"
        );
        if sched.quantum() == Some(0) {
            return Err(SchedConfigError::ZeroQuantum);
        }
        if sched.is_dynamic() && Self::fixed_assignment(&self.cfg) {
            return Err(SchedConfigError::DynamicOnFixedAssignment);
        }
        self.sched_dynamic = sched.is_dynamic();
        self.sched = sched;
        Ok(())
    }

    /// Name of the active scheduling policy.
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }

    /// Completed thread migrations so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Machine shape, as scheduler policies see it.
    pub fn topology(&self) -> Topology {
        Topology {
            chips: self.n_chips,
            clusters_per_chip: self.cfg.clusters,
            ctx_per_cluster: self.cfg.cluster.hw_threads,
        }
    }

    /// Whether the `CSMT_FASTFORWARD` environment variable enables the
    /// stall fast-forward: enabled unless the variable is set to `0`.
    pub fn fastforward_env_enabled() -> bool {
        std::env::var_os("CSMT_FASTFORWARD").is_none_or(|v| v != "0")
    }

    /// Enable or disable the event-driven stall fast-forward. Results are
    /// bit-for-bit identical either way; this exists for differential
    /// testing and for timing the cycle-by-cycle baseline.
    pub fn set_fastforward(&mut self, on: bool) {
        self.fastforward = on;
    }

    /// Whether the stall fast-forward is currently enabled.
    pub fn fastforward(&self) -> bool {
        self.fastforward
    }

    /// Enable or disable the two-phase parallel step (overrides the
    /// `CSMT_PARALLEL` environment default). Results are bit-for-bit
    /// identical either way; this exists for differential testing and
    /// for timing the serial baseline.
    pub fn set_parallel(&mut self, on: bool) {
        self.par.set_enabled(on);
    }

    /// Whether the two-phase parallel step is currently enabled.
    pub fn parallel(&self) -> bool {
        self.par.enabled()
    }

    /// Set the parallel cluster phase's worker-thread count (overrides
    /// the `CSMT_THREADS` environment default; clamped to the cluster
    /// count).
    pub fn set_parallel_threads(&mut self, n: usize) {
        self.par.set_threads(n);
    }

    /// Worker-thread count the parallel cluster phase will use.
    pub fn parallel_threads(&self) -> usize {
        self.par.threads()
    }

    /// Total hardware thread contexts in the machine — the thread count the
    /// paper creates for each configuration ("we generate as many threads as
    /// are required by the processor", §4).
    pub fn hw_thread_capacity(&self) -> usize {
        self.n_chips * self.cfg.threads_per_chip()
    }

    /// Current placement of software thread `tid`. Reads the stored
    /// placement table (kept up to date across migrations), so it is only
    /// valid after [`attach_threads`](Machine::attach_threads); panics for
    /// unattached thread ids.
    pub fn placement_of(&self, tid: ThreadId) -> Placement {
        self.placements[tid]
    }

    /// Machine-global context-slot index of a placement (the `rev_map` key).
    fn slot(&self, p: Placement) -> usize {
        (p.chip * self.cfg.clusters + p.cluster) * self.cfg.cluster.hw_threads + p.ctx
    }

    /// Attach the application's software threads (one stream per thread).
    /// Must be called exactly once, with at most `hw_thread_capacity()`
    /// threads.
    pub fn attach_threads(&mut self, streams: Vec<Box<dyn InstStream + Send>>) {
        let n = streams.len();
        self.attach_threads_grouped(streams.into_iter().map(|s| (s, 0)).collect());
        debug_assert_eq!(self.placements.len(), n);
    }

    /// Attach a multiprogrammed mix: each stream carries its program-group
    /// id; barriers and locks are scoped within a group (independent
    /// programs never synchronize with each other).
    pub fn attach_threads_grouped(&mut self, streams: Vec<(Box<dyn InstStream + Send>, usize)>) {
        assert!(self.placements.is_empty(), "threads already attached");
        assert!(!streams.is_empty());
        assert!(
            streams.len() <= self.hw_thread_capacity(),
            "{} threads exceed {} contexts",
            streams.len(),
            self.hw_thread_capacity()
        );
        self.runtime = Runtime::with_groups(streams.iter().map(|(_, g)| *g).collect());
        self.actions_buf.reserve(streams.len());
        self.migrate_dest = vec![None; streams.len()];
        let topo = self.topology();
        let placements = self.sched.initial_placement(streams.len(), &topo);
        assert_eq!(
            placements.len(),
            streams.len(),
            "scheduler must place every thread"
        );
        for (tid, (s, _)) in streams.into_iter().enumerate() {
            let p = placements[tid];
            assert!(
                p.chip < self.n_chips
                    && p.cluster < self.cfg.clusters
                    && p.ctx < self.cfg.cluster.hw_threads,
                "initial placement {p:?} out of range"
            );
            self.cluster_cell(p.chip, p.cluster)
                .get()
                .attach_thread(p.ctx, s);
            self.placements.push(p);
            let slot = self.slot(p);
            assert!(self.rev_map[slot].is_none(), "placement collision at {p:?}");
            self.rev_map[slot] = Some(tid);
        }
    }

    fn tid_at(&self, chip: usize, cluster: usize, ctx: usize) -> Option<ThreadId> {
        self.rev_map[self.slot(Placement { chip, cluster, ctx })]
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        self.step_probed(&mut NullProbe);
    }

    /// [`step`](Machine::step) with an observability probe attached.
    /// Clusters are identified in emitted events by their machine-global
    /// index (`chip * clusters_per_chip + cluster`). All probe work is
    /// gated on `P`'s wants-flags, so `step_probed::<NullProbe>`
    /// monomorphizes to exactly `step`.
    ///
    /// When the parallel engine is enabled and the cycle passes the
    /// safety pre-check, the cycle runs as a two-phase parallel step
    /// ([`step_parallel`](Machine::step_parallel)); otherwise it runs
    /// the historical serial step. Both produce bit-for-bit identical
    /// machine state and probe-event streams.
    pub fn step_probed<P: Probe>(&mut self, probe: &mut P) {
        if self.par.enabled() && self.step_parallel(probe) {
            return;
        }
        self.step_serial(probe);
    }

    /// The historical serial cycle: step each cluster in flat order
    /// against the live memory system, processing its runtime events
    /// before moving to the next cluster.
    fn step_serial<P: Probe>(&mut self, probe: &mut P) {
        let now = self.cycle;
        for i in 0..self.clusters.len() {
            let chip_idx = i / self.cfg.clusters;
            let cluster_idx = i % self.cfg.clusters;
            self.events_buf.clear();
            let activity = self.clusters[i].get().step_probed(
                now,
                &mut self.mem,
                chip_idx,
                &mut self.events_buf,
                probe,
                i as u32,
            );
            self.agg_useful += u64::from(activity.useful);
            self.agg_committed += u64::from(activity.committed);
            for k in 0..self.events_buf.len() {
                let ev = self.events_buf[k];
                let (ctx, is_done, op) = match ev {
                    ClusterEvent::SyncReached { thread, op } => (thread, false, Some(op)),
                    ClusterEvent::ThreadDone { thread } => (thread, true, None),
                    ClusterEvent::MigrationDrained { thread } => {
                        self.detach_drained(chip_idx, cluster_idx, thread, now, probe);
                        continue;
                    }
                };
                let tid = self
                    .tid_at(chip_idx, cluster_idx, ctx)
                    .expect("event from unattached context");
                self.actions_buf.clear();
                if is_done {
                    self.runtime.thread_done(tid, &mut self.actions_buf);
                } else {
                    self.runtime
                        .sync_reached(tid, op.expect("sync"), &mut self.actions_buf);
                }
                if P::WANTS_INST_EVENTS {
                    let kind = match op {
                        Some(op) => SyncEventKind::Reached(op),
                        None => SyncEventKind::Done,
                    };
                    probe.sync_event(SyncEvent {
                        cycle: now,
                        thread: tid as u32,
                        kind,
                    });
                }
                for a in 0..self.actions_buf.len() {
                    let Action::Resume(t) = self.actions_buf[a];
                    if let Some(&ti) = self.in_transit_idx.get(&t) {
                        // Released while between contexts: arrive
                        // runnable instead of parked.
                        let tr = &mut self.in_transit[ti];
                        if tr.resume_as == ThreadState::WaitingSync {
                            tr.resume_as = ThreadState::Running;
                        }
                    } else {
                        let p = self.placements[t];
                        self.cluster_cell(p.chip, p.cluster)
                            .get()
                            .resume_thread(p.ctx);
                    }
                    if P::WANTS_INST_EVENTS {
                        probe.sync_event(SyncEvent {
                            cycle: now,
                            thread: t as u32,
                            kind: SyncEventKind::Resumed,
                        });
                    }
                }
            }
        }
        let running: usize = self
            .clusters
            .iter()
            .map(|c| c.get().running_threads())
            .sum();
        self.finish_cycle(now, running, probe);
    }

    /// Attempt a two-phase parallel cycle. Returns `false` (machine
    /// state untouched) when the cycle fails the safety pre-check and
    /// must run serially:
    ///
    /// * **Events** — some context is `Draining`/`Migrating`, so commit
    ///   could emit a runtime event this cycle, and event handling is
    ///   interleaved per cluster in the serial order.
    /// * **MSHR headroom** — some node's free MSHRs are below the sum of
    ///   its clusters' demand bounds, so the serial outstanding-loads
    ///   gate could close mid-cycle, which tape recording cannot see.
    ///   (With demand ≤ free, every serial gate check would have seen at
    ///   least one free MSHR, so the tape's unconditional pass is
    ///   identical.)
    ///
    /// On an eligible cycle, the running-thread count is frozen at the
    /// pre-check: the states counted by `running_threads` (`Running`,
    /// `WrongPath`, `Draining`, `Migrating`) only lose members through
    /// commit's event detection — excluded above — and only gain members
    /// through resume/attach, which happen outside the step.
    fn step_parallel<P: Probe>(&mut self, probe: &mut P) -> bool {
        let now = self.cycle;
        self.mshr_demand_buf.clear();
        self.mshr_demand_buf.resize(self.n_chips, 0);
        let mut running = 0usize;
        for (i, cell) in self.clusters.iter().enumerate() {
            let cl = cell.get();
            if cl.may_emit_events() {
                return false;
            }
            self.mshr_demand_buf[i / self.cfg.clusters] += cl.mshr_demand_bound(now);
            running += cl.running_threads();
        }
        for node in 0..self.n_chips {
            if self.mem.free_mshrs(node, now) < self.mshr_demand_buf[node] {
                return false;
            }
        }
        // Phase 1: every cluster records its cycle onto its tape, in
        // parallel — no shared mutable state.
        self.par
            .cluster_phase(&self.clusters, now, Wants::of::<P>());
        // Phase 2: serial commit in flat (chip, cluster) order — memory
        // accesses and probe events land exactly as the serial step's.
        for i in 0..self.clusters.len() {
            let activity = self.clusters[i].get().replay_tape(
                now,
                &mut self.mem,
                i / self.cfg.clusters,
                probe,
            );
            self.agg_useful += u64::from(activity.useful);
            self.agg_committed += u64::from(activity.committed);
        }
        self.finish_cycle(now, running, probe);
        true
    }

    /// The per-cycle epilogue shared by [`step_probed`](Machine::step_probed)
    /// and the fast-forward path: running-thread accounting, the cycle
    /// counter, and the end-of-cycle probe callback.
    fn finish_cycle<P: Probe>(&mut self, now: u64, running: usize, probe: &mut P) {
        self.running_thread_cycles += running as u64;
        self.cycle += 1;
        if P::WANTS_CYCLE_STATS {
            // Host self-profiling: the snapshot costs a wasted-slot fold
            // over every cluster, which the profiler reports as its own
            // `cycle_end` row (non-zero only when a stats-wanting probe
            // is composed in). Everything else in the snapshot comes
            // from O(1) machine-level running aggregates.
            let phase_t = P::WANTS_HOST_PHASES.then(std::time::Instant::now);
            let mut wasted = [0.0f64; 7];
            for cell in &self.clusters {
                let cl = cell.get();
                for (w, c) in wasted.iter_mut().zip(&cl.stats().wasted) {
                    *w += c;
                }
            }
            let stats = self.build_cycle_stats(wasted, running);
            if let Some(t0) = phase_t {
                probe.host_phase(
                    csmt_trace::HostPhase::CycleEnd,
                    t0.elapsed().as_nanos() as u64,
                );
            }
            probe.cycle_end(now, Some(&stats));
        } else {
            probe.cycle_end(now, None);
        }
    }

    /// Assemble the end-of-cycle [`CycleStats`] snapshot from the folded
    /// per-cluster wasted-slot totals plus machine-level aggregates.
    ///
    /// Bit-for-bit identical to the historical full-`SlotStats` merge:
    /// `useful`/`committed` fold exact integer deltas (so `as f64`
    /// reproduces the old `f64` sum of exact integers), the wasted fold
    /// keeps the old cluster-major `f64` summation order, and
    /// `slots`/`cycles` are closed-form — every cluster records every
    /// machine cycle at the shared issue width, stepping or stalled.
    fn build_cycle_stats(&self, wasted: [f64; 7], running: usize) -> CycleStats {
        let (accesses, l1_hits, l2_hits, tlb_misses) = self.mem.cycle_counters();
        CycleStats {
            useful: self.agg_useful as f64,
            wasted,
            slots: (self.clusters.len() * self.cfg.cluster.issue_width) as u64 * self.cycle,
            cycles: self.cycle,
            committed: self.agg_committed,
            running_threads: running as u32,
            accesses,
            l1_hits,
            l2_hits,
            tlb_misses,
        }
    }

    /// Earliest cycle ≥ the current one at which any cluster could do more
    /// than stalled-cycle accounting, folding in the memory system's next
    /// MSHR fill. Returns the current cycle when the machine is not in an
    /// all-stalled state (the common case exits on the first non-skippable
    /// cluster).
    pub fn next_event_cycle(&self) -> u64 {
        let now = self.cycle;
        let mut next = u64::MAX;
        for cell in &self.clusters {
            let t = cell.get().next_event_cycle(now);
            if t <= now {
                return now;
            }
            next = next.min(t);
        }
        next.min(self.mem.next_event_cycle(now))
    }

    /// Advance the machine from the current cycle up to (not including)
    /// `target`, where every intervening cycle is a pure stall for every
    /// cluster (caller established this via
    /// [`next_event_cycle`](Machine::next_event_cycle)).
    ///
    /// Bit-for-bit equivalence with stepping each cycle: hazard weights are
    /// frozen per cluster (nothing a stalled cycle does can change them —
    /// asserted per cycle under `debug_assertions`), the running-thread
    /// count is frozen (thread states only change on non-stall activity),
    /// and each skipped cycle still runs the real fetch stage, records its
    /// slot statistics through the same `f64` accumulation sequence, and
    /// fires the same per-cycle probe callbacks in the same order.
    fn fast_forward_probed<P: Probe>(&mut self, target: u64, probe: &mut P) {
        self.stall_weights_buf.clear();
        let start = self.cycle;
        // Lock every cluster once for the whole span: a span covers many
        // cycles, and per-cycle re-locking is the only thing the flat
        // `ClusterCell` layout would otherwise add to this hot loop. The
        // guards borrow only the `clusters` field, so the per-cycle
        // epilogue below works on the machine's other fields directly
        // (calling `finish_cycle` here would re-lock and deadlock).
        let mut guards: Vec<_> = self.clusters.iter().map(ClusterCell::get).collect();
        for g in &guards {
            self.stall_weights_buf.push(g.stall_weights(start));
        }
        let running: usize = guards.iter().map(|g| g.running_threads()).sum();
        while self.cycle < target {
            let now = self.cycle;
            for (i, g) in guards.iter_mut().enumerate() {
                let weights = self.stall_weights_buf[i];
                g.stall_cycle_probed(now, &weights, probe, i as u32);
            }
            // Inlined `finish_cycle`, reading cluster stats through the
            // held guards.
            self.running_thread_cycles += running as u64;
            self.cycle += 1;
            if P::WANTS_CYCLE_STATS {
                let phase_t = P::WANTS_HOST_PHASES.then(std::time::Instant::now);
                let mut wasted = [0.0f64; 7];
                for g in &guards {
                    for (w, c) in wasted.iter_mut().zip(&g.stats().wasted) {
                        *w += c;
                    }
                }
                let stats = self.build_cycle_stats(wasted, running);
                if let Some(t0) = phase_t {
                    probe.host_phase(
                        csmt_trace::HostPhase::CycleEnd,
                        t0.elapsed().as_nanos() as u64,
                    );
                }
                probe.cycle_end(now, Some(&stats));
            } else {
                probe.cycle_end(now, None);
            }
        }
    }

    /// Enter a transit record, keeping the by-tid index in sync.
    fn transit_push(&mut self, tr: Transit) {
        self.in_transit_idx.insert(tr.tid, self.in_transit.len());
        self.in_transit.push(tr);
    }

    /// Remove the transit record at position `i` (preserving the
    /// departure order of the rest), keeping the by-tid index in sync.
    fn transit_remove(&mut self, i: usize) -> Transit {
        let tr = self.in_transit.remove(i);
        self.in_transit_idx.remove(&tr.tid);
        for v in self.in_transit_idx.values_mut() {
            if *v > i {
                *v -= 1;
            }
        }
        tr
    }

    /// A held context finished draining: detach its thread and put it in
    /// transit. Only `Running`/`WrongPath` contexts drain asynchronously
    /// (parked states detach at the epoch itself), so the thread resumes
    /// `Running` at its destination.
    fn detach_drained<P: Probe>(
        &mut self,
        chip: usize,
        cluster: usize,
        ctx: usize,
        now: u64,
        probe: &mut P,
    ) {
        let tid = self
            .tid_at(chip, cluster, ctx)
            .expect("drain event from unattached context");
        let (to, held_at) = self.migrate_dest[tid]
            .take()
            .expect("drained context has no migration destination");
        let detached = self.cluster_cell(chip, cluster).get().detach_thread(ctx);
        self.depart(tid, to, held_at, ThreadState::Running, detached, now, probe);
    }

    /// Move a just-detached thread into transit and free its source slot.
    #[allow(clippy::too_many_arguments)]
    fn depart<P: Probe>(
        &mut self,
        tid: ThreadId,
        to: Placement,
        held_at: u64,
        resume_as: ThreadState,
        detached: DetachedThread,
        now: u64,
        probe: &mut P,
    ) {
        let from = self.placements[tid];
        let slot = self.slot(from);
        debug_assert_eq!(
            self.rev_map[slot],
            Some(tid),
            "reverse map out of sync at depart"
        );
        self.rev_map[slot] = None;
        self.transit_push(Transit {
            tid,
            to,
            ready_at: now + MIGRATION_COST,
            held_at,
            detached,
            resume_as,
        });
        if P::WANTS_SCHED_EVENTS {
            probe.migration(MigrationEvent {
                cycle: now,
                thread: tid as u32,
                cluster: (from.chip * self.cfg.clusters + from.cluster) as u32,
                ctx: from.ctx as u32,
                kind: MigrationEventKind::Depart,
                wait: 0,
            });
        }
    }

    /// Attach every in-transit thread whose transit delay has elapsed and
    /// whose destination context is free.
    fn process_arrivals<P: Probe>(&mut self, probe: &mut P) {
        let now = self.cycle;
        let mut i = 0;
        while i < self.in_transit.len() {
            let due = self.in_transit[i].ready_at <= now
                && self.rev_map[self.slot(self.in_transit[i].to)].is_none();
            if !due {
                i += 1;
                continue;
            }
            let tr = self.transit_remove(i);
            let slot = self.slot(tr.to);
            self.cluster_cell(tr.to.chip, tr.to.cluster)
                .get()
                .attach_migrated(tr.to.ctx, tr.detached, tr.resume_as);
            self.placements[tr.tid] = tr.to;
            self.rev_map[slot] = Some(tr.tid);
            self.migrations += 1;
            let wait = now - tr.held_at;
            self.migration_wait += wait;
            if P::WANTS_SCHED_EVENTS {
                probe.migration(MigrationEvent {
                    cycle: now,
                    thread: tr.tid as u32,
                    cluster: (tr.to.chip * self.cfg.clusters + tr.to.cluster) as u32,
                    ctx: tr.to.ctx as u32,
                    kind: MigrationEventKind::Arrive,
                    wait,
                });
            }
        }
    }

    /// Fire a scheduler epoch if one is due: quantum epochs at
    /// `last_epoch + quantum`, barrier/exit epochs when the runtime's
    /// barrier-episode or exited-thread counts changed since the last
    /// epoch. All triggers are simulated-time events, so epochs are
    /// deterministic for a given (policy, workload, seed).
    fn maybe_epoch<P: Probe>(&mut self, probe: &mut P) {
        let now = self.cycle;
        let mut fire = false;
        if let Some(q) = self.sched.quantum() {
            if now >= self.last_epoch + q {
                fire = true;
            }
        }
        if self.sched.wants_barrier_epochs() {
            let (barriers, _) = self.runtime.stats();
            if barriers != self.prev_barrier_episodes
                || self.runtime.done_count() != self.prev_done_count
            {
                fire = true;
            }
        }
        if !fire {
            return;
        }
        self.last_epoch = now;
        self.prev_barrier_episodes = self.runtime.stats().0;
        self.prev_done_count = self.runtime.done_count();
        let snap = self.snapshot();
        self.sched.observe(now, &snap);
        let requested = self.sched.rebalance(now, &snap);
        self.apply_migrations(requested, probe);
    }

    /// Deterministic machine snapshot for the scheduler. Built only at
    /// epoch boundaries, keeping its cost off the per-cycle path.
    fn snapshot(&self) -> SchedSnapshot {
        let topo = self.topology();
        let mut cluster_running = Vec::with_capacity(topo.n_clusters());
        for cell in &self.clusters {
            cluster_running.push(cell.get().running_threads());
        }
        let threads = (0..self.placements.len())
            .map(|tid| {
                let group = self.runtime.group_of(tid);
                let done = self.runtime.is_done(tid);
                if let Some(&ti) = self.in_transit_idx.get(&tid) {
                    let tr = &self.in_transit[ti];
                    ThreadObs {
                        tid,
                        placement: None,
                        state: ThreadState::Migrating,
                        committed: tr.detached.committed,
                        inflight: 0,
                        inflight_loads: 0,
                        group,
                        done,
                    }
                } else {
                    let p = self.placements[tid];
                    let cl = self.cluster_cell(p.chip, p.cluster).get();
                    ThreadObs {
                        tid,
                        placement: Some(p),
                        state: cl.thread_state(p.ctx),
                        committed: cl.thread_committed(p.ctx),
                        inflight: cl.inflight(p.ctx),
                        inflight_loads: cl.inflight_loads(p.ctx),
                        group,
                        done,
                    }
                }
            })
            .collect();
        SchedSnapshot {
            cycle: self.cycle,
            threads,
            cluster_running,
            topo,
        }
    }

    /// Validate and start a batch of requested migrations. Policies are
    /// advisory: requests that are out of range, duplicated, aimed at a
    /// promised slot, or whose thread cannot migrate are dropped silently.
    /// A request into an occupied context survives only if the occupant
    /// itself migrates away in the same batch (a swap).
    fn apply_migrations<P: Probe>(&mut self, requested: Vec<Migration>, probe: &mut P) {
        if requested.is_empty() {
            return;
        }
        let now = self.cycle;
        let n = self.placements.len();
        // Slots already promised to an outstanding migration.
        let mut promised: Vec<usize> = self.in_transit.iter().map(|t| self.slot(t.to)).collect();
        promised.extend(
            self.migrate_dest
                .iter()
                .filter_map(|d| d.map(|(p, _)| self.slot(p))),
        );
        let mut accepted: Vec<Migration> = Vec::new();
        let mut in_batch = vec![false; n];
        for m in requested {
            if m.tid >= n
                || in_batch[m.tid]
                || m.to.chip >= self.n_chips
                || m.to.cluster >= self.cfg.clusters
                || m.to.ctx >= self.cfg.cluster.hw_threads
            {
                continue;
            }
            if self.migrate_dest[m.tid].is_some() || self.in_transit_idx.contains_key(&m.tid) {
                continue;
            }
            let from = self.placements[m.tid];
            if from == m.to {
                continue;
            }
            let state = self
                .cluster_cell(from.chip, from.cluster)
                .get()
                .thread_state(from.ctx);
            if !matches!(
                state,
                ThreadState::Running
                    | ThreadState::WrongPath
                    | ThreadState::WaitingSync
                    | ThreadState::Done
            ) {
                continue;
            }
            let dest = self.slot(m.to);
            if promised.contains(&dest) || accepted.iter().any(|a| self.slot(a.to) == dest) {
                continue;
            }
            accepted.push(m);
            in_batch[m.tid] = true;
        }
        // A move into an occupied context needs the occupant to leave in
        // this batch; dropping one request can strand another, so filter
        // to a fixpoint. This guarantees every accepted destination
        // eventually frees, which keeps arrivals deadlock-free.
        loop {
            let movers: Vec<ThreadId> = accepted.iter().map(|a| a.tid).collect();
            let before = accepted.len();
            accepted.retain(|a| match self.rev_map[self.slot(a.to)] {
                None => true,
                Some(occupant) => movers.contains(&occupant),
            });
            if accepted.len() == before {
                break;
            }
        }
        for m in accepted {
            let from = self.placements[m.tid];
            let (state, drained) = {
                let mut cl = self.cluster_cell(from.chip, from.cluster).get();
                let state = cl.thread_state(from.ctx);
                if cl.hold_for_migration(from.ctx) {
                    // Already drained (parked states, or an empty
                    // window): detach immediately, preserving the
                    // parked state.
                    (state, Some(cl.detach_thread(from.ctx)))
                } else {
                    (state, None)
                }
            };
            if let Some(detached) = drained {
                let resume_as = match state {
                    ThreadState::WaitingSync => ThreadState::WaitingSync,
                    ThreadState::Done => ThreadState::Done,
                    _ => ThreadState::Running,
                };
                self.depart(m.tid, m.to, now, resume_as, detached, now, probe);
            } else {
                self.migrate_dest[m.tid] = Some((m.to, now));
            }
        }
    }

    /// Upper bound on a fast-forward span imposed by the scheduler: the
    /// next quantum epoch and the next transit arrival are simulated-time
    /// events the span must not skip. Arrivals already due (waiting on an
    /// occupied destination) don't cap the span — the occupant's drain is
    /// a cluster event the span horizon already accounts for.
    fn next_sched_cap(&self) -> u64 {
        let now = self.cycle;
        let mut cap = u64::MAX;
        if let Some(q) = self.sched.quantum() {
            cap = cap.min(self.last_epoch + q);
        }
        for t in &self.in_transit {
            if t.ready_at > now {
                cap = cap.min(t.ready_at);
            }
        }
        cap
    }

    /// True while any thread still has work.
    pub fn busy(&self) -> bool {
        !self.runtime.all_done()
            || !self.in_transit.is_empty()
            || self.clusters.iter().any(|c| c.get().busy())
    }

    /// Run to completion (or `max_cycles`), returning the collected result.
    /// Panics if the limit is hit — a limit hit means a deadlocked workload,
    /// which is a bug, not a datapoint.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        self.run_probed(max_cycles, &mut NullProbe)
    }

    /// [`run`](Machine::run) with an observability probe attached to every
    /// cycle. Callers owning a probe with buffered output (e.g.
    /// [`csmt_trace::IntervalSampler`]) should call its `finish()` after
    /// this returns to flush the trailing partial interval.
    pub fn run_probed<P: Probe>(&mut self, max_cycles: u64, probe: &mut P) -> RunResult {
        assert!(!self.placements.is_empty(), "attach_threads first");
        if P::WANTS_SCHED_EVENTS && !self.attach_emitted {
            // Initial placements, for probes tracking thread→context
            // ownership. Gated on the probe (not on the policy), so
            // ownership checkers work under the static policy too.
            self.attach_emitted = true;
            for tid in 0..self.placements.len() {
                let p = self.placements[tid];
                probe.migration(MigrationEvent {
                    cycle: self.cycle,
                    thread: tid as u32,
                    cluster: (p.chip * self.cfg.clusters + p.cluster) as u32,
                    ctx: p.ctx as u32,
                    kind: MigrationEventKind::Attach,
                    wait: 0,
                });
            }
        }
        while self.busy() {
            assert!(
                self.cycle < max_cycles,
                "simulation exceeded {max_cycles} cycles (deadlock?)"
            );
            if self.sched_dynamic {
                self.process_arrivals(probe);
                self.maybe_epoch(probe);
            }
            if self.fastforward {
                // Capping the jump at `max_cycles` preserves the deadlock
                // panic above: a machine stalled forever walks up to the
                // limit and trips the assert exactly as stepping would.
                let mut target = self.next_event_cycle().min(max_cycles);
                if self.sched_dynamic {
                    target = target.min(self.next_sched_cap());
                }
                if target > self.cycle {
                    self.fast_forward_probed(target, probe);
                    continue;
                }
            }
            self.step_probed(probe);
        }
        self.result()
    }

    /// Snapshot the result so far (also valid mid-run).
    pub fn result(&self) -> RunResult {
        let mut slots = csmt_cpu::SlotStats::default();
        for cell in &self.clusters {
            slots.merge(cell.get().stats());
        }
        let mut mispredicts = 0;
        let mut lookups = 0;
        for cell in &self.clusters {
            let (l, m) = cell.get().bpred_stats();
            lookups += l;
            mispredicts += m;
        }
        let (barriers, lock_acqs) = self.runtime.stats();
        RunResult {
            arch: self.cfg.kind.name().to_string(),
            chips: self.n_chips,
            threads: self.placements.len(),
            cycles: self.cycle,
            slots,
            mem: self.mem.stats(),
            avg_running_threads: if self.cycle == 0 {
                0.0
            } else {
                self.running_thread_cycles as f64 / self.cycle as f64
            },
            branch_lookups: lookups,
            branch_mispredicts: mispredicts,
            barrier_episodes: barriers,
            lock_acquisitions: lock_acqs,
            migrations: self.migrations,
            migration_wait_cycles: self.migration_wait,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// State of software thread `tid` (`Migrating` while between contexts).
    pub fn thread_state(&self, tid: ThreadId) -> ThreadState {
        if self.in_transit_idx.contains_key(&tid) {
            return ThreadState::Migrating;
        }
        let p = self.placements[tid];
        self.cluster_cell(p.chip, p.cluster)
            .get()
            .thread_state(p.ctx)
    }

    /// The shared memory system (for inspection in examples/tests).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::ArchKind;
    use csmt_isa::stream::VecStream;
    use csmt_isa::{ArchReg, DynInst, OpClass, SyncOp};

    fn simple_thread(
        n_ops: u64,
        barrier_first: bool,
        addr_base: u64,
    ) -> Box<dyn InstStream + Send> {
        let mut v = Vec::new();
        if barrier_first {
            v.push(DynInst::sync(0, SyncOp::Barrier(0)));
        }
        for i in 0..n_ops {
            v.push(DynInst::load(
                8 + i * 8,
                ArchReg::Fp(1),
                addr_base + (i * 8) % 4096,
                [None, None],
            ));
            v.push(DynInst::alu(
                12 + i * 8,
                OpClass::FpAdd,
                Some(ArchReg::Fp(2)),
                [Some(ArchReg::Fp(1)), None],
            ));
        }
        v.push(DynInst::sync(4, SyncOp::Barrier(1)));
        v.push(DynInst::sync(8, SyncOp::Exit));
        Box::new(VecStream::new(v))
    }

    #[test]
    fn placement_round_robins_across_clusters() {
        let cfg = ArchKind::Smt2.chip();
        let place = |tid| round_robin_placement(tid, cfg.clusters, cfg.threads_per_chip());
        assert_eq!(
            place(0),
            Placement {
                chip: 0,
                cluster: 0,
                ctx: 0
            }
        );
        assert_eq!(
            place(1),
            Placement {
                chip: 0,
                cluster: 1,
                ctx: 0
            }
        );
        assert_eq!(
            place(2),
            Placement {
                chip: 0,
                cluster: 0,
                ctx: 1
            }
        );
        assert_eq!(
            place(7),
            Placement {
                chip: 0,
                cluster: 1,
                ctx: 3
            }
        );
    }

    #[test]
    fn placement_fills_chips_in_order() {
        let m = Machine::new(ArchKind::Fa2.chip(), 4, MemConfig::table3(), 1);
        assert_eq!(m.hw_thread_capacity(), 8);
        let cfg = ArchKind::Fa2.chip();
        let place = |tid| round_robin_placement(tid, cfg.clusters, cfg.threads_per_chip());
        assert_eq!(
            place(2),
            Placement {
                chip: 1,
                cluster: 0,
                ctx: 0
            }
        );
        assert_eq!(
            place(5),
            Placement {
                chip: 2,
                cluster: 1,
                ctx: 0
            }
        );
    }

    #[test]
    fn stored_placements_match_round_robin_after_attach() {
        let mut m = Machine::new(ArchKind::Smt4.chip(), 1, MemConfig::table3(), 1);
        m.attach_threads((0..6).map(|i| simple_thread(2, false, i << 14)).collect());
        let cfg = ArchKind::Smt4.chip();
        for tid in 0..6 {
            let p = round_robin_placement(tid, cfg.clusters, cfg.threads_per_chip());
            assert_eq!(m.placement_of(tid), p);
            assert_eq!(m.tid_at(p.chip, p.cluster, p.ctx), Some(tid));
        }
        // Unoccupied contexts map to no thread (SMT4 = 4 clusters × 2
        // contexts; 6 threads leave (0,2,1) and (0,3,1) empty).
        assert_eq!(m.tid_at(0, 2, 1), None);
        assert_eq!(m.tid_at(0, 3, 1), None);
    }

    #[test]
    fn two_threads_run_to_completion_through_a_shared_barrier() {
        let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 1);
        m.attach_threads(vec![
            simple_thread(50, false, 0),
            simple_thread(5, false, 65536),
        ]);
        let r = m.run(1_000_000);
        assert_eq!(r.threads, 2);
        assert!(r.cycles > 0);
        assert_eq!(r.barrier_episodes, 1);
        // 50-op thread and 5-op thread: the short one waits at barrier 1,
        // so sync slots must be visible.
        assert!(r.slots.wasted[csmt_cpu::Hazard::Sync.index()] > 0.0);
    }

    #[test]
    fn imbalanced_threads_expose_sync_hazard_growth() {
        let run_with = |short: u64| {
            let mut m = Machine::new(ArchKind::Fa8.chip(), 1, MemConfig::table3(), 1);
            m.attach_threads(
                (0..8)
                    .map(|i| simple_thread(if i == 0 { 400 } else { short }, false, i << 16))
                    .collect(),
            );
            m.run(10_000_000)
        };
        let balanced = run_with(400);
        let imbalanced = run_with(10);
        let sync_frac =
            |r: &RunResult| r.slots.wasted[csmt_cpu::Hazard::Sync.index()] / r.slots.slots as f64;
        assert!(
            sync_frac(&imbalanced) > sync_frac(&balanced) + 0.1,
            "imbalance must show as sync: {} vs {}",
            sync_frac(&imbalanced),
            sync_frac(&balanced)
        );
    }

    #[test]
    fn deterministic_machine_runs() {
        let run = || {
            let mut m = Machine::new(ArchKind::Smt4.chip(), 1, MemConfig::table3(), 33);
            m.attach_threads(
                (0..8)
                    .map(|i| simple_thread(60 + i * 3, true, i * 8192))
                    .collect(),
            );
            m.run(10_000_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.mem, b.mem);
    }

    #[test]
    fn multichip_machine_generates_remote_traffic() {
        let mut m = Machine::new(ArchKind::Fa2.chip(), 4, MemConfig::table3(), 5);
        // 8 threads, all touching the same shared region ⇒ remote accesses.
        m.attach_threads((0..8).map(|_| simple_thread(100, false, 0)).collect());
        let r = m.run(10_000_000);
        assert!(r.mem.remote_mem + r.mem.remote_l2 > 0, "{:?}", r.mem);
    }

    /// Straight-line compute thread: no barriers, just work then exit.
    fn plain_thread(n_ops: u64, addr_base: u64) -> Box<dyn InstStream + Send> {
        let mut v = Vec::new();
        for i in 0..n_ops {
            v.push(DynInst::load(
                8 + i * 8,
                ArchReg::Fp(1),
                addr_base + (i * 8) % 4096,
                [None, None],
            ));
            v.push(DynInst::alu(
                12 + i * 8,
                OpClass::FpAdd,
                Some(ArchReg::Fp(2)),
                [Some(ArchReg::Fp(1)), None],
            ));
        }
        v.push(DynInst::sync(8, SyncOp::Exit));
        Box::new(VecStream::new(v))
    }

    #[test]
    fn barrier_rebalance_migrates_and_conserves_work() {
        // Odd threads (all placed round-robin on cluster 1 of SMT2) are
        // short; their exits leave cluster 1 idle while cluster 0 still
        // holds four live threads — exactly the imbalance BarrierRebalance
        // exists to fix.
        let run = |dynamic: bool| {
            let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 7);
            if dynamic {
                m.set_scheduler(Box::new(crate::sched::BarrierRebalance::default()))
                    .unwrap();
            }
            m.attach_threads(
                (0..8)
                    .map(|i| plain_thread(if i % 2 == 0 { 400 } else { 5 }, i << 16))
                    .collect(),
            );
            m.run(10_000_000)
        };
        let stat = run(false);
        let dynamic = run(true);
        assert_eq!(stat.migrations, 0);
        assert!(
            dynamic.migrations > 0,
            "uneven exits must trigger rebalancing"
        );
        assert!(dynamic.migration_wait_cycles >= dynamic.migrations * MIGRATION_COST);
        // Migration moves work, never creates or destroys it.
        assert_eq!(
            stat.slots.committed, dynamic.slots.committed,
            "committed instructions must be conserved across migrations"
        );
    }

    #[test]
    fn hazard_pairing_runs_deterministically() {
        let run = || {
            let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 9);
            m.set_scheduler(Box::new(crate::sched::HazardPairing::with_quantum(512)))
                .unwrap();
            m.attach_threads(
                (0..8)
                    .map(|i| simple_thread(120 + i * 7, false, i << 14))
                    .collect(),
            );
            m.run(10_000_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.mem, b.mem);
        assert_eq!(a.migrations, b.migrations);
    }

    /// A serial chain of address-dependent loads striding past the page
    /// size (the machine_step bench workload): latency-bound, every load
    /// misses deep.
    fn serial_chain(tid: u64, n: u64) -> Box<dyn InstStream + Send> {
        let base = tid << 24;
        let mut v = Vec::with_capacity(n as usize + 1);
        for i in 0..n {
            v.push(DynInst::load(
                base + i * 4,
                ArchReg::Fp(1),
                base + i * (4096 + 64),
                [Some(ArchReg::Fp(1)), None],
            ));
        }
        v.push(DynInst::sync(base + n * 4, SyncOp::Exit));
        Box::new(VecStream::new(v))
    }

    #[test]
    fn dynamic_policy_is_fastforward_equivalent_and_conserves_work() {
        // The memory-bound bench workload under hazard pairing: the
        // fast-forward must not change either the cycle count or the work,
        // and migrations must not create or destroy instructions.
        let run = |policy: Option<u64>, ff: bool| {
            let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 0xC5_317);
            if let Some(q) = policy {
                m.set_scheduler(Box::new(crate::sched::HazardPairing::with_quantum(q)))
                    .unwrap();
            }
            m.set_fastforward(ff);
            m.attach_threads((0..8).map(|t| serial_chain(t, 120)).collect());
            m.run(10_000_000)
        };
        let stat = run(None, true);
        let dyn_ff = run(Some(2048), true);
        let dyn_step = run(Some(2048), false);
        assert_eq!(dyn_ff.cycles, dyn_step.cycles, "fastforward must be inert");
        assert_eq!(dyn_ff.slots.committed, dyn_step.slots.committed);
        assert_eq!(dyn_ff.migrations, dyn_step.migrations);
        assert_eq!(
            stat.slots.committed, dyn_ff.slots.committed,
            "migrations must conserve committed work"
        );
    }

    #[test]
    fn invalid_scheduler_configs_are_rejected() {
        let mut m = Machine::new(ArchKind::Fa4.chip(), 1, MemConfig::table3(), 1);
        assert_eq!(
            m.set_scheduler(Box::new(crate::sched::BarrierRebalance::default())),
            Err(crate::sched::SchedConfigError::DynamicOnFixedAssignment)
        );
        let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 1);
        assert_eq!(
            m.set_scheduler(Box::new(crate::sched::HazardPairing::with_quantum(0))),
            Err(crate::sched::SchedConfigError::ZeroQuantum)
        );
        // A valid dynamic policy on an SMT machine installs fine.
        assert_eq!(
            m.set_scheduler(Box::new(crate::sched::BarrierRebalance::default())),
            Ok(())
        );
        assert_eq!(m.scheduler_name(), "barrier");
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn over_attachment_is_rejected() {
        let mut m = Machine::new(ArchKind::Fa1.chip(), 1, MemConfig::table3(), 1);
        m.attach_threads(vec![simple_thread(1, false, 0), simple_thread(1, false, 0)]);
    }
}
