//! Whole-machine simulation driver.
//!
//! A [`Machine`] is one or more chips (each a set of clusters per
//! [`crate::configs::ChipConfig`]) over a shared [`MemorySystem`], plus the
//! parallel [`Runtime`]. The low-end machine of the paper is `chips = 1`
//! ("a simple workstation"); the high-end machine is `chips = 4` (the
//! DASH-like CC-NUMA of Figure 3).
//!
//! Software threads are attached in order and assigned round-robin across a
//! chip's clusters (thread *i* on chip `i / threads_per_chip`, cluster
//! `i % clusters` of that chip), which spreads work the way an OS scheduler
//! would.

use crate::configs::ChipConfig;
use crate::result::RunResult;
use crate::runtime::{Action, Runtime, ThreadId};
use csmt_cpu::{Cluster, ClusterEvent, ThreadState};
use csmt_isa::InstStream;
use csmt_mem::{MemConfig, MemorySystem};
use csmt_trace::{CycleStats, NullProbe, Probe, SyncEvent, SyncEventKind};

/// Where a software thread lives: (chip, cluster-in-chip, context-in-cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Chip (= memory-system node) index.
    pub chip: usize,
    /// Cluster index within the chip.
    pub cluster: usize,
    /// Hardware context within the cluster.
    pub ctx: usize,
}

/// One chip: its clusters. The chip's L1/L2 live in the shared
/// [`MemorySystem`] under the chip's node index.
struct Chip {
    clusters: Vec<Cluster>,
}

/// A complete machine ready to run a multithreaded application.
pub struct Machine {
    cfg: ChipConfig,
    chips: Vec<Chip>,
    mem: MemorySystem,
    runtime: Runtime,
    placements: Vec<Placement>,
    cycle: u64,
    /// Σ over cycles of the number of threads making progress (Fig 6).
    running_thread_cycles: u64,
    events_buf: Vec<ClusterEvent>,
    actions_buf: Vec<Action>,
    /// Event-driven stall fast-forward (on by default; `CSMT_FASTFORWARD=0`
    /// disables it). Bit-for-bit result-preserving — see
    /// [`fast_forward_probed`](Machine::fast_forward_probed).
    fastforward: bool,
    /// Scratch: per-cluster hazard weights, frozen for a skipped span.
    stall_weights_buf: Vec<[f64; 7]>,
}

impl Machine {
    /// Build a machine of `n_chips` chips of configuration `cfg` with the
    /// given memory hierarchy. `seed` controls all stochastic state.
    pub fn new(cfg: ChipConfig, n_chips: usize, mem_cfg: MemConfig, seed: u64) -> Self {
        assert!(n_chips >= 1);
        let mut rng = csmt_isa::SplitMix64::new(seed);
        let chips = (0..n_chips)
            .map(|c| Chip {
                clusters: (0..cfg.clusters)
                    .map(|k| Cluster::new(cfg.cluster, rng.fork((c * 64 + k) as u64).next_u64()))
                    .collect(),
            })
            .collect();
        let max_cluster_events = cfg.cluster.hw_threads;
        let n_clusters = n_chips * cfg.clusters;
        Machine {
            cfg,
            chips,
            mem: MemorySystem::new(mem_cfg, n_chips, rng.fork(u64::MAX).next_u64()),
            runtime: Runtime::new(0),
            placements: Vec::new(),
            cycle: 0,
            running_thread_cycles: 0,
            events_buf: Vec::with_capacity(max_cluster_events),
            actions_buf: Vec::new(),
            fastforward: Self::fastforward_env_enabled(),
            stall_weights_buf: Vec::with_capacity(n_clusters),
        }
    }

    /// Whether the `CSMT_FASTFORWARD` environment variable enables the
    /// stall fast-forward: enabled unless the variable is set to `0`.
    pub fn fastforward_env_enabled() -> bool {
        std::env::var_os("CSMT_FASTFORWARD").is_none_or(|v| v != "0")
    }

    /// Enable or disable the event-driven stall fast-forward. Results are
    /// bit-for-bit identical either way; this exists for differential
    /// testing and for timing the cycle-by-cycle baseline.
    pub fn set_fastforward(&mut self, on: bool) {
        self.fastforward = on;
    }

    /// Whether the stall fast-forward is currently enabled.
    pub fn fastforward(&self) -> bool {
        self.fastforward
    }

    /// Total hardware thread contexts in the machine — the thread count the
    /// paper creates for each configuration ("we generate as many threads as
    /// are required by the processor", §4).
    pub fn hw_thread_capacity(&self) -> usize {
        self.chips.len() * self.cfg.threads_per_chip()
    }

    /// Placement of software thread `tid` under the round-robin policy.
    pub fn placement_of(&self, tid: ThreadId) -> Placement {
        let per_chip = self.cfg.threads_per_chip();
        let chip = tid / per_chip;
        let within = tid % per_chip;
        let cluster = within % self.cfg.clusters;
        let ctx = within / self.cfg.clusters;
        Placement { chip, cluster, ctx }
    }

    /// Attach the application's software threads (one stream per thread).
    /// Must be called exactly once, with at most `hw_thread_capacity()`
    /// threads.
    pub fn attach_threads(&mut self, streams: Vec<Box<dyn InstStream + Send>>) {
        let n = streams.len();
        self.attach_threads_grouped(streams.into_iter().map(|s| (s, 0)).collect());
        debug_assert_eq!(self.placements.len(), n);
    }

    /// Attach a multiprogrammed mix: each stream carries its program-group
    /// id; barriers and locks are scoped within a group (independent
    /// programs never synchronize with each other).
    pub fn attach_threads_grouped(&mut self, streams: Vec<(Box<dyn InstStream + Send>, usize)>) {
        assert!(self.placements.is_empty(), "threads already attached");
        assert!(!streams.is_empty());
        assert!(
            streams.len() <= self.hw_thread_capacity(),
            "{} threads exceed {} contexts",
            streams.len(),
            self.hw_thread_capacity()
        );
        self.runtime = Runtime::with_groups(streams.iter().map(|(_, g)| *g).collect());
        self.actions_buf.reserve(streams.len());
        for (tid, (s, _)) in streams.into_iter().enumerate() {
            let p = self.placement_of(tid);
            self.chips[p.chip].clusters[p.cluster].attach_thread(p.ctx, s);
            self.placements.push(p);
        }
    }

    fn tid_at(&self, chip: usize, cluster: usize, ctx: usize) -> Option<ThreadId> {
        // Inverse of placement_of; placements are dense so recompute.
        let per_chip = self.cfg.threads_per_chip();
        let tid = chip * per_chip + ctx * self.cfg.clusters + cluster;
        (tid < self.placements.len()).then_some(tid)
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        self.step_probed(&mut NullProbe);
    }

    /// [`step`](Machine::step) with an observability probe attached.
    /// Clusters are identified in emitted events by their machine-global
    /// index (`chip * clusters_per_chip + cluster`). All probe work is
    /// gated on `P`'s wants-flags, so `step_probed::<NullProbe>`
    /// monomorphizes to exactly `step`.
    pub fn step_probed<P: Probe>(&mut self, probe: &mut P) {
        let now = self.cycle;
        for chip_idx in 0..self.chips.len() {
            for cluster_idx in 0..self.chips[chip_idx].clusters.len() {
                let cluster_id = (chip_idx * self.cfg.clusters + cluster_idx) as u32;
                self.events_buf.clear();
                self.chips[chip_idx].clusters[cluster_idx].step_probed(
                    now,
                    &mut self.mem,
                    chip_idx,
                    &mut self.events_buf,
                    probe,
                    cluster_id,
                );
                for k in 0..self.events_buf.len() {
                    let ev = self.events_buf[k];
                    let (ctx, is_done, op) = match ev {
                        ClusterEvent::SyncReached { thread, op } => (thread, false, Some(op)),
                        ClusterEvent::ThreadDone { thread } => (thread, true, None),
                    };
                    let tid = self
                        .tid_at(chip_idx, cluster_idx, ctx)
                        .expect("event from unattached context");
                    self.actions_buf.clear();
                    if is_done {
                        self.runtime.thread_done(tid, &mut self.actions_buf);
                    } else {
                        self.runtime
                            .sync_reached(tid, op.expect("sync"), &mut self.actions_buf);
                    }
                    if P::WANTS_INST_EVENTS {
                        let kind = match op {
                            Some(op) => SyncEventKind::Reached(op),
                            None => SyncEventKind::Done,
                        };
                        probe.sync_event(SyncEvent {
                            cycle: now,
                            thread: tid as u32,
                            kind,
                        });
                    }
                    for a in 0..self.actions_buf.len() {
                        let Action::Resume(t) = self.actions_buf[a];
                        let p = self.placements[t];
                        self.chips[p.chip].clusters[p.cluster].resume_thread(p.ctx);
                        if P::WANTS_INST_EVENTS {
                            probe.sync_event(SyncEvent {
                                cycle: now,
                                thread: t as u32,
                                kind: SyncEventKind::Resumed,
                            });
                        }
                    }
                }
            }
        }
        let running: usize = self
            .chips
            .iter()
            .flat_map(|c| c.clusters.iter())
            .map(csmt_cpu::Cluster::running_threads)
            .sum();
        self.finish_cycle(now, running, probe);
    }

    /// The per-cycle epilogue shared by [`step_probed`](Machine::step_probed)
    /// and the fast-forward path: running-thread accounting, the cycle
    /// counter, and the end-of-cycle probe callback.
    fn finish_cycle<P: Probe>(&mut self, now: u64, running: usize, probe: &mut P) {
        self.running_thread_cycles += running as u64;
        self.cycle += 1;
        if P::WANTS_CYCLE_STATS {
            // Host self-profiling: the snapshot costs a pass over every
            // cluster's stats, which the profiler reports as its own
            // `cycle_end` row (non-zero only when a stats-wanting probe
            // is composed in).
            let phase_t = P::WANTS_HOST_PHASES.then(std::time::Instant::now);
            let mut slots = csmt_cpu::SlotStats::default();
            for c in &self.chips {
                for cl in &c.clusters {
                    slots.merge(cl.stats());
                }
            }
            let mem = self.mem.stats();
            let stats = CycleStats {
                useful: slots.useful,
                wasted: slots.wasted,
                slots: slots.slots,
                cycles: slots.cycles,
                committed: slots.committed,
                running_threads: running as u32,
                accesses: mem.accesses,
                l1_hits: mem.l1_hits,
                l2_hits: mem.l2_hits,
                tlb_misses: mem.tlb_misses,
            };
            if let Some(t0) = phase_t {
                probe.host_phase(
                    csmt_trace::HostPhase::CycleEnd,
                    t0.elapsed().as_nanos() as u64,
                );
            }
            probe.cycle_end(now, Some(&stats));
        } else {
            probe.cycle_end(now, None);
        }
    }

    /// Earliest cycle ≥ the current one at which any cluster could do more
    /// than stalled-cycle accounting, folding in the memory system's next
    /// MSHR fill. Returns the current cycle when the machine is not in an
    /// all-stalled state (the common case exits on the first non-skippable
    /// cluster).
    pub fn next_event_cycle(&self) -> u64 {
        let now = self.cycle;
        let mut next = u64::MAX;
        for chip in &self.chips {
            for cluster in &chip.clusters {
                let t = cluster.next_event_cycle(now);
                if t <= now {
                    return now;
                }
                next = next.min(t);
            }
        }
        next.min(self.mem.next_event_cycle(now))
    }

    /// Advance the machine from the current cycle up to (not including)
    /// `target`, where every intervening cycle is a pure stall for every
    /// cluster (caller established this via
    /// [`next_event_cycle`](Machine::next_event_cycle)).
    ///
    /// Bit-for-bit equivalence with stepping each cycle: hazard weights are
    /// frozen per cluster (nothing a stalled cycle does can change them —
    /// asserted per cycle under `debug_assertions`), the running-thread
    /// count is frozen (thread states only change on non-stall activity),
    /// and each skipped cycle still runs the real fetch stage, records its
    /// slot statistics through the same `f64` accumulation sequence, and
    /// fires the same per-cycle probe callbacks in the same order.
    fn fast_forward_probed<P: Probe>(&mut self, target: u64, probe: &mut P) {
        self.stall_weights_buf.clear();
        let start = self.cycle;
        for chip in &self.chips {
            for cluster in &chip.clusters {
                self.stall_weights_buf.push(cluster.stall_weights(start));
            }
        }
        let running: usize = self
            .chips
            .iter()
            .flat_map(|c| c.clusters.iter())
            .map(csmt_cpu::Cluster::running_threads)
            .sum();
        while self.cycle < target {
            let now = self.cycle;
            for chip_idx in 0..self.chips.len() {
                for cluster_idx in 0..self.chips[chip_idx].clusters.len() {
                    let cluster_id = (chip_idx * self.cfg.clusters + cluster_idx) as u32;
                    let weights = self.stall_weights_buf[cluster_id as usize];
                    self.chips[chip_idx].clusters[cluster_idx]
                        .stall_cycle_probed(now, &weights, probe, cluster_id);
                }
            }
            self.finish_cycle(now, running, probe);
        }
    }

    /// True while any thread still has work.
    pub fn busy(&self) -> bool {
        !self.runtime.all_done()
            || self
                .chips
                .iter()
                .any(|c| c.clusters.iter().any(csmt_cpu::Cluster::busy))
    }

    /// Run to completion (or `max_cycles`), returning the collected result.
    /// Panics if the limit is hit — a limit hit means a deadlocked workload,
    /// which is a bug, not a datapoint.
    pub fn run(&mut self, max_cycles: u64) -> RunResult {
        self.run_probed(max_cycles, &mut NullProbe)
    }

    /// [`run`](Machine::run) with an observability probe attached to every
    /// cycle. Callers owning a probe with buffered output (e.g.
    /// [`csmt_trace::IntervalSampler`]) should call its `finish()` after
    /// this returns to flush the trailing partial interval.
    pub fn run_probed<P: Probe>(&mut self, max_cycles: u64, probe: &mut P) -> RunResult {
        assert!(!self.placements.is_empty(), "attach_threads first");
        while self.busy() {
            assert!(
                self.cycle < max_cycles,
                "simulation exceeded {max_cycles} cycles (deadlock?)"
            );
            if self.fastforward {
                // Capping the jump at `max_cycles` preserves the deadlock
                // panic above: a machine stalled forever walks up to the
                // limit and trips the assert exactly as stepping would.
                let target = self.next_event_cycle().min(max_cycles);
                if target > self.cycle {
                    self.fast_forward_probed(target, probe);
                    continue;
                }
            }
            self.step_probed(probe);
        }
        self.result()
    }

    /// Snapshot the result so far (also valid mid-run).
    pub fn result(&self) -> RunResult {
        let mut slots = csmt_cpu::SlotStats::default();
        for c in &self.chips {
            for cl in &c.clusters {
                slots.merge(cl.stats());
            }
        }
        let mut mispredicts = 0;
        let mut lookups = 0;
        for c in &self.chips {
            for cl in &c.clusters {
                let (l, m) = cl.bpred_stats();
                lookups += l;
                mispredicts += m;
            }
        }
        let (barriers, lock_acqs) = self.runtime.stats();
        RunResult {
            arch: self.cfg.kind.name().to_string(),
            chips: self.chips.len(),
            threads: self.placements.len(),
            cycles: self.cycle,
            slots,
            mem: self.mem.stats(),
            avg_running_threads: if self.cycle == 0 {
                0.0
            } else {
                self.running_thread_cycles as f64 / self.cycle as f64
            },
            branch_lookups: lookups,
            branch_mispredicts: mispredicts,
            barrier_episodes: barriers,
            lock_acquisitions: lock_acqs,
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// State of software thread `tid`.
    pub fn thread_state(&self, tid: ThreadId) -> ThreadState {
        let p = self.placements[tid];
        self.chips[p.chip].clusters[p.cluster].thread_state(p.ctx)
    }

    /// The shared memory system (for inspection in examples/tests).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::ArchKind;
    use csmt_isa::stream::VecStream;
    use csmt_isa::{ArchReg, DynInst, OpClass, SyncOp};

    fn simple_thread(
        n_ops: u64,
        barrier_first: bool,
        addr_base: u64,
    ) -> Box<dyn InstStream + Send> {
        let mut v = Vec::new();
        if barrier_first {
            v.push(DynInst::sync(0, SyncOp::Barrier(0)));
        }
        for i in 0..n_ops {
            v.push(DynInst::load(
                8 + i * 8,
                ArchReg::Fp(1),
                addr_base + (i * 8) % 4096,
                [None, None],
            ));
            v.push(DynInst::alu(
                12 + i * 8,
                OpClass::FpAdd,
                Some(ArchReg::Fp(2)),
                [Some(ArchReg::Fp(1)), None],
            ));
        }
        v.push(DynInst::sync(4, SyncOp::Barrier(1)));
        v.push(DynInst::sync(8, SyncOp::Exit));
        Box::new(VecStream::new(v))
    }

    #[test]
    fn placement_round_robins_across_clusters() {
        let m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 1);
        assert_eq!(
            m.placement_of(0),
            Placement {
                chip: 0,
                cluster: 0,
                ctx: 0
            }
        );
        assert_eq!(
            m.placement_of(1),
            Placement {
                chip: 0,
                cluster: 1,
                ctx: 0
            }
        );
        assert_eq!(
            m.placement_of(2),
            Placement {
                chip: 0,
                cluster: 0,
                ctx: 1
            }
        );
        assert_eq!(
            m.placement_of(7),
            Placement {
                chip: 0,
                cluster: 1,
                ctx: 3
            }
        );
    }

    #[test]
    fn placement_fills_chips_in_order() {
        let m = Machine::new(ArchKind::Fa2.chip(), 4, MemConfig::table3(), 1);
        assert_eq!(m.hw_thread_capacity(), 8);
        assert_eq!(
            m.placement_of(2),
            Placement {
                chip: 1,
                cluster: 0,
                ctx: 0
            }
        );
        assert_eq!(
            m.placement_of(5),
            Placement {
                chip: 2,
                cluster: 1,
                ctx: 0
            }
        );
    }

    #[test]
    fn two_threads_run_to_completion_through_a_shared_barrier() {
        let mut m = Machine::new(ArchKind::Smt2.chip(), 1, MemConfig::table3(), 1);
        m.attach_threads(vec![
            simple_thread(50, false, 0),
            simple_thread(5, false, 65536),
        ]);
        let r = m.run(1_000_000);
        assert_eq!(r.threads, 2);
        assert!(r.cycles > 0);
        assert_eq!(r.barrier_episodes, 1);
        // 50-op thread and 5-op thread: the short one waits at barrier 1,
        // so sync slots must be visible.
        assert!(r.slots.wasted[csmt_cpu::Hazard::Sync.index()] > 0.0);
    }

    #[test]
    fn imbalanced_threads_expose_sync_hazard_growth() {
        let run_with = |short: u64| {
            let mut m = Machine::new(ArchKind::Fa8.chip(), 1, MemConfig::table3(), 1);
            m.attach_threads(
                (0..8)
                    .map(|i| simple_thread(if i == 0 { 400 } else { short }, false, i << 16))
                    .collect(),
            );
            m.run(10_000_000)
        };
        let balanced = run_with(400);
        let imbalanced = run_with(10);
        let sync_frac =
            |r: &RunResult| r.slots.wasted[csmt_cpu::Hazard::Sync.index()] / r.slots.slots as f64;
        assert!(
            sync_frac(&imbalanced) > sync_frac(&balanced) + 0.1,
            "imbalance must show as sync: {} vs {}",
            sync_frac(&imbalanced),
            sync_frac(&balanced)
        );
    }

    #[test]
    fn deterministic_machine_runs() {
        let run = || {
            let mut m = Machine::new(ArchKind::Smt4.chip(), 1, MemConfig::table3(), 33);
            m.attach_threads(
                (0..8)
                    .map(|i| simple_thread(60 + i * 3, true, i * 8192))
                    .collect(),
            );
            m.run(10_000_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.slots, b.slots);
        assert_eq!(a.mem, b.mem);
    }

    #[test]
    fn multichip_machine_generates_remote_traffic() {
        let mut m = Machine::new(ArchKind::Fa2.chip(), 4, MemConfig::table3(), 5);
        // 8 threads, all touching the same shared region ⇒ remote accesses.
        m.attach_threads((0..8).map(|_| simple_thread(100, false, 0)).collect());
        let r = m.run(10_000_000);
        assert!(r.mem.remote_mem + r.mem.remote_l2 > 0, "{:?}", r.mem);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn over_attachment_is_rejected() {
        let mut m = Machine::new(ArchKind::Fa1.chip(), 1, MemConfig::table3(), 1);
        m.attach_threads(vec![simple_thread(1, false, 0), simple_thread(1, false, 0)]);
    }
}
