//! Property-based tests of the workload generators: work conservation
//! across thread counts, stream well-formedness (balanced locks, matching
//! barrier sequences), and NUMA placement laws.

use csmt_isa::{InstStream, OpClass, SyncOp};
use csmt_workloads::addr::{Layout, SLICE_SPAN};
use csmt_workloads::{all_apps, build_streams, AppParams};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_threads() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16), Just(32)]
}

fn drain(stream: &mut Box<dyn InstStream + Send>) -> Vec<csmt_isa::DynInst> {
    let mut v = Vec::new();
    while let Some(i) = stream.next_inst() {
        v.push(i);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Total non-sync instruction count is (approximately) invariant in the
    /// thread count: the application's work does not grow or shrink when
    /// parallelized (serial sections and per-iteration loop overhead aside).
    #[test]
    fn work_is_thread_count_invariant(
        app_idx in 0usize..6,
        threads in arb_threads(),
    ) {
        let app = &all_apps()[app_idx];
        let count_work = |n: usize| -> u64 {
            let p = AppParams::new(n, (n / 8).max(1), 0.05, 7);
            build_streams(app, &p)
                .iter_mut()
                .map(|s| {
                    drain(s)
                        .iter()
                        .filter(|i| i.op != OpClass::Sync)
                        .count() as u64
                })
                .sum()
        };
        let w1 = count_work(1);
        let wn = count_work(threads);
        // Loop bodies are identical; only lock excursions (fmm) and
        // rounding of the serial/parallel split vary. Allow 15%.
        let ratio = wn as f64 / w1 as f64;
        prop_assert!((0.85..1.15).contains(&ratio),
            "{}: {} threads has ratio {ratio}", app.name, threads);
    }

    /// Lock acquires and releases are balanced and never nested, in every
    /// thread of every app at every thread count.
    #[test]
    fn locks_are_balanced_and_unnested(
        app_idx in 0usize..6,
        threads in arb_threads(),
        seed in 0u64..50,
    ) {
        let app = &all_apps()[app_idx];
        let p = AppParams::new(threads, 1, 0.05, seed);
        for (t, mut s) in build_streams(app, &p).into_iter().enumerate() {
            let mut depth = 0i64;
            let mut held: Option<u32> = None;
            for i in drain(&mut s) {
                match i.sync {
                    Some(SyncOp::LockAcquire(id)) => {
                        depth += 1;
                        prop_assert_eq!(depth, 1, "thread {} nests locks", t);
                        held = Some(id);
                    }
                    Some(SyncOp::LockRelease(id)) => {
                        depth -= 1;
                        prop_assert_eq!(depth, 0);
                        prop_assert_eq!(Some(id), held, "release of a different lock");
                    }
                    _ => {}
                }
            }
            prop_assert_eq!(depth, 0, "thread {} ends holding a lock", t);
        }
    }

    /// All threads see the same barrier id sequence (the fork-join
    /// structure every live thread participates in).
    #[test]
    fn barrier_sequences_agree(
        app_idx in 0usize..6,
        threads in prop_oneof![Just(2usize), Just(4), Just(8)],
    ) {
        let app = &all_apps()[app_idx];
        let p = AppParams::new(threads, 1, 0.05, 3);
        let seqs: Vec<Vec<u32>> = build_streams(app, &p)
            .into_iter()
            .map(|mut s| {
                drain(&mut s)
                    .iter()
                    .filter_map(|i| match i.sync {
                        Some(SyncOp::Barrier(id)) => Some(id),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        for s in &seqs[1..] {
            prop_assert_eq!(s, &seqs[0]);
        }
        // Barrier ids are strictly increasing (each episode distinct).
        for w in seqs[0].windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    /// Memory addresses respect the NUMA layout: private-slice accesses of
    /// thread t land on pages homed at t's node (4-chip machine, block
    /// placement), except shared/neighbor regions.
    #[test]
    fn private_accesses_are_node_local(
        app_idx in 0usize..6,
    ) {
        // Only apps without neighbor/shared styles give a clean check;
        // verify the invariant on the private layout machinery itself for
        // every app's thread 0 slice.
        let _ = &all_apps()[app_idx];
        let page = 4096u64;
        for n_nodes in [1usize, 2, 4] {
            for t in 0..8usize {
                let tpn = 8usize.div_ceil(n_nodes);
                let l = Layout::private_slice(t, n_nodes, tpn, page);
                for logical in [0u64, 8, 4096, 65536, SLICE_SPAN - 8] {
                    let phys = l.addr(logical);
                    let home = (phys / page) % n_nodes as u64;
                    prop_assert_eq!(home, l.node, "thread {} node {}", t, n_nodes);
                }
            }
        }
    }

    /// Streams are replayable: building twice with the same params yields
    /// identical instruction sequences.
    #[test]
    fn streams_are_deterministic(
        app_idx in 0usize..6,
        threads in prop_oneof![Just(1usize), Just(4)],
        seed in 0u64..100,
    ) {
        let app = &all_apps()[app_idx];
        let p = AppParams::new(threads, 1, 0.03, seed);
        let a: Vec<_> = build_streams(app, &p).into_iter().map(|mut s| drain(&mut s)).collect();
        let b: Vec<_> = build_streams(app, &p).into_iter().map(|mut s| drain(&mut s)).collect();
        prop_assert_eq!(a, b);
    }
}

/// The six apps produce materially different dynamic behaviour — no two
/// apps share the same instruction mix fingerprint (guards against one app
/// silently aliasing another after a refactor).
#[test]
fn apps_have_distinct_fingerprints() {
    let p = AppParams::new(4, 1, 0.05, 7);
    let mut prints: HashMap<String, &'static str> = HashMap::new();
    for app in all_apps() {
        let mut streams = build_streams(&app, &p);
        let insts = drain(&mut streams[0]);
        let mut mix = [0u64; 4]; // [alu, mem, branch, sync]
        for i in &insts {
            let k = match i.op {
                OpClass::Load | OpClass::Store => 1,
                OpClass::Branch => 2,
                OpClass::Sync => 3,
                _ => 0,
            };
            mix[k] += 1;
        }
        let fp = format!("{}:{}:{}:{}", mix[0] / 10, mix[1] / 10, mix[2] / 10, mix[3]);
        if let Some(other) = prints.insert(fp.clone(), app.name) {
            panic!("{} and {} share fingerprint {fp}", app.name, other);
        }
    }
}
