//! Thread-level speculation (TLS) — a first-order model of the paper's
//! companion work.
//!
//! The paper's introduction points at "several proposed software and
//! hardware features [that] can enable even sequential applications to
//! execute in multithreaded mode", including the authors' own
//! speculation-support work on this same clustered architecture
//! (reference [7], Krishnan & Torrellas, MTEAC'98). This module models that
//! execution mode at first order:
//!
//! * a sequential loop of `epochs` iterations is distributed round-robin
//!   over `T` speculative threads;
//! * each epoch may carry a loop-carried RAW dependence on its predecessor
//!   (probability [`TlsLoop::dep_frac`], drawn deterministically per
//!   epoch). When the predecessor runs concurrently on another thread —
//!   always the case for round-robin with `T > 1` — the dependent epoch
//!   *violates* and must squash and re-execute;
//! * epochs commit in order through a commit token, modelled as a short
//!   lock-protected region at the end of every epoch.
//!
//! The simplification relative to a full TLS simulator is documented in
//! DESIGN.md: violations are drawn from the loop's dependence statistics
//! up front instead of being discovered by simulated memory timing, so the
//! *cost* of speculation (re-executed work, commit serialization) is
//! timing-accurate while the *occurrence* is statistical. That preserves
//! the trade-off the companion paper explores — speculative speedup versus
//! violation waste as dependence density rises.

use crate::addr::{AddrCursor, AddrMode, Layout};
use crate::kernel::{KernelInstance, KernelSpec};
use crate::program::{Phase, ProgramStream};
use csmt_core::{ChipConfig, Machine, RunResult};
use csmt_isa::block::OpMix;
use csmt_isa::{InstStream, SplitMix64, SyncOp};
use csmt_mem::MemConfig;

/// A speculatively parallelized sequential loop.
#[derive(Debug, Clone, Copy)]
pub struct TlsLoop {
    /// Sequential iterations (epochs).
    pub epochs: u64,
    /// Epoch body.
    pub kernel: KernelSpec,
    /// Probability an epoch carries a RAW dependence on its predecessor.
    pub dep_frac: f64,
    /// Integer ops inside the ordered-commit critical section.
    pub commit_ops: u8,
}

impl TlsLoop {
    /// A representative pointer-chasing integer loop — the kind TLS
    /// targets: not statically parallelizable, and with so little ILP that
    /// a wide sequential core cannot help (`carried` recurrence pins it).
    pub fn demo(epochs: u64, dep_frac: f64) -> Self {
        TlsLoop {
            epochs,
            kernel: KernelSpec {
                chains: 1,
                depth: 6,
                mix: OpMix::Mixed,
                loads: 2,
                stores: 1,
                carried: true,
                noise_branch: 0.03,
            },
            dep_frac,
            commit_ops: 3,
        }
    }

    /// Epochs that violate (deterministic per seed): epoch 0 never does.
    fn violations(&self, seed: u64) -> Vec<bool> {
        let mut rng = SplitMix64::new(seed ^ 0x0715);
        (0..self.epochs)
            .map(|e| e > 0 && rng.chance(self.dep_frac))
            .collect()
    }
}

/// Lock id reserved for the commit token.
const COMMIT_LOCK: u32 = 0xC0117;

/// Build the speculative threads' instruction streams. With `n_threads ==
/// 1` this is plain sequential execution: no violations, no commit token.
pub fn tls_streams(l: &TlsLoop, n_threads: usize, seed: u64) -> Vec<Box<dyn InstStream + Send>> {
    assert!(n_threads >= 1);
    let violations = l.violations(seed);
    let speculative = n_threads > 1;
    (0..n_threads)
        .map(|t| {
            let mut phases = Vec::new();
            let mut epoch = t as u64;
            while epoch < l.epochs {
                // A violated epoch executes twice: the squashed attempt and
                // the replay. Both are full executions through the pipeline;
                // only the replay's results survive architecturally, but the
                // machine time of both is the TLS cost being measured.
                let executions = if speculative && violations[epoch as usize] {
                    2
                } else {
                    1
                };
                for attempt in 0..executions {
                    let cursors = |n: usize, tag: u64| -> Vec<AddrCursor> {
                        (0..n)
                            .map(|k| {
                                AddrCursor::new(
                                    AddrMode::Stride {
                                        layout: Layout::shared(
                                            tag * (1 << 22) + k as u64 * ((1 << 20) + 4096 + 192),
                                        ),
                                        stride: 8,
                                        footprint: 1 << 16,
                                    },
                                    seed ^ epoch << 8 ^ k as u64,
                                )
                            })
                            .collect()
                    };
                    phases.push(Phase::Kernel(KernelInstance::new(
                        l.kernel,
                        0x7_0000,
                        // Epoch length: a fixed iteration count per epoch,
                        // sized so the body dominates the ordered-commit
                        // serialization (TLS needs coarse enough grains).
                        80,
                        cursors(l.kernel.loads as usize, 1),
                        cursors(l.kernel.stores as usize, 2),
                        seed ^ (epoch << 16) ^ attempt,
                        None,
                    )));
                }
                if speculative {
                    // Ordered commit: serialize through the commit token.
                    phases.push(Phase::Sync(SyncOp::LockAcquire(COMMIT_LOCK)));
                    phases.push(Phase::Kernel(KernelInstance::new(
                        KernelSpec {
                            chains: 1,
                            depth: l.commit_ops.max(1),
                            mix: OpMix::Integer,
                            loads: 0,
                            stores: 0,
                            carried: false,
                            noise_branch: 0.0,
                        },
                        0x7_8000,
                        1,
                        vec![],
                        vec![],
                        seed ^ epoch,
                        None,
                    )));
                    phases.push(Phase::Sync(SyncOp::LockRelease(COMMIT_LOCK)));
                }
                epoch += n_threads as u64;
            }
            Box::new(ProgramStream::new(phases)) as Box<dyn InstStream + Send>
        })
        .collect()
}

/// Outcome of one TLS run.
#[derive(Debug, Clone)]
pub struct TlsResult {
    /// Full machine statistics.
    pub run: RunResult,
    /// Epochs whose first execution was squashed.
    pub violated_epochs: u64,
    /// Total epoch executions (epochs + replays).
    pub epoch_executions: u64,
}

impl TlsResult {
    /// Fraction of epoch executions that survived (1.0 = no waste).
    pub fn speculative_efficiency(&self) -> f64 {
        (self.epoch_executions - self.violated_epochs) as f64 / self.epoch_executions as f64
    }
}

/// Run `l` speculatively across all hardware contexts of `chip` (1 chip).
pub fn simulate_tls(l: &TlsLoop, chip: ChipConfig, seed: u64) -> TlsResult {
    let mut machine = Machine::new(chip, 1, MemConfig::table3(), seed);
    let n = machine.hw_thread_capacity();
    machine.attach_threads(tls_streams(l, n, seed));
    let run = machine.run(2_000_000_000);
    let violated = if n > 1 {
        l.violations(seed).iter().filter(|&&v| v).count() as u64
    } else {
        0
    };
    TlsResult {
        run,
        violated_epochs: violated,
        epoch_executions: l.epochs + violated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csmt_core::ArchKind;

    #[test]
    fn sequential_execution_has_no_violations() {
        let l = TlsLoop::demo(40, 0.5);
        let r = simulate_tls(&l, ArchKind::Fa1.chip(), 7);
        assert_eq!(r.violated_epochs, 0);
        assert_eq!(r.epoch_executions, 40);
        assert!((r.speculative_efficiency() - 1.0).abs() < 1e-12);
        assert_eq!(r.run.lock_acquisitions, 0, "no commit token needed");
    }

    #[test]
    fn violations_scale_with_dependence_density() {
        let low = simulate_tls(&TlsLoop::demo(200, 0.1), ArchKind::Smt2.chip(), 7);
        let high = simulate_tls(&TlsLoop::demo(200, 0.6), ArchKind::Smt2.chip(), 7);
        assert!(low.violated_epochs < high.violated_epochs);
        assert!(high.speculative_efficiency() < 0.75);
        assert!(low.speculative_efficiency() > 0.85);
    }

    #[test]
    fn independent_loop_speeds_up_speculatively() {
        let l = TlsLoop::demo(160, 0.0);
        let seq = simulate_tls(&l, ArchKind::Fa1.chip(), 7);
        let tls = simulate_tls(&l, ArchKind::Smt2.chip(), 7);
        assert!(
            (tls.run.cycles as f64) < seq.run.cycles as f64 * 0.6,
            "dep-free TLS should fly: {} vs {}",
            tls.run.cycles,
            seq.run.cycles
        );
    }

    #[test]
    fn dependence_density_erodes_the_speedup() {
        let seq = simulate_tls(&TlsLoop::demo(160, 0.0), ArchKind::Fa1.chip(), 7);
        let speedup = |dep: f64| {
            let t = simulate_tls(&TlsLoop::demo(160, dep), ArchKind::Smt2.chip(), 7);
            seq.run.cycles as f64 / t.run.cycles as f64
        };
        let s0 = speedup(0.0);
        let s6 = speedup(0.6);
        assert!(s0 > s6, "speedup must erode: {s0:.2} vs {s6:.2}");
    }

    #[test]
    fn commit_token_is_exercised() {
        let l = TlsLoop::demo(60, 0.2);
        let r = simulate_tls(&l, ArchKind::Smt2.chip(), 7);
        assert_eq!(r.run.lock_acquisitions, 60, "one ordered commit per epoch");
    }

    #[test]
    fn deterministic() {
        let l = TlsLoop::demo(80, 0.3);
        let a = simulate_tls(&l, ArchKind::Smt4.chip(), 9);
        let b = simulate_tls(&l, ArchKind::Smt4.chip(), 9);
        assert_eq!(a.run.cycles, b.run.cycles);
        assert_eq!(a.violated_epochs, b.violated_epochs);
    }
}
